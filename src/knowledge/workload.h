#ifndef GALOIS_KNOWLEDGE_WORKLOAD_H_
#define GALOIS_KNOWLEDGE_WORKLOAD_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "knowledge/world_kb.h"

namespace galois::knowledge {

/// Structural class of a query, used for Table 2's breakdown. Precedence:
/// a query over >1 relation is a join; joins that also aggregate are
/// kJoinAggregate (they count toward "All" but neither "Aggregates" nor
/// "Joins only" in the paper's table).
enum class QueryClass { kSelection, kAggregate, kJoin, kJoinAggregate };

const char* QueryClassName(QueryClass c);

/// One benchmark query: the SQL text, the paper's NL paraphrase (used by
/// the QA baselines T_M and T^C_M), and its class.
struct QuerySpec {
  int id = 0;
  std::string sql;
  std::string question;
  QueryClass query_class = QueryClass::kSelection;
};

/// The Spider-like evaluation workload (Section 5): a catalog of
/// generic-topic tables whose ground-truth instances are materialised from
/// the WorldKb, plus 46 SQL queries with NL paraphrases, mirroring the
/// paper's subset of Spider ("world geography and airports"-style topics).
class SpiderLikeWorkload {
 public:
  /// Builds the KB, catalog, instances and query list. Deterministic in
  /// `seed`.
  static Result<SpiderLikeWorkload> Create(uint64_t seed = 20240325);

  const WorldKb& kb() const { return kb_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  const std::vector<QuerySpec>& queries() const { return queries_; }

  /// Look up one query by id (1-based, as in `queries()` order).
  Result<const QuerySpec*> GetQuery(int id) const;

 private:
  WorldKb kb_;
  catalog::Catalog catalog_;
  std::vector<QuerySpec> queries_;
};

/// Materialises the ground-truth relation for `def` by reading every
/// entity of `def.entity_type` from the KB (column c <- attribute
/// lower(c.name)). Exposed for tests.
Result<Relation> MaterialiseFromKb(const WorldKb& kb,
                                   const catalog::TableDef& def);

}  // namespace galois::knowledge

#endif  // GALOIS_KNOWLEDGE_WORKLOAD_H_
