#include "knowledge/world_kb.h"

#include <algorithm>

#include "common/strings.h"

namespace galois::knowledge {

namespace {

/// Static country seed data: name, ISO-2, ISO-3, continent, capital,
/// primary language, currency. Popularity decays with list position
/// (roughly "how much web text mentions this country").
struct CountrySeed {
  const char* name;
  const char* code2;
  const char* code3;
  const char* continent;
  const char* capital;
  const char* language;
  const char* currency;
};

constexpr CountrySeed kCountries[] = {
    {"United States", "US", "USA", "North America", "Washington", "English", "Dollar"},
    {"United Kingdom", "GB", "GBR", "Europe", "London", "English", "Pound"},
    {"France", "FR", "FRA", "Europe", "Paris", "French", "Euro"},
    {"Germany", "DE", "DEU", "Europe", "Berlin", "German", "Euro"},
    {"Italy", "IT", "ITA", "Europe", "Rome", "Italian", "Euro"},
    {"Spain", "ES", "ESP", "Europe", "Madrid", "Spanish", "Euro"},
    {"China", "CN", "CHN", "Asia", "Beijing", "Mandarin", "Yuan"},
    {"Japan", "JP", "JPN", "Asia", "Tokyo", "Japanese", "Yen"},
    {"India", "IN", "IND", "Asia", "New Delhi", "Hindi", "Rupee"},
    {"Brazil", "BR", "BRA", "South America", "Brasilia", "Portuguese", "Real"},
    {"Canada", "CA", "CAN", "North America", "Ottawa", "English", "Dollar"},
    {"Australia", "AU", "AUS", "Oceania", "Canberra", "English", "Dollar"},
    {"Russia", "RU", "RUS", "Europe", "Moscow", "Russian", "Ruble"},
    {"Mexico", "MX", "MEX", "North America", "Mexico City", "Spanish", "Peso"},
    {"Netherlands", "NL", "NLD", "Europe", "Amsterdam", "Dutch", "Euro"},
    {"Switzerland", "CH", "CHE", "Europe", "Bern", "German", "Franc"},
    {"Sweden", "SE", "SWE", "Europe", "Stockholm", "Swedish", "Krona"},
    {"Norway", "NO", "NOR", "Europe", "Oslo", "Norwegian", "Krone"},
    {"Poland", "PL", "POL", "Europe", "Warsaw", "Polish", "Zloty"},
    {"Portugal", "PT", "PRT", "Europe", "Lisbon", "Portuguese", "Euro"},
    {"Greece", "GR", "GRC", "Europe", "Athens", "Greek", "Euro"},
    {"Turkey", "TR", "TUR", "Asia", "Ankara", "Turkish", "Lira"},
    {"Egypt", "EG", "EGY", "Africa", "Cairo", "Arabic", "Pound"},
    {"South Africa", "ZA", "ZAF", "Africa", "Pretoria", "English", "Rand"},
    {"Nigeria", "NG", "NGA", "Africa", "Abuja", "English", "Naira"},
    {"Kenya", "KE", "KEN", "Africa", "Nairobi", "Swahili", "Shilling"},
    {"Argentina", "AR", "ARG", "South America", "Buenos Aires", "Spanish", "Peso"},
    {"Chile", "CL", "CHL", "South America", "Santiago", "Spanish", "Peso"},
    {"Colombia", "CO", "COL", "South America", "Bogota", "Spanish", "Peso"},
    {"Peru", "PE", "PER", "South America", "Lima", "Spanish", "Sol"},
    {"South Korea", "KR", "KOR", "Asia", "Seoul", "Korean", "Won"},
    {"Indonesia", "ID", "IDN", "Asia", "Jakarta", "Indonesian", "Rupiah"},
    {"Thailand", "TH", "THA", "Asia", "Bangkok", "Thai", "Baht"},
    {"Vietnam", "VN", "VNM", "Asia", "Hanoi", "Vietnamese", "Dong"},
    {"Philippines", "PH", "PHL", "Asia", "Manila", "Filipino", "Peso"},
    {"Malaysia", "MY", "MYS", "Asia", "Kuala Lumpur", "Malay", "Ringgit"},
    {"Singapore", "SG", "SGP", "Asia", "Singapore", "English", "Dollar"},
    {"New Zealand", "NZ", "NZL", "Oceania", "Wellington", "English", "Dollar"},
    {"Ireland", "IE", "IRL", "Europe", "Dublin", "English", "Euro"},
    {"Austria", "AT", "AUT", "Europe", "Vienna", "German", "Euro"},
    {"Belgium", "BE", "BEL", "Europe", "Brussels", "Dutch", "Euro"},
    {"Denmark", "DK", "DNK", "Europe", "Copenhagen", "Danish", "Krone"},
    {"Finland", "FI", "FIN", "Europe", "Helsinki", "Finnish", "Euro"},
    {"Czech Republic", "CZ", "CZE", "Europe", "Prague", "Czech", "Koruna"},
    {"Hungary", "HU", "HUN", "Europe", "Budapest", "Hungarian", "Forint"},
    {"Romania", "RO", "ROU", "Europe", "Bucharest", "Romanian", "Leu"},
    {"Morocco", "MA", "MAR", "Africa", "Rabat", "Arabic", "Dirham"},
    {"Israel", "IL", "ISR", "Asia", "Jerusalem", "Hebrew", "Shekel"},
};

/// Extra (non-capital) cities for prominent countries.
struct CitySeed {
  const char* country;
  const char* city;
};

constexpr CitySeed kExtraCities[] = {
    {"United States", "New York City"}, {"United States", "Los Angeles"},
    {"United States", "Chicago"},       {"United States", "Houston"},
    {"United Kingdom", "Manchester"},   {"United Kingdom", "Birmingham"},
    {"France", "Lyon"},                 {"France", "Marseille"},
    {"Germany", "Munich"},              {"Germany", "Hamburg"},
    {"Italy", "Milan"},                 {"Italy", "Naples"},
    {"Spain", "Barcelona"},             {"Spain", "Valencia"},
    {"China", "Shanghai"},              {"China", "Shenzhen"},
    {"Japan", "Osaka"},                 {"Japan", "Kyoto"},
    {"India", "Mumbai"},                {"India", "Bangalore"},
    {"Brazil", "Sao Paulo"},            {"Brazil", "Rio de Janeiro"},
    {"Canada", "Toronto"},              {"Canada", "Vancouver"},
    {"Australia", "Sydney"},            {"Australia", "Melbourne"},
    {"Russia", "Saint Petersburg"},     {"Mexico", "Guadalajara"},
    {"Netherlands", "Rotterdam"},       {"Switzerland", "Zurich"},
    {"Sweden", "Gothenburg"},           {"Poland", "Krakow"},
    {"Turkey", "Istanbul"},             {"Egypt", "Alexandria"},
    {"South Africa", "Cape Town"},      {"Nigeria", "Lagos"},
    {"Argentina", "Cordoba"},           {"Colombia", "Medellin"},
    {"South Korea", "Busan"},           {"Indonesia", "Surabaya"},
    {"Vietnam", "Ho Chi Minh City"},    {"New Zealand", "Auckland"},
    {"Ireland", "Cork"},                {"Austria", "Salzburg"},
    {"Belgium", "Antwerp"},             {"Denmark", "Aarhus"},
    {"Czech Republic", "Brno"},         {"Morocco", "Casablanca"},
    {"Israel", "Tel Aviv"},             {"Greece", "Thessaloniki"},
};

/// Major airports: IATA code, airport name, city.
struct AirportSeed {
  const char* code;
  const char* name;
  const char* city;
};

constexpr AirportSeed kAirports[] = {
    {"JFK", "John F. Kennedy International", "New York City"},
    {"LAX", "Los Angeles International", "Los Angeles"},
    {"ORD", "O'Hare International", "Chicago"},
    {"IAH", "George Bush Intercontinental", "Houston"},
    {"LHR", "Heathrow", "London"},
    {"MAN", "Manchester Airport", "Manchester"},
    {"CDG", "Charles de Gaulle", "Paris"},
    {"LYS", "Lyon-Saint Exupery", "Lyon"},
    {"FRA", "Frankfurt Airport", "Berlin"},
    {"MUC", "Munich Airport", "Munich"},
    {"FCO", "Fiumicino", "Rome"},
    {"MXP", "Malpensa", "Milan"},
    {"MAD", "Barajas", "Madrid"},
    {"BCN", "El Prat", "Barcelona"},
    {"PEK", "Beijing Capital International", "Beijing"},
    {"PVG", "Shanghai Pudong International", "Shanghai"},
    {"HND", "Haneda", "Tokyo"},
    {"KIX", "Kansai International", "Osaka"},
    {"DEL", "Indira Gandhi International", "New Delhi"},
    {"BOM", "Chhatrapati Shivaji International", "Mumbai"},
    {"GRU", "Guarulhos International", "Sao Paulo"},
    {"GIG", "Galeao International", "Rio de Janeiro"},
    {"YYZ", "Pearson International", "Toronto"},
    {"YVR", "Vancouver International", "Vancouver"},
    {"SYD", "Kingsford Smith", "Sydney"},
    {"MEL", "Melbourne Airport", "Melbourne"},
    {"SVO", "Sheremetyevo", "Moscow"},
    {"MEX", "Benito Juarez International", "Mexico City"},
    {"AMS", "Schiphol", "Amsterdam"},
    {"ZRH", "Zurich Airport", "Zurich"},
    {"ARN", "Arlanda", "Stockholm"},
    {"OSL", "Gardermoen", "Oslo"},
    {"WAW", "Chopin", "Warsaw"},
    {"LIS", "Humberto Delgado", "Lisbon"},
    {"ATH", "Eleftherios Venizelos", "Athens"},
    {"IST", "Istanbul Airport", "Istanbul"},
    {"CAI", "Cairo International", "Cairo"},
    {"CPT", "Cape Town International", "Cape Town"},
    {"LOS", "Murtala Muhammed International", "Lagos"},
    {"EZE", "Ministro Pistarini", "Buenos Aires"},
    {"SCL", "Arturo Merino Benitez", "Santiago"},
    {"BOG", "El Dorado International", "Bogota"},
    {"ICN", "Incheon International", "Seoul"},
    {"CGK", "Soekarno-Hatta International", "Jakarta"},
    {"BKK", "Suvarnabhumi", "Bangkok"},
    {"SIN", "Changi", "Singapore"},
    {"AKL", "Auckland Airport", "Auckland"},
    {"DUB", "Dublin Airport", "Dublin"},
    {"VIE", "Vienna International", "Vienna"},
    {"BRU", "Brussels Airport", "Brussels"},
    {"CPH", "Kastrup", "Copenhagen"},
    {"HEL", "Vantaa", "Helsinki"},
    {"PRG", "Vaclav Havel", "Prague"},
    {"BUD", "Ferenc Liszt International", "Budapest"},
    {"OTP", "Henri Coanda International", "Bucharest"},
    {"CMN", "Mohammed V International", "Casablanca"},
    {"TLV", "Ben Gurion", "Tel Aviv"},
};

struct AirlineSeed {
  const char* name;
  const char* country;
  int founded;
};

constexpr AirlineSeed kAirlines[] = {
    {"American Airlines", "United States", 1930},
    {"Delta Air Lines", "United States", 1925},
    {"United Airlines", "United States", 1926},
    {"British Airways", "United Kingdom", 1974},
    {"Air France", "France", 1933},
    {"Lufthansa", "Germany", 1953},
    {"Alitalia", "Italy", 1946},
    {"Iberia", "Spain", 1927},
    {"Air China", "China", 1988},
    {"Japan Airlines", "Japan", 1951},
    {"Air India", "India", 1932},
    {"LATAM Brasil", "Brazil", 1976},
    {"Air Canada", "Canada", 1937},
    {"Qantas", "Australia", 1920},
    {"Aeroflot", "Russia", 1923},
    {"Aeromexico", "Mexico", 1934},
    {"KLM", "Netherlands", 1919},
    {"Swiss International", "Switzerland", 2002},
    {"SAS", "Sweden", 1946},
    {"LOT Polish Airlines", "Poland", 1928},
    {"TAP Air Portugal", "Portugal", 1945},
    {"Aegean Airlines", "Greece", 1987},
    {"Turkish Airlines", "Turkey", 1933},
    {"EgyptAir", "Egypt", 1932},
    {"South African Airways", "South Africa", 1934},
    {"Korean Air", "South Korea", 1969},
    {"Garuda Indonesia", "Indonesia", 1949},
    {"Thai Airways", "Thailand", 1960},
    {"Singapore Airlines", "Singapore", 1947},
    {"Air New Zealand", "New Zealand", 1940},
    {"Aer Lingus", "Ireland", 1936},
    {"Austrian Airlines", "Austria", 1957},
};

constexpr const char* kFirstNames[] = {
    "James",  "Mary",    "Robert",  "Linda",  "Michael", "Elena",
    "David",  "Sofia",   "Carlos",  "Anna",   "Pierre",  "Marta",
    "Hans",   "Giulia",  "Marco",   "Laura",  "Pedro",   "Ines",
    "Ivan",   "Olga",    "Kenji",   "Yuki",   "Wei",     "Mei",
    "Raj",    "Priya",   "Ahmed",   "Fatima", "Kwame",   "Amara",
    "Diego",  "Camila",  "Lucas",   "Emma",   "Oliver",  "Sophie",
    "Liam",   "Chloe",   "Noah",    "Isabella",
};

constexpr const char* kLastNames[] = {
    "Smith",    "Johnson",  "Brown",   "Garcia",   "Martinez", "Rossi",
    "Ferrari",  "Dubois",   "Martin",  "Mueller",  "Schmidt",  "Silva",
    "Santos",   "Ivanov",   "Petrov",  "Tanaka",   "Suzuki",   "Wang",
    "Li",       "Patel",    "Sharma",  "Hassan",   "Ali",      "Okafor",
    "Mensah",   "Gonzalez", "Lopez",   "Andersen", "Nielsen",  "Kowalski",
    "Novak",    "Papadopoulos", "Yilmaz", "Kim",   "Park",     "Nguyen",
};

constexpr const char* kGenres[] = {
    "pop", "rock", "jazz", "classical", "hip hop", "folk", "electronic",
    "country",
};

constexpr const char* kParties[] = {
    "Progressive Party", "Civic Union", "Green Alliance",
    "Liberal Movement", "National Forum",
};

struct LanguageSeed {
  const char* name;
  const char* family;
};

constexpr LanguageSeed kLanguages[] = {
    {"English", "Germanic"},   {"Mandarin", "Sino-Tibetan"},
    {"Hindi", "Indo-Aryan"},   {"Spanish", "Romance"},
    {"French", "Romance"},     {"Arabic", "Semitic"},
    {"Portuguese", "Romance"}, {"Russian", "Slavic"},
    {"Japanese", "Japonic"},   {"German", "Germanic"},
    {"Korean", "Koreanic"},    {"Italian", "Romance"},
    {"Turkish", "Turkic"},     {"Vietnamese", "Austroasiatic"},
    {"Polish", "Slavic"},      {"Dutch", "Germanic"},
    {"Thai", "Kra-Dai"},       {"Swedish", "Germanic"},
    {"Greek", "Hellenic"},     {"Hebrew", "Semitic"},
};

/// Per-entity deterministic RNG: independent of generation order.
Rng EntityRng(uint64_t seed, const std::string& concept_name,
              const std::string& key) {
  return Rng(seed ^ Rng::HashString(concept_name) * 3 ^ Rng::HashString(key));
}

}  // namespace

const Value* Entity::FindAttribute(const std::string& name) const {
  auto it = attributes.find(name);
  if (it == attributes.end()) return nullptr;
  return &it->second;
}

const Entity* EntitySet::FindEntity(const std::string& key) const {
  for (const Entity& e : entities) {
    if (EqualsIgnoreCase(e.key, key)) return &e;
  }
  return nullptr;
}

void WorldKb::AddConcept(EntitySet set) {
  concepts_[set.concept_name] = std::move(set);
}

const EntitySet* WorldKb::FindConcept(const std::string& concept_name) const {
  auto it = concepts_.find(ToLower(concept_name));
  if (it == concepts_.end()) return nullptr;
  return &it->second;
}

Result<const EntitySet*> WorldKb::GetConcept(
    const std::string& concept_name) const {
  const EntitySet* set = FindConcept(concept_name);
  if (set == nullptr) {
    return Status::NotFound("unknown concept_name '" + concept_name + "'");
  }
  return set;
}

Result<Value> WorldKb::GetAttribute(const std::string& concept_name,
                                    const std::string& key,
                                    const std::string& attribute) const {
  GALOIS_ASSIGN_OR_RETURN(const EntitySet* set, GetConcept(concept_name));
  const Entity* entity = set->FindEntity(key);
  if (entity == nullptr) {
    return Status::NotFound("unknown " + concept_name + " '" + key + "'");
  }
  const Value* v = entity->FindAttribute(ToLower(attribute));
  if (v == nullptr) {
    return Status::NotFound("unknown attribute '" + attribute + "' of " +
                            concept_name + " '" + key + "'");
  }
  return *v;
}

std::vector<std::string> WorldKb::ConceptNames() const {
  std::vector<std::string> names;
  names.reserve(concepts_.size());
  for (const auto& [name, set] : concepts_) names.push_back(name);
  return names;
}

std::vector<std::string> WorldKb::SurfaceForms(const std::string& concept_name,
                                               const std::string& key) const {
  std::vector<std::string> forms{key};
  const EntitySet* set = FindConcept(concept_name);
  if (set == nullptr) return forms;
  const Entity* e = set->FindEntity(key);
  if (e == nullptr) return forms;
  std::string lc = ToLower(concept_name);
  if (lc == "country") {
    if (const Value* v = e->FindAttribute("code"); v && !v->is_null()) {
      forms.push_back(v->string_value());  // ISO-3
    }
    if (const Value* v = e->FindAttribute("code2"); v && !v->is_null()) {
      forms.push_back(v->string_value());  // ISO-2
    }
  } else if (lc == "airport") {
    if (const Value* v = e->FindAttribute("name"); v && !v->is_null()) {
      forms.push_back(v->string_value());
    }
  } else if (lc == "mayor" || lc == "singer") {
    // "J. Smith" abbreviation of "James Smith".
    auto space = key.find(' ');
    if (space != std::string::npos && space > 0) {
      forms.push_back(key.substr(0, 1) + ". " + key.substr(space + 1));
    }
  } else if (lc == "city") {
    // Country-disambiguated form, the natural LLM answer style:
    // "Rome, Italy".
    if (const Value* v = e->FindAttribute("country"); v && !v->is_null()) {
      forms.push_back(key + ", " + v->string_value());
    }
  } else if (lc == "stadium") {
    forms.push_back("The " + key);
  } else if (lc == "language") {
    forms.push_back(key + " language");
  }
  return forms;
}

std::string WorldKb::ReferencedConcept(const std::string& concept_name,
                                       const std::string& attribute) {
  const std::string c = ToLower(concept_name);
  const std::string a = ToLower(attribute);
  // city.country, airline.country, singer.country hold country keys.
  if (a == "country" && c != "country") return "country";
  if ((a == "city" && c != "city") || a == "capital") return "city";
  if (a == "mayor" && c != "mayor") return "mayor";
  if (a == "singer" && c != "singer") return "singer";
  if (a == "stadium" && c != "stadium") return "stadium";
  if (a == "language" && c == "country") return "language";
  return "";
}

WorldKb WorldKb::Generate(uint64_t seed) {
  WorldKb kb;
  const size_t num_countries = std::size(kCountries);

  // --- countries ---
  EntitySet countries;
  countries.concept_name = "country";
  countries.key_attribute = "name";
  for (size_t i = 0; i < num_countries; ++i) {
    const CountrySeed& cs = kCountries[i];
    Rng rng = EntityRng(seed, "country", cs.name);
    Entity e;
    e.key = cs.name;
    // Popularity decays with list position: 1.0 down to ~0.2.
    e.popularity = 1.0 - 0.8 * static_cast<double>(i) /
                             static_cast<double>(num_countries - 1);
    e.attributes["name"] = Value::String(cs.name);
    e.attributes["code"] = Value::String(cs.code3);
    e.attributes["code2"] = Value::String(cs.code2);
    e.attributes["continent"] = Value::String(cs.continent);
    e.attributes["capital"] = Value::String(cs.capital);
    e.attributes["language"] = Value::String(cs.language);
    e.attributes["currency"] = Value::String(cs.currency);
    // Synthetic but plausible magnitudes; the DB ground truth uses the
    // same values, so absolute realism is irrelevant to the experiments.
    e.attributes["population"] =
        Value::Int(rng.NextInt(2, 320) * 1000000);
    e.attributes["area"] = Value::Int(rng.NextInt(40, 9000) * 1000);
    e.attributes["gdp"] = Value::Double(rng.NextInt(50, 21000) * 1.0);
    e.attributes["independenceyear"] =
        Value::Int(rng.NextInt(1776, 1991));
    countries.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(countries));

  // --- cities (capitals + extras) and mayors ---
  EntitySet cities;
  cities.concept_name = "city";
  cities.key_attribute = "name";
  EntitySet mayors;
  mayors.concept_name = "mayor";
  mayors.key_attribute = "name";
  size_t person_idx = 0;
  auto add_city = [&](const std::string& city, const std::string& country,
                      double country_pop, bool is_capital) {
    Rng rng = EntityRng(seed, "city", city);
    // Person name: deterministic walk through the pools.
    const char* first =
        kFirstNames[(person_idx * 7 + 3) % std::size(kFirstNames)];
    const char* last =
        kLastNames[(person_idx * 11 + 5) % std::size(kLastNames)];
    ++person_idx;
    std::string mayor_name = std::string(first) + " " + last;

    Entity e;
    e.key = city;
    e.popularity = std::min(1.0, country_pop * (is_capital ? 1.0 : 0.85) +
                                     rng.NextDouble() * 0.05);
    e.attributes["name"] = Value::String(city);
    e.attributes["country"] = Value::String(country);
    e.attributes["population"] =
        Value::Int(rng.NextInt(200, 22000) * 1000);
    e.attributes["mayor"] = Value::String(mayor_name);
    e.attributes["elevation"] = Value::Int(rng.NextInt(1, 2200));
    e.attributes["foundedyear"] = Value::Int(rng.NextInt(800, 1900));
    e.attributes["iscapital"] = Value::Bool(is_capital);
    cities.entities.push_back(std::move(e));

    Rng mrng = EntityRng(seed, "mayor", mayor_name);
    Entity m;
    m.key = mayor_name;
    m.popularity = std::max(
        0.05, cities.entities.back().popularity * 0.6);
    m.attributes["name"] = Value::String(mayor_name);
    int birth_year = static_cast<int>(mrng.NextInt(1948, 1982));
    int birth_month = static_cast<int>(mrng.NextInt(1, 12));
    int birth_day = static_cast<int>(mrng.NextInt(1, 28));
    m.attributes["birthdate"] =
        Value::Date(birth_year, birth_month, birth_day);
    m.attributes["age"] = Value::Int(2023 - birth_year);
    m.attributes["electionyear"] =
        Value::Int(mrng.NextInt(2016, 2022));
    m.attributes["party"] = Value::String(
        kParties[mrng.NextInt(0, std::size(kParties) - 1)]);
    m.attributes["city"] = Value::String(city);
    mayors.entities.push_back(std::move(m));
  };
  for (size_t i = 0; i < num_countries; ++i) {
    const CountrySeed& cs = kCountries[i];
    double country_pop = 1.0 - 0.8 * static_cast<double>(i) /
                                   static_cast<double>(num_countries - 1);
    add_city(cs.capital, cs.name, country_pop, /*is_capital=*/true);
  }
  for (const CitySeed& cs : kExtraCities) {
    // Find the country popularity.
    double country_pop = 0.5;
    for (size_t i = 0; i < num_countries; ++i) {
      if (std::string_view(kCountries[i].name) == cs.country) {
        country_pop = 1.0 - 0.8 * static_cast<double>(i) /
                                static_cast<double>(num_countries - 1);
        break;
      }
    }
    add_city(cs.city, cs.country, country_pop, /*is_capital=*/false);
  }
  kb.AddConcept(std::move(cities));
  kb.AddConcept(std::move(mayors));

  // --- airports ---
  EntitySet airports;
  airports.concept_name = "airport";
  airports.key_attribute = "code";
  for (size_t i = 0; i < std::size(kAirports); ++i) {
    const AirportSeed& as = kAirports[i];
    Rng rng = EntityRng(seed, "airport", as.code);
    Entity e;
    e.key = as.code;
    e.popularity = 1.0 - 0.75 * static_cast<double>(i) /
                             static_cast<double>(std::size(kAirports) - 1);
    e.attributes["code"] = Value::String(as.code);
    e.attributes["name"] = Value::String(as.name);
    e.attributes["city"] = Value::String(as.city);
    e.attributes["elevation"] = Value::Int(rng.NextInt(2, 1600));
    e.attributes["runways"] = Value::Int(rng.NextInt(1, 6));
    e.attributes["passengers"] =
        Value::Int(rng.NextInt(4, 100) * 1000000);
    airports.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(airports));

  // --- airlines ---
  EntitySet airlines;
  airlines.concept_name = "airline";
  airlines.key_attribute = "name";
  for (size_t i = 0; i < std::size(kAirlines); ++i) {
    const AirlineSeed& as = kAirlines[i];
    Rng rng = EntityRng(seed, "airline", as.name);
    Entity e;
    e.key = as.name;
    e.popularity = 1.0 - 0.7 * static_cast<double>(i) /
                             static_cast<double>(std::size(kAirlines) - 1);
    e.attributes["name"] = Value::String(as.name);
    e.attributes["country"] = Value::String(as.country);
    e.attributes["foundedyear"] = Value::Int(as.founded);
    e.attributes["fleetsize"] = Value::Int(rng.NextInt(20, 950));
    e.attributes["destinations"] = Value::Int(rng.NextInt(15, 320));
    airlines.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(airlines));

  // --- singers ---
  EntitySet singers;
  singers.concept_name = "singer";
  singers.key_attribute = "name";
  const size_t num_singers = 36;
  for (size_t i = 0; i < num_singers; ++i) {
    const char* first = kFirstNames[(i * 13 + 1) % std::size(kFirstNames)];
    const char* last = kLastNames[(i * 17 + 7) % std::size(kLastNames)];
    std::string name = std::string(first) + " " + last;
    Rng rng = EntityRng(seed, "singer", name);
    Entity e;
    e.key = name;
    e.popularity =
        1.0 - 0.85 * static_cast<double>(i) / (num_singers - 1);
    e.attributes["name"] = Value::String(name);
    e.attributes["country"] = Value::String(
        kCountries[rng.NextInt(0, num_countries - 1)].name);
    e.attributes["birthyear"] = Value::Int(rng.NextInt(1950, 2000));
    e.attributes["genre"] = Value::String(
        kGenres[rng.NextInt(0, std::size(kGenres) - 1)]);
    e.attributes["networth"] =
        Value::Double(rng.NextInt(1, 400) * 1.0);  // millions
    singers.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(singers));

  // --- stadiums ---
  EntitySet stadiums;
  stadiums.concept_name = "stadium";
  stadiums.key_attribute = "name";
  const char* kStadiumKinds[] = {"Arena", "Stadium", "Park", "Dome",
                                 "Coliseum"};
  const EntitySet* city_set = kb.FindConcept("city");
  const size_t num_stadiums = 30;
  for (size_t i = 0; i < num_stadiums; ++i) {
    const Entity& city =
        city_set->entities[(i * 7 + 2) % city_set->entities.size()];
    std::string name =
        city.key + " " + kStadiumKinds[i % std::size(kStadiumKinds)];
    Rng rng = EntityRng(seed, "stadium", name);
    Entity e;
    e.key = name;
    e.popularity = std::max(0.1, city.popularity * 0.7);
    e.attributes["name"] = Value::String(name);
    e.attributes["city"] = Value::String(city.key);
    e.attributes["capacity"] = Value::Int(rng.NextInt(8, 95) * 1000);
    e.attributes["openedyear"] = Value::Int(rng.NextInt(1920, 2015));
    stadiums.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(stadiums));

  // --- concerts ---
  EntitySet concerts;
  concerts.concept_name = "concert";
  concerts.key_attribute = "name";
  const EntitySet* singer_set = kb.FindConcept("singer");
  const EntitySet* stadium_set = kb.FindConcept("stadium");
  const size_t num_concerts = 60;
  for (size_t i = 0; i < num_concerts; ++i) {
    const Entity& singer =
        singer_set->entities[(i * 5 + 1) % singer_set->entities.size()];
    const Entity& stadium =
        stadium_set->entities[(i * 11 + 3) % stadium_set->entities.size()];
    Rng rng = EntityRng(seed, "concert",
                        singer.key + "#" + std::to_string(i));
    int year = static_cast<int>(rng.NextInt(2014, 2023));
    std::string name =
        singer.key + " Live " + std::to_string(year) + " #" +
        std::to_string(i + 1);
    Entity e;
    e.key = name;
    e.popularity = std::max(0.05, singer.popularity * 0.55);
    e.attributes["name"] = Value::String(name);
    e.attributes["singer"] = Value::String(singer.key);
    e.attributes["stadium"] = Value::String(stadium.key);
    e.attributes["year"] = Value::Int(year);
    e.attributes["attendance"] = Value::Int(rng.NextInt(4, 90) * 1000);
    concerts.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(concerts));

  // --- languages ---
  EntitySet languages;
  languages.concept_name = "language";
  languages.key_attribute = "name";
  for (size_t i = 0; i < std::size(kLanguages); ++i) {
    const LanguageSeed& ls = kLanguages[i];
    Rng rng = EntityRng(seed, "language", ls.name);
    Entity e;
    e.key = ls.name;
    e.popularity = 1.0 - 0.8 * static_cast<double>(i) /
                             static_cast<double>(std::size(kLanguages) - 1);
    e.attributes["name"] = Value::String(ls.name);
    e.attributes["family"] = Value::String(ls.family);
    e.attributes["speakers"] =
        Value::Int(rng.NextInt(5, 1100) * 1000000);
    languages.entities.push_back(std::move(e));
  }
  kb.AddConcept(std::move(languages));

  return kb;
}

}  // namespace galois::knowledge
