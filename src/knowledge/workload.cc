#include "knowledge/workload.h"

#include "common/rng.h"
#include "common/strings.h"

namespace galois::knowledge {

namespace {

using catalog::ColumnDef;
using catalog::SourceKind;
using catalog::TableDef;

TableDef CountryTable() {
  TableDef t;
  t.name = "country";
  t.entity_type = "country";
  t.key_column = "name";
  t.default_source = SourceKind::kLlm;
  t.columns = {
      ColumnDef("name", DataType::kString, true, "country name"),
      ColumnDef("code", DataType::kString, false, "ISO 3166 alpha-3 code"),
      ColumnDef("code2", DataType::kString, false, "ISO 3166 alpha-2 code"),
      ColumnDef("continent", DataType::kString, false, "continent"),
      ColumnDef("capital", DataType::kString, false, "capital city"),
      ColumnDef("language", DataType::kString, false, "official language"),
      ColumnDef("currency", DataType::kString, false, "currency"),
      ColumnDef("population", DataType::kInt64, false, "population"),
      ColumnDef("area", DataType::kInt64, false, "area in square km"),
      ColumnDef("gdp", DataType::kDouble, false, "GDP in billion dollars"),
      ColumnDef("independenceYear", DataType::kInt64, false,
                "year of independence"),
  };
  return t;
}

TableDef CityTable() {
  TableDef t;
  t.name = "city";
  t.entity_type = "city";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "city name"),
      ColumnDef("country", DataType::kString, false,
                "country the city is located in"),
      ColumnDef("population", DataType::kInt64, false, "population"),
      ColumnDef("mayor", DataType::kString, false, "current mayor"),
      ColumnDef("elevation", DataType::kInt64, false,
                "elevation above sea level in meters"),
      ColumnDef("foundedYear", DataType::kInt64, false, "founding year"),
  };
  return t;
}

TableDef CityMayorTable() {
  TableDef t;
  t.name = "cityMayor";
  t.entity_type = "mayor";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "mayor name"),
      ColumnDef("birthDate", DataType::kDate, false, "date of birth"),
      ColumnDef("age", DataType::kInt64, false, "age in years"),
      ColumnDef("electionYear", DataType::kInt64, false,
                "year elected to office"),
      ColumnDef("party", DataType::kString, false, "political party"),
      ColumnDef("city", DataType::kString, false, "city governed"),
  };
  return t;
}

TableDef AirportTable() {
  TableDef t;
  t.name = "airport";
  t.entity_type = "airport";
  t.key_column = "code";
  t.columns = {
      ColumnDef("code", DataType::kString, true, "IATA airport code"),
      ColumnDef("name", DataType::kString, false, "airport name"),
      ColumnDef("city", DataType::kString, false, "city served"),
      ColumnDef("elevation", DataType::kInt64, false,
                "elevation in meters"),
      ColumnDef("runways", DataType::kInt64, false, "number of runways"),
      ColumnDef("passengers", DataType::kInt64, false,
                "annual passengers"),
  };
  return t;
}

TableDef AirlineTable() {
  TableDef t;
  t.name = "airline";
  t.entity_type = "airline";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "airline name"),
      ColumnDef("country", DataType::kString, false, "home country"),
      ColumnDef("foundedYear", DataType::kInt64, false, "founding year"),
      ColumnDef("fleetSize", DataType::kInt64, false,
                "number of aircraft"),
      ColumnDef("destinations", DataType::kInt64, false,
                "number of destinations"),
  };
  return t;
}

TableDef SingerTable() {
  TableDef t;
  t.name = "singer";
  t.entity_type = "singer";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "singer name"),
      ColumnDef("country", DataType::kString, false, "country of origin"),
      ColumnDef("birthYear", DataType::kInt64, false, "year of birth"),
      ColumnDef("genre", DataType::kString, false, "music genre"),
      ColumnDef("netWorth", DataType::kDouble, false,
                "net worth in million dollars"),
  };
  return t;
}

TableDef ConcertTable() {
  TableDef t;
  t.name = "concert";
  t.entity_type = "concert";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "concert name"),
      ColumnDef("singer", DataType::kString, false, "performing singer"),
      ColumnDef("stadium", DataType::kString, false, "host stadium"),
      ColumnDef("year", DataType::kInt64, false, "year held"),
      ColumnDef("attendance", DataType::kInt64, false, "attendance"),
  };
  return t;
}

TableDef StadiumTable() {
  TableDef t;
  t.name = "stadium";
  t.entity_type = "stadium";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "stadium name"),
      ColumnDef("city", DataType::kString, false, "city"),
      ColumnDef("capacity", DataType::kInt64, false, "seating capacity"),
      ColumnDef("openedYear", DataType::kInt64, false, "opening year"),
  };
  return t;
}

TableDef LanguageTable() {
  TableDef t;
  t.name = "language";
  t.entity_type = "language";
  t.key_column = "name";
  t.columns = {
      ColumnDef("name", DataType::kString, true, "language name"),
      ColumnDef("family", DataType::kString, false, "language family"),
      ColumnDef("speakers", DataType::kInt64, false,
                "number of speakers"),
  };
  return t;
}

/// DB-only table used by the hybrid querying example from the paper's
/// introduction: it exists in a traditional database, not in the LLM.
TableDef EmployeesTable() {
  TableDef t;
  t.name = "Employees";
  t.entity_type = "employee";
  t.key_column = "name";
  t.default_source = SourceKind::kDb;
  t.columns = {
      ColumnDef("name", DataType::kString, true, "employee name"),
      ColumnDef("countryCode", DataType::kString, false,
                "ISO-3 code of the employee's country"),
      ColumnDef("salary", DataType::kDouble, false, "annual salary"),
  };
  return t;
}

/// Synthesises the Employees instance (not KB-backed).
Relation MakeEmployees(const WorldKb& kb, uint64_t seed) {
  const EntitySet* countries = kb.FindConcept("country");
  Relation rel(EmployeesTable().ToSchema());
  Rng rng(seed ^ 0xE3212EE5ULL);
  int id = 0;
  for (size_t i = 0; i < countries->entities.size(); i += 3) {
    const Entity& c = countries->entities[i];
    const Value* code = c.FindAttribute("code");
    int employees_here = static_cast<int>(rng.NextInt(2, 5));
    for (int e = 0; e < employees_here; ++e) {
      ++id;
      Tuple row;
      row.push_back(Value::String("Employee " + std::to_string(id)));
      row.push_back(*code);
      row.push_back(Value::Double(
          30000.0 + static_cast<double>(rng.NextInt(0, 90000))));
      rel.AddRowUnchecked(std::move(row));
    }
  }
  return rel;
}

std::vector<QuerySpec> BuildQueries() {
  std::vector<QuerySpec> qs;
  auto add = [&qs](QueryClass cls, const std::string& sql,
                   const std::string& question) {
    QuerySpec spec;
    spec.id = static_cast<int>(qs.size()) + 1;
    spec.sql = sql;
    spec.question = question;
    spec.query_class = cls;
    qs.push_back(std::move(spec));
  };
  using QC = QueryClass;

  // --- selection-only -----------------------------------------------------
  add(QC::kSelection,
      "SELECT name FROM country WHERE continent = 'Europe'",
      "What are the names of the countries in Europe?");
  add(QC::kSelection,
      "SELECT name FROM country WHERE independenceYear > 1950",
      "What are the names of the countries that became independent after "
      "1950?");
  add(QC::kSelection, "SELECT capital FROM country WHERE name = 'France'",
      "What is the capital of France?");
  add(QC::kSelection,
      "SELECT name, capital FROM country WHERE continent = 'Asia'",
      "List the Asian countries together with their capitals.");
  add(QC::kSelection, "SELECT name FROM city WHERE population > 5000000",
      "Which cities have more than 5 million inhabitants?");
  add(QC::kSelection, "SELECT name FROM country WHERE language = 'English'",
      "Which countries have English as their official language?");
  add(QC::kSelection, "SELECT code FROM airport WHERE city = 'London'",
      "What are the IATA codes of the airports serving London?");
  add(QC::kSelection, "SELECT name FROM airline WHERE foundedYear < 1940",
      "Which airlines were founded before 1940?");
  add(QC::kSelection, "SELECT name FROM singer WHERE genre = 'pop'",
      "Which singers perform pop music?");
  add(QC::kSelection, "SELECT name FROM singer WHERE birthYear > 1980",
      "Which singers were born after 1980?");
  add(QC::kSelection, "SELECT name FROM stadium WHERE capacity > 60000",
      "Which stadiums can seat more than 60000 people?");
  add(QC::kSelection,
      "SELECT name FROM country WHERE continent = 'Africa'",
      "What are the names of the African countries?");
  add(QC::kSelection,
      "SELECT name, population FROM country WHERE population > 100000000",
      "Which countries have a population above 100 million, and what is "
      "it?");
  add(QC::kSelection, "SELECT name FROM language WHERE family = 'Romance'",
      "Which languages belong to the Romance family?");
  add(QC::kSelection, "SELECT name FROM concert WHERE year = 2020",
      "Which concerts took place in 2020?");
  add(QC::kSelection,
      "SELECT name, mayor FROM city WHERE country = 'Italy'",
      "List the Italian cities and their current mayors.");

  // --- aggregates ----------------------------------------------------------
  add(QC::kAggregate,
      "SELECT COUNT(*) FROM country WHERE continent = 'Europe'",
      "How many countries are in Europe?");
  add(QC::kAggregate,
      "SELECT AVG(population) FROM country WHERE continent = 'Asia'",
      "What is the average population of Asian countries?");
  add(QC::kAggregate, "SELECT MAX(population) FROM country",
      "What is the population of the most populous country?");
  add(QC::kAggregate, "SELECT COUNT(*) FROM airport WHERE runways > 2",
      "How many airports have more than two runways?");
  add(QC::kAggregate,
      "SELECT continent, COUNT(*) FROM country GROUP BY continent",
      "How many countries are there on each continent?");
  add(QC::kAggregate, "SELECT AVG(capacity) FROM stadium",
      "What is the average capacity of the stadiums?");
  add(QC::kAggregate, "SELECT MIN(foundedYear) FROM airline",
      "In what year was the oldest airline founded?");
  add(QC::kAggregate, "SELECT genre, COUNT(*) FROM singer GROUP BY genre",
      "How many singers are there for each music genre?");
  add(QC::kAggregate,
      "SELECT SUM(population) FROM city WHERE country = 'Japan'",
      "What is the total population of the Japanese cities?");
  add(QC::kAggregate,
      "SELECT COUNT(*) FROM singer WHERE country = 'United States'",
      "How many singers are from the United States?");
  add(QC::kAggregate,
      "SELECT AVG(netWorth) FROM singer WHERE genre = 'rock'",
      "What is the average net worth of rock singers?");
  add(QC::kAggregate, "SELECT year, COUNT(*) FROM concert GROUP BY year",
      "How many concerts were held in each year?");
  add(QC::kAggregate, "SELECT MAX(speakers) FROM language",
      "How many people speak the most spoken language?");
  add(QC::kAggregate, "SELECT COUNT(DISTINCT country) FROM city",
      "How many different countries have a listed city?");
  add(QC::kAggregate, "SELECT AVG(elevation) FROM airport",
      "What is the average elevation of the airports?");

  // --- joins only ----------------------------------------------------------
  add(QC::kJoin,
      "SELECT ci.name, co.continent FROM city ci, country co "
      "WHERE ci.country = co.name",
      "For each city, which continent is it on?");
  add(QC::kJoin,
      "SELECT a.name, ci.country FROM airport a, city ci "
      "WHERE a.city = ci.name",
      "For each airport, in which country is it located?");
  add(QC::kJoin,
      "SELECT s.name, c.name FROM singer s, concert c "
      "WHERE c.singer = s.name AND c.year = 2022",
      "Which singers performed a concert in 2022, and which concert?");
  add(QC::kJoin,
      "SELECT c.name, cm.birthDate FROM city c, cityMayor cm "
      "WHERE c.mayor = cm.name AND cm.electionYear = 2019",
      "List names of the cities and mayor birth date for the cities where "
      "the current mayor has been in charge since 2019.");
  add(QC::kJoin,
      "SELECT st.name, ci.country FROM stadium st, city ci "
      "WHERE st.city = ci.name",
      "For each stadium, in which country is it?");
  add(QC::kJoin,
      "SELECT al.name, co.capital FROM airline al, country co "
      "WHERE al.country = co.name",
      "For each airline, what is the capital of its home country?");
  add(QC::kJoin,
      "SELECT co.name, la.family FROM country co, language la "
      "WHERE co.language = la.name",
      "For each country, which family does its official language belong "
      "to?");
  add(QC::kJoin,
      "SELECT c.name, s.country FROM concert c, singer s "
      "WHERE c.singer = s.name AND c.attendance > 50000",
      "For concerts with attendance above 50000, where is the singer "
      "from?");

  // --- join + aggregate (count toward 'All' only) --------------------------
  add(QC::kJoinAggregate,
      "SELECT co.continent, COUNT(*) FROM city ci, country co "
      "WHERE ci.country = co.name GROUP BY co.continent",
      "How many of the listed cities are on each continent?");
  add(QC::kJoinAggregate,
      "SELECT co.name, AVG(ci.population) FROM city ci, country co "
      "WHERE ci.country = co.name GROUP BY co.name",
      "What is the average population of the listed cities per country?");
  add(QC::kJoinAggregate,
      "SELECT s.genre, AVG(c.attendance) FROM concert c, singer s "
      "WHERE c.singer = s.name GROUP BY s.genre",
      "What is the average concert attendance for each music genre?");
  add(QC::kJoinAggregate,
      "SELECT COUNT(*) FROM airport a, city ci "
      "WHERE a.city = ci.name AND ci.country = 'United States'",
      "How many of the listed airports are in the United States?");
  add(QC::kJoinAggregate,
      "SELECT ci.country, COUNT(*) FROM stadium st, city ci "
      "WHERE st.city = ci.name GROUP BY ci.country",
      "How many stadiums are there in each country?");
  add(QC::kJoinAggregate,
      "SELECT AVG(cm.age) FROM city c, cityMayor cm "
      "WHERE c.mayor = cm.name AND c.country = 'Germany'",
      "What is the average age of the mayors of German cities?");
  add(QC::kJoinAggregate,
      "SELECT la.family, SUM(la.speakers) FROM country co, language la "
      "WHERE co.language = la.name GROUP BY la.family",
      "For language families of official country languages, how many "
      "speakers do they have in total?");

  return qs;
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kSelection:
      return "Selection";
    case QueryClass::kAggregate:
      return "Aggregate";
    case QueryClass::kJoin:
      return "Join";
    case QueryClass::kJoinAggregate:
      return "JoinAggregate";
  }
  return "?";
}

Result<Relation> MaterialiseFromKb(const WorldKb& kb,
                                   const catalog::TableDef& def) {
  GALOIS_ASSIGN_OR_RETURN(const EntitySet* set,
                          kb.GetConcept(def.entity_type));
  Relation rel(def.ToSchema());
  for (const Entity& e : set->entities) {
    Tuple row;
    row.reserve(def.columns.size());
    for (const catalog::ColumnDef& col : def.columns) {
      const Value* v = e.FindAttribute(ToLower(col.name));
      if (v == nullptr) {
        return Status::Internal("entity '" + e.key + "' of concept '" +
                                def.entity_type + "' lacks attribute '" +
                                col.name + "'");
      }
      row.push_back(*v);
    }
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

Result<SpiderLikeWorkload> SpiderLikeWorkload::Create(uint64_t seed) {
  SpiderLikeWorkload w;
  w.kb_ = WorldKb::Generate(seed);
  std::vector<catalog::TableDef> defs = {
      CountryTable(), CityTable(),    CityMayorTable(),
      AirportTable(), AirlineTable(), SingerTable(),
      ConcertTable(), StadiumTable(), LanguageTable(),
  };
  for (catalog::TableDef& def : defs) {
    GALOIS_ASSIGN_OR_RETURN(Relation instance,
                            MaterialiseFromKb(w.kb_, def));
    def.expected_rows = instance.NumRows();
    GALOIS_RETURN_IF_ERROR(w.catalog_.AddTable(def));
    GALOIS_RETURN_IF_ERROR(w.catalog_.AddInstance(def.name,
                                                  std::move(instance)));
  }
  // DB-only table for hybrid queries.
  GALOIS_RETURN_IF_ERROR(w.catalog_.AddTable(EmployeesTable()));
  GALOIS_RETURN_IF_ERROR(
      w.catalog_.AddInstance("Employees", MakeEmployees(w.kb_, seed)));
  w.queries_ = BuildQueries();
  return w;
}

Result<const QuerySpec*> SpiderLikeWorkload::GetQuery(int id) const {
  for (const QuerySpec& q : queries_) {
    if (q.id == id) return &q;
  }
  return Status::NotFound("no query with id " + std::to_string(id));
}

}  // namespace galois::knowledge
