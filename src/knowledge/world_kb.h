#ifndef GALOIS_KNOWLEDGE_WORLD_KB_H_
#define GALOIS_KNOWLEDGE_WORLD_KB_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "types/value.h"

namespace galois::knowledge {

/// One real-world entity: a key (its canonical name / code), a popularity
/// score in (0,1] (how frequently it would occur in web-scale pre-training
/// text — Section 3: "the default semantics for the LLM is to pick the most
/// popular interpretation"), and a bag of typed attributes.
struct Entity {
  std::string key;
  double popularity = 0.5;
  std::map<std::string, Value> attributes;

  const Value* FindAttribute(const std::string& name) const;
};

/// All entities of one concept_name ("country", "city", "airport", ...).
struct EntitySet {
  std::string concept_name;
  std::string key_attribute;  // e.g. "name" or "code"
  std::vector<Entity> entities;

  const Entity* FindEntity(const std::string& key) const;
};

/// The synthetic world knowledge base. It plays the role of "the facts the
/// LLM absorbed during pre-training": the simulated LLM answers prompts by
/// (noisily) reading this KB, while the ground-truth Spider-like database
/// instances are materialised from the *same* KB exactly. The gap between
/// the two is therefore exactly the simulated model error, which is the
/// quantity the paper's experiments measure.
///
/// Concepts: country, city, mayor, airport, airline, singer, concert,
/// stadium, language. All content is generated deterministically from the
/// seed, with realistic names and popularity skew.
class WorldKb {
 public:
  /// Builds the full world. `seed` controls all synthesised values.
  static WorldKb Generate(uint64_t seed = 20240325);

  const EntitySet* FindConcept(const std::string& concept_name) const;
  Result<const EntitySet*> GetConcept(const std::string& concept_name) const;

  /// Attribute of one entity (error when concept_name/entity/attr unknown).
  Result<Value> GetAttribute(const std::string& concept_name,
                             const std::string& key,
                             const std::string& attribute) const;

  std::vector<std::string> ConceptNames() const;

  /// Surface forms the world uses for an entity, most canonical first.
  /// e.g. country "Italy" -> {"Italy", "ITA", "IT"}. The simulated LLM may
  /// answer with any of these (Section 5: the failed `IT` vs `ITA` join).
  std::vector<std::string> SurfaceForms(const std::string& concept_name,
                                        const std::string& key) const;

  /// If `attribute` of `concept_name` holds keys of another concept_name (e.g.
  /// city.country -> "country"), returns that concept_name name; "" otherwise.
  /// These are the attributes whose non-canonical rendering breaks joins.
  static std::string ReferencedConcept(const std::string& concept_name,
                                       const std::string& attribute);

 private:
  void AddConcept(EntitySet set);

  std::map<std::string, EntitySet> concepts_;
};

}  // namespace galois::knowledge

#endif  // GALOIS_KNOWLEDGE_WORLD_KB_H_
