#include "llm/prompt_cache.h"

#include <utility>

namespace galois::llm {

bool PromptCache::Lookup(const std::string& text, size_t hash,
                         std::string* completion, bool* from_store) const {
  if (from_store != nullptr) *from_store = false;
  bool hit = false;
  bool preloaded = false;
  {
    const Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(hash);
    if (it != shard.map.end()) {
      for (const CacheEntry& entry : it->second) {
        if (entry.text == text) {
          *completion = entry.completion;
          hit = true;
          preloaded = entry.from_store;
          break;
        }
      }
    }
  }
  if (!hit) return false;
  if (preloaded) {
    if (from_store != nullptr) *from_store = true;
    if (hooks_.on_hit) hooks_.on_hit(text);
  }
  return true;
}

void PromptCache::Insert(const std::string& text, size_t hash,
                         const std::string& completion) {
  bool inserted = false;
  {
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& chain = shard.map[hash];
    bool exists = false;
    for (const CacheEntry& entry : chain) {
      if (entry.text == text) {
        exists = true;  // first insert wins, like emplace did
        break;
      }
    }
    if (!exists) {
      chain.push_back(CacheEntry{text, completion, false});
      inserted = true;
    }
  }
  if (inserted && hooks_.on_insert) hooks_.on_insert(text, completion);
}

void PromptCache::Preload(const std::string& text,
                          const std::string& completion) {
  const size_t hash = HashOf(text);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& chain = shard.map[hash];
  for (const CacheEntry& entry : chain) {
    if (entry.text == text) return;
  }
  chain.push_back(CacheEntry{text, completion, true});
}

void PromptCache::SetHooks(PromptCacheHooks hooks) {
  hooks_ = std::move(hooks);
}

Result<Completion> PromptCache::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> PromptCache::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> PromptCache::CompleteMetered(const Prompt& prompt,
                                                CostMeter* usage) {
  const size_t hash = HashOf(prompt.text);
  std::string cached;
  bool from_store = false;
  if (Lookup(prompt.text, hash, &cached, &from_store)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (from_store) store_hits_.fetch_add(1, std::memory_order_relaxed);
    if (usage != nullptr) {
      ++usage->cache_hits;
      if (from_store) ++usage->store_hits;
    }
    return Completion{std::move(cached)};
  }
  GALOIS_ASSIGN_OR_RETURN(Completion c,
                          inner_->CompleteMetered(prompt, usage));
  Insert(prompt.text, hash, c.text);
  return c;
}

Result<std::vector<Completion>> PromptCache::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (prompts.empty()) return std::vector<Completion>{};

  // Partition hits from misses; repeated miss texts within the batch map
  // onto one forwarded prompt (and count as hits: they cost no extra
  // completion).
  std::vector<Completion> out(prompts.size());
  std::vector<Prompt> miss_prompts;
  std::unordered_map<std::string, size_t> miss_slot;
  std::vector<std::vector<size_t>> miss_positions;
  std::vector<size_t> miss_hashes;
  int64_t hits = 0;
  int64_t store_hits = 0;
  for (size_t i = 0; i < prompts.size(); ++i) {
    const size_t hash = HashOf(prompts[i].text);
    std::string cached;
    bool from_store = false;
    if (Lookup(prompts[i].text, hash, &cached, &from_store)) {
      out[i].text = std::move(cached);
      ++hits;
      if (from_store) ++store_hits;
      continue;
    }
    auto [it, inserted] =
        miss_slot.try_emplace(prompts[i].text, miss_prompts.size());
    if (inserted) {
      miss_prompts.push_back(prompts[i]);
      miss_hashes.push_back(hash);
      miss_positions.emplace_back();
    } else {
      ++hits;  // in-batch duplicate: billed once
    }
    miss_positions[it->second].push_back(i);
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  store_hits_.fetch_add(store_hits, std::memory_order_relaxed);

  if (miss_prompts.empty()) {
    // Entirely served from cache: no inner round trip, but keep the batch
    // attribution (see header).
    batches_from_cache_.fetch_add(1, std::memory_order_relaxed);
    if (usage != nullptr) {
      usage->cache_hits += hits;
      usage->store_hits += store_hits;
      ++usage->num_batches;
    }
    return out;
  }

  GALOIS_ASSIGN_OR_RETURN(std::vector<Completion> completions,
                          inner_->CompleteBatchMetered(miss_prompts, usage));
  // The hits are reported only once the whole call succeeds, keeping the
  // nothing-on-error contract of the metered API.
  if (usage != nullptr) {
    usage->cache_hits += hits;
    usage->store_hits += store_hits;
  }
  if (completions.size() != miss_prompts.size()) {
    return Status::LlmError("inner CompleteBatch returned " +
                            std::to_string(completions.size()) +
                            " completions for " +
                            std::to_string(miss_prompts.size()) +
                            " prompts");
  }
  for (size_t m = 0; m < miss_prompts.size(); ++m) {
    Insert(miss_prompts[m].text, miss_hashes[m], completions[m].text);
    for (size_t pos : miss_positions[m]) out[pos] = completions[m];
  }
  return out;
}

CostMeter PromptCache::cost() const {
  CostMeter merged = inner_->cost();
  merged.cache_hits = hits_.load(std::memory_order_relaxed);
  merged.store_hits = store_hits_.load(std::memory_order_relaxed);
  merged.num_batches +=
      batches_from_cache_.load(std::memory_order_relaxed);
  return merged;
}

void PromptCache::ResetCost() {
  inner_->ResetCost();
  hits_.store(0, std::memory_order_relaxed);
  store_hits_.store(0, std::memory_order_relaxed);
  batches_from_cache_.store(0, std::memory_order_relaxed);
}

size_t PromptCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [hash, chain] : shard.map) total += chain.size();
  }
  return total;
}

void PromptCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  if (hooks_.on_clear) hooks_.on_clear();
}

}  // namespace galois::llm
