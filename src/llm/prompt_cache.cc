#include "llm/prompt_cache.h"

namespace galois::llm {

Result<Completion> PromptCache::Complete(const Prompt& prompt) {
  auto it = cache_.find(prompt.text);
  if (it != cache_.end()) {
    ++hits_;
    return Completion{it->second};
  }
  GALOIS_ASSIGN_OR_RETURN(Completion c, inner_->Complete(prompt));
  cache_.emplace(prompt.text, c.text);
  return c;
}

const CostMeter& PromptCache::cost() const {
  merged_ = inner_->cost();
  merged_.cache_hits = hits_;
  return merged_;
}

void PromptCache::ResetCost() {
  inner_->ResetCost();
  hits_ = 0;
}

}  // namespace galois::llm
