#include "llm/batch_scheduler.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

namespace galois::llm {

Result<std::vector<Completion>> BatchScheduler::Flush() {
  std::vector<Prompt> pending = std::move(pending_);
  pending_.clear();
  if (pending.empty()) return std::vector<Completion>{};

  // Dedupe by prompt text, first occurrence wins; slot_of maps every
  // pending position onto its distinct prompt.
  std::vector<size_t> slot_of(pending.size());
  std::vector<size_t> unique;  // indices into `pending`
  unique.reserve(pending.size());
  std::unordered_map<std::string, size_t> slot_by_text;
  slot_by_text.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    auto [it, inserted] =
        slot_by_text.try_emplace(pending[i].text, unique.size());
    if (inserted) unique.push_back(i);
    slot_of[i] = it->second;
  }

  std::vector<Completion> unique_out;
  unique_out.reserve(unique.size());
  if (!policy_.batch) {
    for (size_t idx : unique) {
      GALOIS_ASSIGN_OR_RETURN(Completion c, model_->Complete(pending[idx]));
      unique_out.push_back(std::move(c));
    }
  } else {
    const size_t chunk = policy_.max_batch_size == 0
                             ? unique.size()
                             : policy_.max_batch_size;
    for (size_t start = 0; start < unique.size(); start += chunk) {
      const size_t end = std::min(unique.size(), start + chunk);
      std::vector<Prompt> batch;
      batch.reserve(end - start);
      for (size_t j = start; j < end; ++j) {
        batch.push_back(pending[unique[j]]);
      }
      GALOIS_ASSIGN_OR_RETURN(std::vector<Completion> completions,
                              model_->CompleteBatch(batch));
      if (completions.size() != batch.size()) {
        return Status::LlmError("CompleteBatch returned " +
                                std::to_string(completions.size()) +
                                " completions for " +
                                std::to_string(batch.size()) + " prompts");
      }
      for (Completion& c : completions) unique_out.push_back(std::move(c));
    }
  }

  std::vector<Completion> out;
  out.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    out.push_back(unique_out[slot_of[i]]);
  }
  return out;
}

Result<std::vector<Completion>> BatchScheduler::Run(
    std::vector<Prompt> prompts) {
  for (Prompt& p : prompts) Add(std::move(p));
  return Flush();
}

}  // namespace galois::llm
