#include "llm/batch_scheduler.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"

namespace galois::llm {

namespace {

/// Verifies the one-completion-per-prompt invariant of CompleteBatch.
Status CheckBatchShape(size_t got, size_t want) {
  if (got == want) return Status::OK();
  return Status::LlmError("CompleteBatch returned " + std::to_string(got) +
                          " completions for " + std::to_string(want) +
                          " prompts");
}

}  // namespace

Status BatchScheduler::Annotate(const Status& status,
                                const std::string& where) const {
  std::string prefix =
      phase_.empty() ? "batch scheduler" : "batch scheduler phase '" + phase_ + "'";
  return Status(status.code(), prefix + " " + where + ": " + status.message());
}

Result<std::vector<Completion>> BatchScheduler::DispatchSequential(
    const std::vector<Prompt>& pending, const std::vector<size_t>& unique) {
  std::vector<Completion> out;
  out.reserve(unique.size());
  for (size_t j = 0; j < unique.size(); ++j) {
    Status cancel = CheckCancel(policy_.control);
    if (!cancel.ok()) {
      return Annotate(cancel, "prompt " + std::to_string(j + 1) + "/" +
                                  std::to_string(unique.size()));
    }
    Result<Completion> c = model_->Complete(pending[unique[j]]);
    if (!c.ok()) {
      return Annotate(c.status(), "prompt " + std::to_string(j + 1) + "/" +
                                      std::to_string(unique.size()));
    }
    out.push_back(std::move(c).value());
  }
  return out;
}

Result<std::vector<Completion>> BatchScheduler::DispatchBatched(
    const std::vector<Prompt>& pending, const std::vector<size_t>& unique) {
  const size_t chunk_size =
      policy_.max_batch_size == 0 ? unique.size() : policy_.max_batch_size;
  const size_t num_chunks = (unique.size() + chunk_size - 1) / chunk_size;

  // Materialise the chunks up front; each chunk is an independent
  // CompleteBatch round trip over distinct prompt texts.
  std::vector<std::vector<Prompt>> chunks;
  chunks.reserve(num_chunks);
  for (size_t start = 0; start < unique.size(); start += chunk_size) {
    const size_t end = std::min(unique.size(), start + chunk_size);
    std::vector<Prompt> batch;
    batch.reserve(end - start);
    for (size_t j = start; j < end; ++j) batch.push_back(pending[unique[j]]);
    chunks.push_back(std::move(batch));
  }

  auto chunk_context = [&](size_t i) {
    return "chunk " + std::to_string(i + 1) + "/" +
           std::to_string(num_chunks) + " (" +
           std::to_string(chunks[i].size()) + " prompts)";
  };

  std::vector<std::vector<Completion>> chunk_out(num_chunks);
  std::vector<Status> chunk_status(num_chunks, Status::OK());

  const size_t workers = std::min<size_t>(
      num_chunks,
      policy_.parallel_batches < 1
          ? 1
          : static_cast<size_t>(policy_.parallel_batches));
  if (workers <= 1) {
    // Sequential chunk dispatch: stop at the first failing round trip.
    for (size_t i = 0; i < num_chunks; ++i) {
      Status cancel = CheckCancel(policy_.control);
      if (!cancel.ok()) return Annotate(cancel, chunk_context(i));
      Result<std::vector<Completion>> completions =
          model_->CompleteBatch(chunks[i]);
      if (!completions.ok()) {
        return Annotate(completions.status(), chunk_context(i));
      }
      GALOIS_RETURN_IF_ERROR(
          CheckBatchShape(completions->size(), chunks[i].size()));
      chunk_out[i] = std::move(completions).value();
    }
  } else {
    // Concurrent dispatch: `workers` tasks pull chunk indices from a
    // shared counter, so at most `workers` round trips are in flight at
    // once. Every chunk is dispatched even when an earlier one fails —
    // that keeps the reported error deterministic (always the
    // lowest-indexed failing chunk, the one a sequential run reports)
    // at the price of billing the remaining chunks of a failed flush.
    std::atomic<size_t> next{0};
    auto run_chunks = [&]() {
      for (size_t i = next.fetch_add(1); i < num_chunks;
           i = next.fetch_add(1)) {
        Status cancel = CheckCancel(policy_.control);
        if (!cancel.ok()) {
          chunk_status[i] = cancel;
          continue;
        }
        Result<std::vector<Completion>> completions =
            model_->CompleteBatch(chunks[i]);
        if (completions.ok()) {
          Status shape =
              CheckBatchShape(completions->size(), chunks[i].size());
          if (shape.ok()) {
            chunk_out[i] = std::move(completions).value();
          } else {
            chunk_status[i] = shape;
          }
        } else {
          chunk_status[i] = completions.status();
        }
      }
    };
    std::vector<std::future<void>> futures;
    futures.reserve(workers - 1);
    for (size_t w = 0; w + 1 < workers; ++w) {
      futures.push_back(ThreadPool::Shared().Submit(run_chunks));
    }
    run_chunks();  // the calling thread is the last worker
    for (std::future<void>& f : futures) f.wait();
    for (size_t i = 0; i < num_chunks; ++i) {
      if (!chunk_status[i].ok()) {
        return Annotate(chunk_status[i], chunk_context(i));
      }
    }
  }

  std::vector<Completion> out;
  out.reserve(unique.size());
  for (std::vector<Completion>& chunk : chunk_out) {
    for (Completion& c : chunk) out.push_back(std::move(c));
  }
  return out;
}

Result<std::vector<Completion>> BatchScheduler::Flush() {
  // The queue is consumed unconditionally: a failed Flush drops its
  // prompts (see header contract) instead of silently retrying them on
  // the next Flush.
  std::vector<Prompt> pending = std::move(pending_);
  pending_.clear();
  if (pending.empty()) return std::vector<Completion>{};

  // Dedupe by prompt text, first occurrence wins; slot_of maps every
  // pending position onto its distinct prompt.
  std::vector<size_t> slot_of(pending.size());
  std::vector<size_t> unique;  // indices into `pending`
  unique.reserve(pending.size());
  std::unordered_map<std::string, size_t> slot_by_text;
  slot_by_text.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    auto [it, inserted] =
        slot_by_text.try_emplace(pending[i].text, unique.size());
    if (inserted) unique.push_back(i);
    slot_of[i] = it->second;
  }

  Result<std::vector<Completion>> unique_out =
      policy_.batch ? DispatchBatched(pending, unique)
                    : DispatchSequential(pending, unique);
  if (!unique_out.ok()) return unique_out.status();

  std::vector<Completion> out;
  out.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    out.push_back((*unique_out)[slot_of[i]]);
  }
  return out;
}

Result<std::vector<Completion>> BatchScheduler::Run(
    std::vector<Prompt> prompts) {
  for (Prompt& p : prompts) Add(std::move(p));
  return Flush();
}

PhaseHandle BatchScheduler::FlushAsync() {
  // The task captures everything by value (queue moved in, model pointer,
  // policy, phase label copied), so it stays valid however long the
  // caller holds the handle and whatever happens to this scheduler.
  std::vector<Prompt> queued = std::move(pending_);
  pending_.clear();
  return PhaseHandle::Launch(
      ThreadPool::SharedPhase(),
      [model = model_, policy = policy_, phase = phase_,
       pending = std::move(queued)]() mutable {
        BatchScheduler scheduler(model, policy, std::move(phase));
        scheduler.pending_ = std::move(pending);
        return scheduler.Flush();
      });
}

PhaseHandle BatchScheduler::RunAsync(std::vector<Prompt> prompts) {
  for (Prompt& p : prompts) Add(std::move(p));
  return FlushAsync();
}

}  // namespace galois::llm
