#ifndef GALOIS_LLM_HTTP_LLM_H_
#define GALOIS_LLM_HTTP_LLM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/language_model.h"

namespace galois::llm {

/// Classification markers the transport attaches to failed Statuses so the
/// resilience layer (llm/resilience.h) can decide retryability without a
/// richer error type crossing the LanguageModel interface. The markers are
/// plain message suffixes — Status stays the project-wide error currency.
///
/// Ownership of failures (docs/ARCHITECTURE.md, "Backends & routing"):
/// the transport *classifies* (what happened, is it retryable, what did
/// the server ask), the resilience layer *decides* (whether and when to
/// retry, when to stop, when to trip the breaker). The transport itself
/// never retries.
Status MarkRetryable(Status s);
Status WithRetryAfterMs(Status s, int64_t ms);
bool IsRetryableLlmError(const Status& s);
/// Server-requested delay before the next attempt; -1 when absent.
int64_t RetryAfterMs(const Status& s);

/// Connection endpoint and request shaping of an HTTP backend.
struct HttpLlmOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// OpenAI-compatible single-completion endpoint.
  std::string chat_path = "/v1/chat/completions";
  /// Batched endpoint (one request per BatchScheduler chunk; replies may
  /// arrive per-index out of order and are reassembled by the client).
  std::string batch_path = "/v1/batch_completions";
  /// Model name sent on the wire ("gpt-3.5-turbo").
  std::string wire_model = "gpt-3.5-turbo";
  /// Display name used by name() and the CostMeter by_model key; empty
  /// falls back to wire_model.
  std::string display_name;
  /// Budget for establishing the TCP connection.
  int64_t connect_timeout_ms = 2000;
  /// Budget for writing the request and reading the whole response; an
  /// expired budget is a *retryable* failure (the resilience layer owns
  /// the decision).
  int64_t io_timeout_ms = 10000;
};

/// OpenAI-compatible chat-completions client over a minimal blocking
/// socket HTTP/1.1 implementation — no third-party HTTP or TLS dependency
/// (TLS termination is a proxy's job in this build). One connection per
/// round trip (`Connection: close`), which keeps the client trivially
/// correct under the concurrent CompleteBatch calls that
/// parallel_batches issues; on loopback the reconnect cost is noise.
///
/// Billing is real: token usage comes from the server's `usage` object
/// (falling back to local CountTokens when a provider omits it) and
/// latency from the `galois_latency_ms` extension (falling back to the
/// measured wall clock), so a FakeLlmServer-backed run reproduces the
/// same CostMeter as the in-process SimulatedLlm it wraps.
///
/// Error contract: every failure is StatusCode::kLlmError. Failures the
/// caller may retry (connect/timeout/truncation, HTTP 429 and 5xx) carry
/// the retryable marker; HTTP 429/503 Retry-After delays are forwarded
/// via WithRetryAfterMs. A 200 whose body is malformed or incomplete JSON
/// is NOT retryable — it is reported with no partial completions (the
/// CompleteBatch contract) and retrying a deterministic decode bug would
/// only hide it.
///
/// Thread-safety: stateless per round trip apart from the mutex-guarded
/// meter, so concurrent Complete/CompleteBatch/cost calls are safe.
class HttpLlm : public LanguageModel {
 public:
  explicit HttpLlm(HttpLlmOptions options);

  const std::string& name() const override { return name_; }

  Result<Completion> Complete(const Prompt& prompt) override;

  /// One POST to batch_path per call — a whole BatchScheduler chunk rides
  /// one HTTP round trip, billed as one batch.
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

  /// Exact per-call usage reports: the wire-derived billing applied to
  /// the meter is also handed to `usage` (with the by_model slice).
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  CostMeter cost() const override;
  void ResetCost() override;

  const HttpLlmOptions& options() const { return options_; }

 private:
  struct HttpResponse {
    int status_code = 0;
    int64_t retry_after_ms = -1;
    std::string body;
  };

  /// One full HTTP round trip: connect, POST `body` to `path`, read the
  /// response. Transport-level failures come back retryable-marked.
  Result<HttpResponse> PostJson(const std::string& path,
                                const std::string& body) const;

  /// Maps a non-200 response to the classified error Status.
  Status HttpError(const std::string& path, const HttpResponse& resp) const;

  /// Applies the round trip to the meter and, when `usage` is non-null,
  /// reports the same delta (with the by_model slice) to the caller.
  void Bill(int64_t prompts, int64_t prompt_tokens, int64_t completion_tokens,
            double latency_ms, bool as_batch, CostMeter* usage);

  HttpLlmOptions options_;
  std::string name_;

  mutable std::mutex cost_mu_;
  CostMeter cost_;  // guarded by cost_mu_
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_HTTP_LLM_H_
