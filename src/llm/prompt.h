#ifndef GALOIS_LLM_PROMPT_H_
#define GALOIS_LLM_PROMPT_H_

#include <optional>
#include <string>
#include <variant>

#include "types/value.h"

namespace galois::llm {

/// A comparison pushed into a prompt ("population greater than 1000000").
struct PromptFilter {
  std::string attribute;
  std::string attribute_description;
  std::string op;  // one of =, !=, <, <=, >, >=, LIKE
  Value value;
};

/// Intent: page `page` of the key listing for a concept_name (the leaf-node
/// data access of Section 4: "the access to the base relations ... with the
/// retrieval of the key attribute values"). An optional filter models the
/// Section 6 pushdown optimisation ("get names of cities with > 1M
/// population").
struct KeyScanIntent {
  std::string concept_name;        // "country", "city", ...
  std::string key_attribute;  // "name" / "code"
  int page = 0;               // 0 = first prompt, >0 = "Return more results"
  std::optional<PromptFilter> filter;
};

/// Intent: fetch one attribute of one entity ("Get the current mayor of
/// Rome").
struct AttributeGetIntent {
  std::string concept_name;
  std::string key;
  std::string attribute;
  std::string attribute_description;
  DataType expected_type = DataType::kString;
};

/// Intent: boolean membership check for the selection operator
/// ("Has city Rome population greater than 1000000?").
struct FilterCheckIntent {
  std::string concept_name;
  std::string key;
  PromptFilter filter;
};

/// Intent: a free-text question (the QA baselines T_M / T^C_M). `sql`
/// carries the underlying query so the *simulated* model can ground its
/// answer; a real deployment would rely on the model's NL understanding.
struct FreeformIntent {
  std::string question;
  std::string sql;
  bool chain_of_thought = false;
};

/// Intent: critic verification of a previously generated cell (Section 6,
/// "Knowledge of the Unknown": "one direction is to verify generated query
/// answers by another model ... verification is easier than generation").
struct VerifyIntent {
  std::string concept_name;
  std::string key;
  std::string attribute;
  std::string attribute_description;
  Value claimed;  // the value the generator produced
};

using PromptIntent = std::variant<KeyScanIntent, AttributeGetIntent,
                                  FilterCheckIntent, FreeformIntent,
                                  VerifyIntent>;

/// A prompt as sent to a model: the full natural-language text (instruction
/// preamble + few-shot examples + request) plus the structured intent. The
/// text is what a production system would transmit; the simulator answers
/// from the intent but bills tokens from the text.
struct Prompt {
  std::string text;
  PromptIntent intent;
};

/// A model completion.
struct Completion {
  std::string text;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_PROMPT_H_
