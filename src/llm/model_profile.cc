#include "llm/model_profile.h"

#include "common/strings.h"

namespace galois::llm {

ModelProfile ModelProfile::Flan() {
  ModelProfile p;
  p.name = "Flan-T5-large";
  p.parameters_millions = 783;
  // Small instruction-tuned model: knows only popular entities, pages out
  // quickly, noisy values. Target: Table 1 delta around -47%.
  p.coverage_floor = 0.05;
  p.coverage_gain = 0.9;
  p.unknown_rate = 0.08;
  p.fake_entity_confidence = 0.3;
  p.fact_accuracy = 0.55;
  p.numeric_fact_accuracy = 0.3;
  p.numeric_error_scale = 0.7;
  p.reference_style_noise = 0.65;
  p.value_format_noise = 0.45;
  p.verbosity = 0.1;
  p.page_size = 8;
  p.paging_fatigue = 0.75;
  p.hallucinated_key_rate = 0.01;
  p.pushdown_error = 0.2;
  p.filter_check_error = 0.1;
  p.qa_list_recall = 0.35;
  p.qa_aggregate_accuracy = 0.08;
  p.qa_join_accuracy = 0.02;
  p.cot_list_recall = 0.3;
  p.cot_aggregate_accuracy = 0.05;
  p.cot_join_accuracy = 0.0;
  p.latency_ms_base = 40.0;
  p.latency_ms_per_token = 2.0;
  return p;
}

ModelProfile ModelProfile::Tk() {
  ModelProfile p = Flan();
  p.name = "TK-instruct-large";
  p.parameters_millions = 783;
  // Slightly better recall than Flan thanks to the positive/negative
  // few-shot instructions. Target: Table 1 delta around -44%.
  p.coverage_floor = 0.08;
  p.coverage_gain = 0.88;
  p.paging_fatigue = 0.36;
  p.fact_accuracy = 0.58;
  p.numeric_fact_accuracy = 0.32;
  p.qa_list_recall = 0.38;
  return p;
}

ModelProfile ModelProfile::Gpt3() {
  ModelProfile p;
  p.name = "InstructGPT-3";
  p.parameters_millions = 175000;
  // Near-complete coverage with a mild tendency to over-generate keys:
  // Table 1 delta around +1%.
  p.coverage_floor = 0.93;
  p.coverage_gain = 0.07;
  p.unknown_rate = 0.01;
  p.fake_entity_confidence = 0.85;
  p.fact_accuracy = 0.9;
  p.numeric_fact_accuracy = 0.55;
  p.numeric_error_scale = 0.4;
  p.reference_style_noise = 0.5;
  p.value_format_noise = 0.3;
  p.verbosity = 0.15;
  p.page_size = 15;
  p.paging_fatigue = 0.01;
  p.hallucinated_key_rate = 0.6;
  p.pushdown_error = 0.08;
  p.filter_check_error = 0.04;
  p.qa_list_recall = 0.6;
  p.qa_aggregate_accuracy = 0.15;
  p.qa_join_accuracy = 0.05;
  p.cot_list_recall = 0.58;
  p.cot_aggregate_accuracy = 0.1;
  p.cot_join_accuracy = 0.0;
  p.latency_ms_base = 150.0;
  p.latency_ms_per_token = 8.0;
  return p;
}

ModelProfile ModelProfile::ChatGpt() {
  ModelProfile p;
  p.name = "GPT-3.5-turbo";
  p.parameters_millions = 175000;
  // The model used for Table 2: high accuracy on simple lookups (80%
  // selections), conservative paging (-19.5% cardinality), and reference
  // attributes rendered in codes often enough that joins break (~0%).
  p.coverage_floor = 0.72;
  p.coverage_gain = 0.26;
  p.unknown_rate = 0.02;
  p.fake_entity_confidence = 0.2;
  p.fact_accuracy = 0.9;
  p.numeric_fact_accuracy = 0.55;
  p.numeric_error_scale = 0.9;
  p.reference_style_noise = 0.97;
  p.value_format_noise = 0.3;
  p.verbosity = 0.35;
  p.page_size = 12;
  p.paging_fatigue = 0.08;
  p.hallucinated_key_rate = 0.02;
  p.pushdown_error = 0.08;
  p.filter_check_error = 0.03;
  p.qa_list_recall = 0.68;
  p.qa_aggregate_accuracy = 0.28;
  p.qa_join_accuracy = 0.08;
  p.cot_list_recall = 0.68;
  p.cot_aggregate_accuracy = 0.13;
  p.cot_join_accuracy = 0.0;
  p.latency_ms_base = 180.0;
  p.latency_ms_per_token = 10.0;
  return p;
}

Result<ModelProfile> ModelProfile::ByName(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "flan" || n == "flan-t5-large") return Flan();
  if (n == "tk" || n == "tk-instruct-large") return Tk();
  if (n == "gpt-3" || n == "gpt3" || n == "instructgpt-3") return Gpt3();
  if (n == "chatgpt" || n == "gpt-3.5-turbo") return ChatGpt();
  return Status::NotFound("unknown model profile '" + name + "'");
}

std::vector<ModelProfile> ModelProfile::AllPaperModels() {
  return {Flan(), Tk(), Gpt3(), ChatGpt()};
}

}  // namespace galois::llm
