#ifndef GALOIS_LLM_PROMPT_CACHE_H_
#define GALOIS_LLM_PROMPT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "llm/language_model.h"

namespace galois::llm {

/// Persistence hooks: the API layer binds these to a store::ResultStore
/// so memoised completions survive the process (llm stays independent of
/// the store). Any member may be empty. They are invoked OUTSIDE the
/// shard mutexes (after the completion is already memoised), so a hook
/// may block on I/O without stalling concurrent lookups of other
/// prompts; on_hit fires only for entries loaded via Preload (the
/// recency signal the store's LRU eviction wants).
struct PromptCacheHooks {
  std::function<void(const std::string& text, const std::string& completion)>
      on_insert;
  std::function<void(const std::string& text)> on_hit;
  std::function<void()> on_clear;
};

/// Caching decorator: memoises completions by exact prompt text.
///
/// Query plans re-issue identical sub-prompts (e.g. the same attribute
/// retrieval appearing under a selection and a projection); caching them is
/// one of the physical-plan optimisations discussed in Section 6. The cache
/// is sound for SimulatedLlm because its completions are deterministic.
///
/// The cache is batch-aware: CompleteBatch partitions hits from misses,
/// dedupes repeated prompt texts within the batch, forwards all distinct
/// misses to the inner model as ONE batch, and merges the answers back in
/// input order — so a cached configuration still exercises the inner
/// model's batched path instead of degrading to N sequential Complete
/// calls.
///
/// The map is sharded into buckets, each guarded by its own mutex, so the
/// batch scheduler can fan chunks out across threads (parallel_batches >
/// 1) with hits and misses resolving concurrently. Thread-safety scope:
/// concurrent Complete/CompleteBatch/cost calls are safe, but two threads
/// that miss the same prompt simultaneously may each dispatch it to the
/// inner model (a benign cache stampede for deterministic models: last
/// insert wins, both callers get the same answer; the scheduler's
/// in-flush dedupe keeps concurrent chunks of one phase disjoint, so the
/// stampede can only happen across independent flushes). The inner model
/// must itself tolerate concurrent Complete/CompleteBatch/cost calls
/// when used with parallel_batches > 1.
class PromptCache : public LanguageModel {
 public:
  /// `inner` must outlive the cache.
  explicit PromptCache(LanguageModel* inner) : inner_(inner) {}

  /// Reports the inner model's name — the cache is invisible to
  /// identification.
  const std::string& name() const override { return inner_->name(); }

  /// Serves `prompt` from cache or forwards it to the inner model and
  /// memoises the answer. Errors from the inner model pass through
  /// unchanged and are never cached.
  Result<Completion> Complete(const Prompt& prompt) override;

  /// Hit/miss-partitioned batched execution (see class comment). A batch
  /// answered entirely from cache performs no inner round trip but is
  /// still counted in cost().num_batches, so warm reruns keep their batch
  /// attribution (the round trip was *saved*, not never-planned).
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

  /// Exact per-call usage: forwards the pointer to the inner model for
  /// the misses and adds this call's cache hits (and, for a batch served
  /// entirely from cache, the saved batch round trip) on top — so a
  /// per-query meter attributes hits exactly like the combined cost().
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  /// Combined meter: inner usage, plus our cache hit count, plus the batch
  /// calls served entirely from cache. Returned by value, so concurrent
  /// cost() readers are safe.
  CostMeter cost() const override;
  void ResetCost() override;

  /// Number of distinct memoised prompts (sums the shards; safe to call
  /// concurrently but only a point-in-time figure under writes).
  size_t size() const;

  /// Drops every memoised completion; cost attribution is untouched.
  void Clear();

  /// Seeds one completion recovered from the persistent store, marked
  /// from_store (hits on it count into cost().store_hits and fire
  /// hooks.on_hit). Never overwrites an existing entry and never fires
  /// hooks.on_insert — the record is already on disk.
  void Preload(const std::string& text, const std::string& completion);

  /// Attaches the persistence hooks (replacing any previous set). Attach
  /// after Preload and before serving traffic; captured state must
  /// outlive the cache.
  void SetHooks(PromptCacheHooks hooks);

 private:
  static constexpr size_t kNumShards = 16;

  struct CacheEntry {
    std::string text;
    std::string completion;
    bool from_store = false;  // seeded by Preload, not earned this process
  };

  /// Entries bucket by the *precomputed* full hash of the prompt text:
  /// the hash is taken exactly once per operation and reused for both
  /// shard selection and bucket lookup (hashing a size_t key is
  /// identity-cheap), instead of hashing the — often multi-hundred-byte —
  /// prompt twice. Same-hash collisions chain in a small vector and are
  /// resolved by full text comparison.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<size_t, std::vector<CacheEntry>> map;
  };

  static size_t HashOf(const std::string& text) {
    return std::hash<std::string>{}(text);
  }
  const Shard& ShardFor(size_t hash) const {
    return shards_[hash % kNumShards];
  }
  Shard& ShardFor(size_t hash) { return shards_[hash % kNumShards]; }

  /// Copies the cached completion for `text` (with `hash == HashOf(text)`)
  /// into `*completion`; false on miss. `from_store` (optional) reports
  /// whether the entry was Preloaded. Fires hooks_.on_hit for preloaded
  /// entries.
  bool Lookup(const std::string& text, size_t hash, std::string* completion,
              bool* from_store = nullptr) const;
  /// Memoises and fires hooks_.on_insert when this call actually added
  /// the entry (first insert wins).
  void Insert(const std::string& text, size_t hash,
              const std::string& completion);

  LanguageModel* inner_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> store_hits_{0};
  std::atomic<int64_t> batches_from_cache_{0};
  /// Set once at wiring time (SetHooks), read by every operation; not
  /// guarded — the attach-before-traffic contract makes it effectively
  /// immutable.
  PromptCacheHooks hooks_;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_PROMPT_CACHE_H_
