#ifndef GALOIS_LLM_PROMPT_CACHE_H_
#define GALOIS_LLM_PROMPT_CACHE_H_

#include <string>
#include <unordered_map>

#include "llm/language_model.h"

namespace galois::llm {

/// Caching decorator: memoises completions by exact prompt text.
///
/// Query plans re-issue identical sub-prompts (e.g. the same attribute
/// retrieval appearing under a selection and a projection); caching them is
/// one of the physical-plan optimisations discussed in Section 6. The cache
/// is sound for SimulatedLlm because its completions are deterministic.
class PromptCache : public LanguageModel {
 public:
  /// `inner` must outlive the cache.
  explicit PromptCache(LanguageModel* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }

  Result<Completion> Complete(const Prompt& prompt) override;

  /// Combined meter: inner usage plus our cache hit count.
  const CostMeter& cost() const override;
  void ResetCost() override;

  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  LanguageModel* inner_;
  std::unordered_map<std::string, std::string> cache_;
  mutable CostMeter merged_;
  int64_t hits_ = 0;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_PROMPT_CACHE_H_
