#ifndef GALOIS_LLM_BATCH_SCHEDULER_H_
#define GALOIS_LLM_BATCH_SCHEDULER_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "llm/language_model.h"

namespace galois::llm {

/// A joinable handle to one asynchronously dispatched phase (see
/// BatchScheduler::FlushAsync). Join returns exactly what the equivalent
/// synchronous Flush would have returned — same completions, same Add
/// order, same error contract — and must be called at most once.
using PhaseHandle = TaskHandle<Result<std::vector<Completion>>>;

/// How one retrieval phase dispatches its prompts to the model.
struct BatchPolicy {
  /// When true, queued prompts go out via CompleteBatch round trips;
  /// when false, one Complete call per prompt (the paper prototype's
  /// sequential behaviour, kept for the Section 6 batching ablation).
  bool batch = true;

  /// Upper bound on prompts per CompleteBatch round trip; 0 sends a whole
  /// flush as one batch. Real APIs cap request sizes, so large phases are
  /// split into ceil(n / max_batch_size) round trips.
  size_t max_batch_size = 0;

  /// Round trips the scheduler may keep in flight at once. With a value
  /// above 1 (and batch on), Flush fans its chunks out across the shared
  /// ThreadPool and up to this many CompleteBatch calls run concurrently;
  /// the model behind the scheduler must then be safe under concurrent
  /// CompleteBatch calls (SimulatedLlm and PromptCache are). 1 keeps the
  /// fully sequential dispatch. Effective concurrency is additionally
  /// capped by ThreadPool::kSharedThreads.
  int parallel_batches = 1;

  /// Per-query cancellation/deadline token (null = not cancellable).
  /// Checked before every round trip this scheduler starts — sequential
  /// prompts, batched chunks and CompleteOne alike — so a cancelled or
  /// expired query stops issuing new LLM traffic at the next dispatch
  /// boundary. Round trips already in flight complete (and bill).
  CancelToken control;
};

/// Collects the pending prompts of one executor phase (a filter-check
/// pass, an attribute column, ...) and dispatches them according to a
/// BatchPolicy. This is the single chokepoint between the Galois plan and
/// the LanguageModel: the operators above it never decide batched vs.
/// sequential vs. concurrent themselves — mirroring how a logic layer sits
/// over a relational store without knowing its physical access pattern
/// (cf. the DB-nets separation of logic and persistence layers).
///
/// Duplicate prompt texts within one flush (repeated keys from a join,
/// the same attribute needed by two operators) are dispatched once and
/// fanned back out to every position, so the model is billed a single
/// completion per distinct prompt. Dedupe happens before chunking, so no
/// two concurrent chunks ever carry the same prompt text.
///
/// Thread-safety: a scheduler instance is NOT itself thread-safe — it is
/// a per-phase, single-owner object (Add/Flush from one thread). The
/// concurrency introduced by parallel_batches is internal to Flush, which
/// joins every in-flight round trip before returning. Flush must not be
/// called from inside a task of the *round-trip* pool (ThreadPool::
/// Shared(); the wait could starve that pool). Running a Flush on the
/// phase pool is fine and is exactly what FlushAsync does: phase tasks
/// wait on round-trip futures, never the converse (the two-tier rule in
/// common/thread_pool.h).
class BatchScheduler {
 public:
  /// `model` must outlive the scheduler. `phase` is a human-readable
  /// label ("filter-check:population") used to attribute errors to the
  /// retrieval phase that failed.
  BatchScheduler(LanguageModel* model, BatchPolicy policy,
                 std::string phase = "")
      : model_(model), policy_(policy), phase_(std::move(phase)) {}

  /// Queues a prompt; the returned ticket is its index into the vector
  /// that the next Flush returns.
  size_t Add(Prompt prompt) {
    pending_.push_back(std::move(prompt));
    return pending_.size() - 1;
  }

  size_t pending() const { return pending_.size(); }

  /// Dispatches every queued prompt (deduped by text, split into chunks
  /// of max_batch_size, up to parallel_batches chunks in flight) and
  /// returns one completion per Add, in Add order — regardless of the
  /// order in which concurrent chunks finish.
  ///
  /// Error contract: the queue is emptied unconditionally — also on
  /// error. Prompts queued before a failed Flush are dropped, never
  /// retried implicitly; callers own retry policy and must re-Add. On
  /// failure the returned Status keeps the model's error code and
  /// prefixes the message with the phase label and the chunk (or prompt)
  /// that failed. When chunks run concurrently, every chunk is still
  /// dispatched (and billed) and the error of the lowest-indexed failed
  /// chunk is reported — deterministically the same chunk a sequential
  /// run reports, though the sequential path stops dispatching at the
  /// first failure.
  Result<std::vector<Completion>> Flush();

  /// Future-returning dispatch: moves the queued prompts into a
  /// self-contained task on ThreadPool::SharedPhase() and returns a
  /// handle the caller joins later. Several phases launched this way run
  /// their Flushes concurrently — the pipelined executor uses this to
  /// overlap independent column retrievals and table materialisations.
  ///
  /// The task owns copies of the model pointer, policy and phase label,
  /// so the scheduler itself may be reused (its queue is empty again) or
  /// destroyed before Join; only the model must outlive the handle.
  /// Semantics are identical to Flush — same dedupe, chunking,
  /// parallel_batches fan-out, Add-order results, accounting and error
  /// contract; only the thread that executes the dispatch differs. Thanks
  /// to TaskHandle's claim-on-join, launching more phases than the phase
  /// pool has workers degrades to inline execution at Join, never to
  /// deadlock.
  PhaseHandle FlushAsync();

  /// Convenience: queue `prompts` and flush in one call.
  Result<std::vector<Completion>> Run(std::vector<Prompt> prompts);

  /// Convenience: queue `prompts` and dispatch them asynchronously.
  PhaseHandle RunAsync(std::vector<Prompt> prompts);

  /// Dispatches one dependent prompt immediately, outside any batch
  /// (scan paging: page k+1 cannot be built until page k's answer is
  /// seen). Never billed as a batch round trip.
  Result<Completion> CompleteOne(const Prompt& prompt) {
    GALOIS_RETURN_IF_ERROR(CheckCancel(policy_.control));
    return model_->Complete(prompt);
  }

  const BatchPolicy& policy() const { return policy_; }
  const std::string& phase() const { return phase_; }

 private:
  /// One Complete call per distinct prompt, in order.
  Result<std::vector<Completion>> DispatchSequential(
      const std::vector<Prompt>& pending, const std::vector<size_t>& unique);

  /// CompleteBatch round trips over max_batch_size chunks; concurrent
  /// when the policy allows more than one in flight.
  Result<std::vector<Completion>> DispatchBatched(
      const std::vector<Prompt>& pending, const std::vector<size_t>& unique);

  /// Prefixes `status` with the phase/chunk context, keeping its code.
  Status Annotate(const Status& status, const std::string& where) const;

  LanguageModel* model_;
  BatchPolicy policy_;
  std::string phase_;
  std::vector<Prompt> pending_;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_BATCH_SCHEDULER_H_
