#ifndef GALOIS_LLM_BATCH_SCHEDULER_H_
#define GALOIS_LLM_BATCH_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "llm/language_model.h"

namespace galois::llm {

/// How one retrieval phase dispatches its prompts to the model.
struct BatchPolicy {
  /// When true, queued prompts go out via CompleteBatch round trips;
  /// when false, one Complete call per prompt (the paper prototype's
  /// sequential behaviour, kept for the Section 6 batching ablation).
  bool batch = true;

  /// Upper bound on prompts per CompleteBatch round trip; 0 sends a whole
  /// flush as one batch. Real APIs cap request sizes, so large phases are
  /// split into ceil(n / max_batch_size) round trips.
  size_t max_batch_size = 0;

  /// Round trips the scheduler may keep in flight at once. Current
  /// backends are synchronous, so this only bounds the planned fan-out;
  /// an async backend dispatches up to this many chunks concurrently.
  int parallel_batches = 1;
};

/// Collects the pending prompts of one executor phase (a filter-check
/// pass, an attribute column, ...) and dispatches them according to a
/// BatchPolicy. This is the single chokepoint between the Galois plan and
/// the LanguageModel: the operators above it never decide batched vs.
/// sequential themselves — mirroring how a logic layer sits over a
/// relational store without knowing its physical access pattern.
///
/// Duplicate prompt texts within one flush (repeated keys from a join,
/// the same attribute needed by two operators) are dispatched once and
/// fanned back out to every position, so the model is billed a single
/// completion per distinct prompt.
class BatchScheduler {
 public:
  /// `model` must outlive the scheduler.
  BatchScheduler(LanguageModel* model, BatchPolicy policy)
      : model_(model), policy_(policy) {}

  /// Queues a prompt; the returned ticket is its index into the vector
  /// that the next Flush returns.
  size_t Add(Prompt prompt) {
    pending_.push_back(std::move(prompt));
    return pending_.size() - 1;
  }

  size_t pending() const { return pending_.size(); }

  /// Dispatches every queued prompt (deduped by text, split into chunks
  /// of max_batch_size) and returns one completion per Add, in Add order.
  /// The queue is empty afterwards, also on error.
  Result<std::vector<Completion>> Flush();

  /// Convenience: queue `prompts` and flush in one call.
  Result<std::vector<Completion>> Run(std::vector<Prompt> prompts);

  /// Dispatches one dependent prompt immediately, outside any batch
  /// (scan paging: page k+1 cannot be built until page k's answer is
  /// seen). Never billed as a batch round trip.
  Result<Completion> CompleteOne(const Prompt& prompt) {
    return model_->Complete(prompt);
  }

  const BatchPolicy& policy() const { return policy_; }

 private:
  LanguageModel* model_;
  BatchPolicy policy_;
  std::vector<Prompt> pending_;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_BATCH_SCHEDULER_H_
