#ifndef GALOIS_LLM_RESILIENCE_H_
#define GALOIS_LLM_RESILIENCE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/language_model.h"

namespace galois::llm {

/// Knobs of the ResilientLlm decorator. Defaults are production-shaped:
/// a few retries with exponential backoff and jitter, no rate limit, no
/// deadline, breaker off. Tests inject `now_ms` / `sleep_ms` hooks to run
/// the whole policy against a fake clock — hermetic and instant.
struct ResilienceOptions {
  /// Extra attempts after the first failed one (3 => up to 4 round trips).
  int max_retries = 3;
  int64_t initial_backoff_ms = 100;
  double backoff_multiplier = 2.0;
  /// Cap applied to the computed backoff AND to a server-sent Retry-After
  /// (a hostile or buggy server must not be able to park a query for an
  /// hour).
  int64_t max_backoff_ms = 5000;
  /// Multiplicative jitter: delay *= 1 + U(0, jitter). Deterministic per
  /// decorator instance (seeded), never *below* a server-sent Retry-After
  /// (unless max_backoff_ms — absolute, applied last — is smaller).
  double jitter = 0.1;
  uint64_t jitter_seed = 42;

  /// Token-bucket rate limit on round trips *initiated* (one token per
  /// Complete or CompleteBatch round trip — batching many prompts into
  /// one trip is precisely how the paper's workload stays under provider
  /// limits). 0 disables.
  double rate_limit_per_sec = 0.0;
  /// Bucket capacity (burst size); at least 1 when rate limiting is on.
  double rate_limit_burst = 1.0;

  /// Whole-call wall-clock budget, covering every retry, backoff sleep
  /// and rate-limit wait. 0 disables. Exceeding it fails the call with a
  /// non-retryable kLlmError naming the deadline.
  int64_t request_deadline_ms = 0;

  /// Consecutive round-trip failures that open the circuit; 0 disables
  /// the breaker.
  int circuit_failure_threshold = 0;
  /// How long an open circuit rejects calls before letting one half-open
  /// probe through.
  int64_t circuit_cooldown_ms = 1000;

  /// Monotonic clock / sleep hooks; defaults use steady_clock and
  /// this_thread::sleep_for. Tests swap both for a shared fake clock.
  std::function<int64_t()> now_ms;
  std::function<void(int64_t)> sleep_ms;
};

/// Counters for observability and tests; a consistent snapshot is
/// returned by ResilientLlm::stats().
struct ResilienceStats {
  int64_t round_trips = 0;         // inner attempts actually issued
  int64_t retries = 0;             // sleeps between attempts
  int64_t retry_after_honoured = 0;  // retries that used a server delay
  int64_t rate_limit_waits = 0;    // acquisitions that had to wait
  int64_t circuit_rejections = 0;  // calls failed fast while open
  int64_t circuit_opens = 0;       // closed/half-open -> open transitions
  int64_t deadline_exceeded = 0;   // calls that ran out of budget
};

enum class CircuitState { kClosed, kOpen, kHalfOpen };
const char* CircuitStateName(CircuitState s);

/// Resilience decorator (same decorator pattern as PromptCache): bounded
/// retry with exponential backoff + jitter on retryable failures (HTTP
/// 429/5xx/timeouts as classified by the transport via the markers in
/// llm/http_llm.h), a token-bucket rate limiter, a per-request deadline,
/// and a circuit breaker. Sits between the router and the cache in the
/// recommended stack: router -> resilience -> cache -> transport.
///
/// Layer ownership: the transport classifies failures, this layer decides
/// what to do about them. A failure without the retryable marker (e.g.
/// malformed 200-response JSON) is returned immediately — retrying a
/// deterministic bug only hides it. The breaker counts *round-trip*
/// failures (each failed attempt, not each failed call), so a burst of
/// retries against a dead backend trips it quickly.
///
/// Thread-safety: all mutable state (bucket, breaker, stats, jitter rng)
/// is guarded by one mutex that is never held across an inner round trip
/// or a sleep, so BatchScheduler may drive it from parallel_batches
/// threads. Blocking (rate-limit waits, backoff) happens on the calling
/// thread — under the scheduler that is a round-trip pool worker, which
/// is exactly the thread whose round trip is being delayed.
class ResilientLlm : public LanguageModel {
 public:
  /// `inner` must outlive the decorator.
  ResilientLlm(LanguageModel* inner, ResilienceOptions options);

  /// Transparent to identification, like PromptCache.
  const std::string& name() const override { return inner_->name(); }

  Result<Completion> Complete(const Prompt& prompt) override;
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

  /// Metered variants run the same policy; the usage pointer rides the
  /// round trip into the inner stack, so a successful (possibly retried)
  /// call reports exactly the usage of the attempt that succeeded.
  /// Failed attempts report nothing (per the metered-API contract).
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  /// Forwards to the inner model: the decorator adds policy, not spend.
  /// Failed retried round trips are billed by whoever billed them inside
  /// (the transport bills only successes; SimulatedLlm bills each call).
  CostMeter cost() const override { return inner_->cost(); }
  void ResetCost() override { inner_->ResetCost(); }

  ResilienceStats stats() const;
  CircuitState circuit_state() const;
  const ResilienceOptions& options() const { return options_; }

 private:
  /// Runs `round_trip` under the full policy. `what` labels errors.
  template <typename T>
  Result<T> Guarded(const std::string& what,
                    const std::function<Result<T>()>& round_trip);

  /// Blocks until a rate-limit token is available or `deadline_at_ms`
  /// (absolute; INT64_MAX when no deadline) would be crossed. Returns
  /// false on deadline.
  bool AcquireToken(int64_t deadline_at_ms);

  /// Backoff delay before retry number `retry` (0-based), jittered;
  /// `server_ms` >= 0 takes precedence (still capped + jittered upward).
  int64_t RetryDelayMs(int retry, int64_t server_ms);

  int64_t Now() const { return options_.now_ms(); }

  LanguageModel* inner_;
  ResilienceOptions options_;

  mutable std::mutex mu_;
  // Token bucket (guarded by mu_; sleeps happen outside the lock).
  double tokens_;
  int64_t last_refill_ms_ = 0;
  // Circuit breaker (guarded by mu_).
  CircuitState circuit_ = CircuitState::kClosed;
  int consecutive_failures_ = 0;
  int64_t open_until_ms_ = 0;
  bool probe_in_flight_ = false;
  // Jitter source (guarded by mu_).
  std::mt19937_64 jitter_rng_;
  ResilienceStats stats_;  // guarded by mu_
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_RESILIENCE_H_
