#ifndef GALOIS_LLM_PROMPT_JSON_H_
#define GALOIS_LLM_PROMPT_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "llm/prompt.h"

namespace galois::llm {

/// JSON codec for the LLM wire protocol, shared by HttpLlm (client side)
/// and tests/FakeLlmServer (server side) so the two cannot drift.
///
/// The request shape is OpenAI-chat-completions compatible — `model` +
/// `messages:[{role,content}]` — with one extension: the structured
/// PromptIntent travels alongside the text under `galois_intent`. The
/// intent is what lets a *simulated* backend behind real HTTP ground its
/// answer exactly like the in-process SimulatedLlm does (the text-only
/// path is what a real provider would use; it ignores unknown fields).
/// Values inside intents serialise int64/date payloads as strings, so
/// populations and packed dates survive the double-typed JSON number
/// space losslessly.

/// Value <-> JSON ({"t":"int","v":"1234"} style tagged scalars).
Json ValueToJson(const Value& v);
Result<Value> ValueFromJson(const Json& j);

/// PromptIntent <-> JSON (tagged by "kind": key_scan, attribute_get,
/// filter_check, freeform, verify).
Json IntentToJson(const PromptIntent& intent);
Result<PromptIntent> IntentFromJson(const Json& j);

/// Token usage + modelled latency reported by the server. latency_ms
/// carries the backend's simulated per-round-trip latency so a loopback
/// run bills the same CostMeter as an in-process run.
struct WireUsage {
  int64_t prompt_tokens = 0;
  int64_t completion_tokens = 0;
  double latency_ms = 0.0;
};

/// One decoded single-completion response.
struct WireCompletion {
  Completion completion;
  WireUsage usage;
};

// --- single round trip (POST /v1/chat/completions) -----------------------

Json BuildChatRequest(const std::string& model, const Prompt& prompt);
Result<Prompt> ParseChatRequest(const Json& body);
Json BuildChatResponse(const std::string& model, const Completion& completion,
                       const WireUsage& usage);
Result<WireCompletion> ParseChatResponse(const Json& body);

// --- batched round trip (POST /v1/batch_completions) ----------------------
// One request carries every prompt of a chunk with its position under
// `index`; the response echoes the indices and may arrive in ANY order
// (the fake server scripts shuffled replies) — the client reassembles by
// index and rejects missing or duplicate entries, so a malformed batch
// yields an error with no partial completions.

Json BuildBatchRequest(const std::string& model,
                       const std::vector<Prompt>& prompts);
Result<std::vector<Prompt>> ParseBatchRequest(const Json& body);
Json BuildBatchResponse(const std::string& model,
                        const std::vector<Completion>& completions,
                        const std::vector<WireUsage>& per_prompt,
                        double round_trip_latency_ms,
                        const std::vector<size_t>& emit_order);
/// Returns the completions in index order (0..expected-1) plus the
/// aggregate usage; kLlmError on missing/duplicate/out-of-range indices.
Result<std::pair<std::vector<Completion>, WireUsage>> ParseBatchResponse(
    const Json& body, size_t expected);

}  // namespace galois::llm

#endif  // GALOIS_LLM_PROMPT_JSON_H_
