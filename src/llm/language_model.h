#ifndef GALOIS_LLM_LANGUAGE_MODEL_H_
#define GALOIS_LLM_LANGUAGE_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/prompt.h"

namespace galois::llm {

/// Per-model slice of a CostMeter: the usage one named backend accrued.
/// Cascade configurations (ModelRouter sending critic prompts to a strong
/// model and everything else to a cheap one) report cheap-vs-strong spend
/// through these slices; a single-model run has exactly one.
struct ModelUsage {
  int64_t num_prompts = 0;
  int64_t prompt_tokens = 0;
  int64_t completion_tokens = 0;
  double simulated_latency_ms = 0.0;
  int64_t num_batches = 0;

  ModelUsage& operator+=(const ModelUsage& other) {
    num_prompts += other.num_prompts;
    prompt_tokens += other.prompt_tokens;
    completion_tokens += other.completion_tokens;
    simulated_latency_ms += other.simulated_latency_ms;
    num_batches += other.num_batches;
    return *this;
  }

  ModelUsage& operator-=(const ModelUsage& other) {
    num_prompts -= other.num_prompts;
    prompt_tokens -= other.prompt_tokens;
    completion_tokens -= other.completion_tokens;
    simulated_latency_ms -= other.simulated_latency_ms;
    num_batches -= other.num_batches;
    return *this;
  }

  bool IsZero() const {
    return num_prompts == 0 && prompt_tokens == 0 &&
           completion_tokens == 0 && simulated_latency_ms == 0.0 &&
           num_batches == 0;
  }

  bool operator==(const ModelUsage& other) const {
    return num_prompts == other.num_prompts &&
           prompt_tokens == other.prompt_tokens &&
           completion_tokens == other.completion_tokens &&
           simulated_latency_ms == other.simulated_latency_ms &&
           num_batches == other.num_batches;
  }
  bool operator!=(const ModelUsage& other) const {
    return !(*this == other);
  }
};

/// Accumulated usage statistics for a model (Section 5 reports ~110
/// batched prompts and ~20 s per query; the cost meter regenerates those
/// numbers). Latency is simulated deterministically from token counts.
///
/// A CostMeter value is plain data with no internal synchronisation;
/// implementations that bill from several threads (SimulatedLlm under
/// parallel_batches, PromptCache) guard their meter internally and apply
/// one atomic update per round trip, so a meter snapshot never shows a
/// half-billed batch.
struct CostMeter {
  int64_t num_prompts = 0;
  int64_t prompt_tokens = 0;
  int64_t completion_tokens = 0;
  double simulated_latency_ms = 0.0;
  int64_t cache_hits = 0;    // filled by PromptCache
  int64_t store_hits = 0;    // cache_hits served by entries the prompt
                             // cache warm-started from the persistent
                             // store (a subset of cache_hits)
  int64_t num_batches = 0;   // batched round trips (CompleteBatch calls)

  /// Per-backend breakdown, keyed by model display name. Every shipped
  /// LanguageModel fills its own slice; aggregators (ModelRouter) merge
  /// the slices of their backends, so the aggregate fields above equal
  /// the sum over by_model — except cache-level attribution (cache_hits,
  /// and batch round trips a PromptCache answered entirely from cache),
  /// which belongs to no backend. Ordered map: report lines and equality
  /// checks are deterministic.
  std::map<std::string, ModelUsage> by_model;

  void Reset() { *this = CostMeter(); }

  /// Copies the aggregate transport fields into by_model[name] — the
  /// self-slice a concrete transport (SimulatedLlm, HttpLlm) reports
  /// for its own spend, both in cost() snapshots and in per-call usage
  /// deltas. Cache-level attribution (cache_hits) belongs to no backend
  /// and is deliberately excluded. No-op on an all-zero meter, so an
  /// idle backend lists no slice.
  void FillSelfSlice(const std::string& name) {
    if (num_prompts == 0 && num_batches == 0) return;
    ModelUsage& mine = by_model[name];
    mine.num_prompts = num_prompts;
    mine.prompt_tokens = prompt_tokens;
    mine.completion_tokens = completion_tokens;
    mine.simulated_latency_ms = simulated_latency_ms;
    mine.num_batches = num_batches;
  }

  /// Merge of two meters, including the per-backend slices. This is how
  /// per-call usage reports (CompleteMetered / CompleteBatchMetered)
  /// accumulate into a per-query meter.
  CostMeter& operator+=(const CostMeter& other) {
    num_prompts += other.num_prompts;
    prompt_tokens += other.prompt_tokens;
    completion_tokens += other.completion_tokens;
    simulated_latency_ms += other.simulated_latency_ms;
    cache_hits += other.cache_hits;
    store_hits += other.store_hits;
    num_batches += other.num_batches;
    for (const auto& [name, usage] : other.by_model) {
      by_model[name] += usage;
    }
    return *this;
  }

  /// Difference of two meters, including the per-backend slices (a
  /// caller may snapshot cost() before a run and subtract after, so the
  /// breakdown must subtract too or a cascade run would report the whole
  /// session's spend on every query). Slices that cancel to zero are
  /// dropped, so a query that never touched a backend does not list it.
  CostMeter operator-(const CostMeter& other) const {
    CostMeter out = *this;
    out.num_prompts -= other.num_prompts;
    out.prompt_tokens -= other.prompt_tokens;
    out.completion_tokens -= other.completion_tokens;
    out.simulated_latency_ms -= other.simulated_latency_ms;
    out.cache_hits -= other.cache_hits;
    out.store_hits -= other.store_hits;
    out.num_batches -= other.num_batches;
    for (const auto& [name, usage] : other.by_model) {
      out.by_model[name] -= usage;
    }
    for (auto it = out.by_model.begin(); it != out.by_model.end();) {
      if (it->second.IsZero()) {
        it = out.by_model.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }
};

/// Whitespace token count (our stand-in tokenizer for cost accounting).
int64_t CountTokens(const std::string& text);

/// Abstract language model client. Implementations: SimulatedLlm (the four
/// paper profiles over the synthetic world), HttpLlm (an OpenAI-compatible
/// chat-completions transport over blocking sockets), and the decorators
/// PromptCache (caching), ResilientLlm (retry / rate limit / deadline /
/// circuit breaker) and ModelRouter (per-phase backend routing). The
/// recommended production stack composes them as
/// router -> resilience -> cache -> transport (docs/ARCHITECTURE.md,
/// "Backends & routing").
///
/// Concurrency contract: BatchScheduler overlaps CompleteBatch round
/// trips when ExecutionOptions::parallel_batches > 1, so any model that
/// may sit behind a scheduler must tolerate concurrent Complete and
/// CompleteBatch calls (every shipped implementation and decorator
/// does). Single-threaded custom models remain valid as long as they
/// are only used with parallel_batches == 1.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  /// Human-readable model name ("GPT-3.5-turbo").
  virtual const std::string& name() const = 0;

  /// Executes one prompt in one round trip. Errors use
  /// StatusCode::kLlmError for model-side failures.
  virtual Result<Completion> Complete(const Prompt& prompt) = 0;

  /// Executes a batch of independent prompts in one round trip (the
  /// paper's "~110 *batched* prompts per query"), returning exactly one
  /// completion per prompt, in input order. The default loops over
  /// Complete; implementations may overlap the per-prompt latency —
  /// SimulatedLlm bills one shared round-trip overhead per batch. On
  /// error, nothing is returned (no partial completions), but the failed
  /// round trip may already have been billed.
  virtual Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts);

  /// Metered variants: identical semantics to Complete / CompleteBatch,
  /// but additionally *accumulate* into `*usage` (when non-null) exactly
  /// what this call billed into cost(). They exist so a caller can
  /// attribute spend to one logical query while many queries share one
  /// model stack concurrently — diffing cost() around a call is racy the
  /// moment another thread bills in between, per-call usage reports are
  /// not. Decorators forward the pointer down the stack, adding their own
  /// attribution (PromptCache adds cache_hits, ModelRouter merges
  /// per-backend slices).
  ///
  /// On error nothing is added to `*usage`; a failed round trip that the
  /// stack billed anyway (SimulatedLlm bills per answered prompt, HTTP
  /// retries bill server-side) shows up only in the stack-wide cost().
  ///
  /// The default implementations fall back to diffing cost() around the
  /// unmetered call — exact only while no other thread bills the same
  /// model. Every shipped model and decorator overrides them with exact
  /// per-call attribution; custom single-threaded models can rely on the
  /// default.
  virtual Result<Completion> CompleteMetered(const Prompt& prompt,
                                             CostMeter* usage);
  virtual Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage);

  /// Usage since construction / last reset, returned as a consistent
  /// snapshot. Safe to call concurrently with in-flight round trips (the
  /// shipped implementations synchronise internally and never expose a
  /// half-billed batch).
  virtual CostMeter cost() const = 0;
  virtual void ResetCost() = 0;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_LANGUAGE_MODEL_H_
