#ifndef GALOIS_LLM_LANGUAGE_MODEL_H_
#define GALOIS_LLM_LANGUAGE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/prompt.h"

namespace galois::llm {

/// Accumulated usage statistics for a model (Section 5 reports ~110
/// batched prompts and ~20 s per query; the cost meter regenerates those
/// numbers). Latency is simulated deterministically from token counts.
///
/// A CostMeter value is plain data with no internal synchronisation;
/// implementations that bill from several threads (SimulatedLlm under
/// parallel_batches, PromptCache) guard their meter internally and apply
/// one atomic update per round trip, so a meter snapshot never shows a
/// half-billed batch.
struct CostMeter {
  int64_t num_prompts = 0;
  int64_t prompt_tokens = 0;
  int64_t completion_tokens = 0;
  double simulated_latency_ms = 0.0;
  int64_t cache_hits = 0;    // filled by PromptCache
  int64_t num_batches = 0;   // batched round trips (CompleteBatch calls)

  void Reset() { *this = CostMeter(); }

  CostMeter operator-(const CostMeter& other) const {
    CostMeter out = *this;
    out.num_prompts -= other.num_prompts;
    out.prompt_tokens -= other.prompt_tokens;
    out.completion_tokens -= other.completion_tokens;
    out.simulated_latency_ms -= other.simulated_latency_ms;
    out.cache_hits -= other.cache_hits;
    out.num_batches -= other.num_batches;
    return out;
  }
};

/// Whitespace token count (our stand-in tokenizer for cost accounting).
int64_t CountTokens(const std::string& text);

/// Abstract language model client. Implementations: SimulatedLlm (the four
/// paper profiles over the synthetic world) and PromptCache (a caching
/// decorator). A production build would add an HTTP-API client here.
///
/// Concurrency contract: BatchScheduler overlaps CompleteBatch round
/// trips when ExecutionOptions::parallel_batches > 1, so any model that
/// may sit behind a scheduler must tolerate concurrent Complete and
/// CompleteBatch calls (both shipped implementations do). Single-threaded
/// custom models remain valid as long as they are only used with
/// parallel_batches == 1.
class LanguageModel {
 public:
  virtual ~LanguageModel() = default;

  /// Human-readable model name ("GPT-3.5-turbo").
  virtual const std::string& name() const = 0;

  /// Executes one prompt in one round trip. Errors use
  /// StatusCode::kLlmError for model-side failures.
  virtual Result<Completion> Complete(const Prompt& prompt) = 0;

  /// Executes a batch of independent prompts in one round trip (the
  /// paper's "~110 *batched* prompts per query"), returning exactly one
  /// completion per prompt, in input order. The default loops over
  /// Complete; implementations may overlap the per-prompt latency —
  /// SimulatedLlm bills one shared round-trip overhead per batch. On
  /// error, nothing is returned (no partial completions), but the failed
  /// round trip may already have been billed.
  virtual Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts);

  /// Usage since construction / last reset, returned as a consistent
  /// snapshot. Safe to call concurrently with in-flight round trips (the
  /// shipped implementations synchronise internally and never expose a
  /// half-billed batch).
  virtual CostMeter cost() const = 0;
  virtual void ResetCost() = 0;
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_LANGUAGE_MODEL_H_
