#include "llm/resilience.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "llm/http_llm.h"

namespace galois::llm {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kNoDeadline = INT64_MAX;

}  // namespace

const char* CircuitStateName(CircuitState s) {
  switch (s) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half-open";
  }
  return "?";
}

ResilientLlm::ResilientLlm(LanguageModel* inner, ResilienceOptions options)
    : inner_(inner),
      options_(std::move(options)),
      tokens_(std::max(1.0, options_.rate_limit_burst)),
      jitter_rng_(options_.jitter_seed) {
  if (!options_.now_ms) options_.now_ms = SteadyNowMs;
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](int64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  last_refill_ms_ = Now();
}

bool ResilientLlm::AcquireToken(int64_t deadline_at_ms) {
  if (options_.rate_limit_per_sec <= 0.0) return true;
  const double burst = std::max(1.0, options_.rate_limit_burst);
  bool waited = false;
  while (true) {
    int64_t wait_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const int64_t now = Now();
      if (now > last_refill_ms_) {
        tokens_ = std::min(
            burst, tokens_ + options_.rate_limit_per_sec *
                                 static_cast<double>(now - last_refill_ms_) /
                                 1000.0);
        last_refill_ms_ = now;
      }
      if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        if (waited) ++stats_.rate_limit_waits;
        return true;
      }
      wait_ms = static_cast<int64_t>(std::ceil(
          (1.0 - tokens_) * 1000.0 / options_.rate_limit_per_sec));
      wait_ms = std::max<int64_t>(1, wait_ms);
      if (deadline_at_ms != kNoDeadline && Now() + wait_ms > deadline_at_ms) {
        ++stats_.deadline_exceeded;
        return false;
      }
    }
    // Sleep outside the lock; several waiters re-compete for the refilled
    // token on wake-up, which keeps the bucket fair-enough and lock-light.
    options_.sleep_ms(wait_ms);
    waited = true;
  }
}

int64_t ResilientLlm::RetryDelayMs(int retry, int64_t server_ms) {
  double base;
  if (server_ms >= 0) {
    // Honour the server's Retry-After, but never beyond the local cap.
    base = static_cast<double>(
        std::min<int64_t>(server_ms, options_.max_backoff_ms));
  } else {
    base = static_cast<double>(options_.initial_backoff_ms) *
           std::pow(options_.backoff_multiplier, retry);
    base = std::min(base, static_cast<double>(options_.max_backoff_ms));
  }
  double factor = 1.0;
  if (options_.jitter > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    std::uniform_real_distribution<double> dist(0.0, options_.jitter);
    // Jitter only stretches the delay, so a server-requested minimum is
    // respected (up to the cap, which is absolute and applied last).
    factor += dist(jitter_rng_);
  }
  const int64_t delay =
      std::max<int64_t>(0, static_cast<int64_t>(std::llround(base * factor)));
  return std::min(delay, options_.max_backoff_ms);
}

template <typename T>
Result<T> ResilientLlm::Guarded(
    const std::string& what, const std::function<Result<T>()>& round_trip) {
  const int64_t start = Now();
  const int64_t deadline = options_.request_deadline_ms > 0
                               ? start + options_.request_deadline_ms
                               : kNoDeadline;
  const bool breaker_on = options_.circuit_failure_threshold > 0;
  Status last = Status::OK();
  for (int retry = 0;; ++retry) {
    // --- circuit admission -------------------------------------------
    bool is_probe = false;
    if (breaker_on) {
      std::lock_guard<std::mutex> lock(mu_);
      if (circuit_ == CircuitState::kOpen && Now() >= open_until_ms_) {
        circuit_ = CircuitState::kHalfOpen;
        probe_in_flight_ = false;
      }
      if (circuit_ == CircuitState::kOpen) {
        ++stats_.circuit_rejections;
        return Status::LlmError(
            what + ": circuit open for " + inner_->name() + " (cools down in " +
            std::to_string(std::max<int64_t>(0, open_until_ms_ - Now())) +
            " ms)");
      }
      if (circuit_ == CircuitState::kHalfOpen) {
        if (probe_in_flight_) {
          ++stats_.circuit_rejections;
          return Status::LlmError(what + ": circuit half-open for " +
                                  inner_->name() +
                                  ", probe already in flight");
        }
        probe_in_flight_ = true;
        is_probe = true;
      }
    }
    auto abandon_probe = [&] {
      if (is_probe) {
        std::lock_guard<std::mutex> lock(mu_);
        probe_in_flight_ = false;
      }
    };

    // --- rate limit ---------------------------------------------------
    if (!AcquireToken(deadline)) {
      abandon_probe();
      return Status::LlmError(
          what + ": deadline of " +
          std::to_string(options_.request_deadline_ms) +
          " ms exceeded waiting for a rate-limit token");
    }

    // --- the round trip ----------------------------------------------
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.round_trips;
    }
    Result<T> result = round_trip();
    if (result.ok()) {
      if (breaker_on) {
        std::lock_guard<std::mutex> lock(mu_);
        consecutive_failures_ = 0;
        if (is_probe) {
          // The probe came back healthy: close the circuit.
          probe_in_flight_ = false;
          circuit_ = CircuitState::kClosed;
        }
      }
      return result;
    }
    last = result.status();
    if (breaker_on) {
      std::lock_guard<std::mutex> lock(mu_);
      ++consecutive_failures_;
      if (is_probe) {
        // A failed probe re-opens immediately, whatever the counter says.
        probe_in_flight_ = false;
        circuit_ = CircuitState::kOpen;
        open_until_ms_ = Now() + options_.circuit_cooldown_ms;
        ++stats_.circuit_opens;
      } else if (circuit_ == CircuitState::kClosed &&
                 consecutive_failures_ >=
                     options_.circuit_failure_threshold) {
        circuit_ = CircuitState::kOpen;
        open_until_ms_ = Now() + options_.circuit_cooldown_ms;
        ++stats_.circuit_opens;
      }
    }

    // --- retry decision ----------------------------------------------
    if (!IsRetryableLlmError(last)) {
      return last;  // transport says deterministic; do not mask it
    }
    if (retry >= options_.max_retries) {
      return Status(last.code(),
                    what + ": giving up after " + std::to_string(retry + 1) +
                        " round trips; last error: " + last.message());
    }
    const int64_t server_ms = RetryAfterMs(last);
    const int64_t delay = RetryDelayMs(retry, server_ms);
    if (deadline != kNoDeadline && Now() + delay > deadline) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.deadline_exceeded;
      return Status::LlmError(
          what + ": deadline of " +
          std::to_string(options_.request_deadline_ms) +
          " ms exceeded before retry " + std::to_string(retry + 1) +
          "; last error: " + last.message());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
      if (server_ms >= 0) ++stats_.retry_after_honoured;
    }
    if (delay > 0) options_.sleep_ms(delay);
  }
}

Result<Completion> ResilientLlm::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> ResilientLlm::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> ResilientLlm::CompleteMetered(const Prompt& prompt,
                                                 CostMeter* usage) {
  return Guarded<Completion>(
      "resilient " + inner_->name(), [&]() -> Result<Completion> {
        return inner_->CompleteMetered(prompt, usage);
      });
}

Result<std::vector<Completion>> ResilientLlm::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  return Guarded<std::vector<Completion>>(
      "resilient " + inner_->name() + " batch[" +
          std::to_string(prompts.size()) + "]",
      [&]() -> Result<std::vector<Completion>> {
        return inner_->CompleteBatchMetered(prompts, usage);
      });
}

ResilienceStats ResilientLlm::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CircuitState ResilientLlm::circuit_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return circuit_;
}

}  // namespace galois::llm
