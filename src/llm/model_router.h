#ifndef GALOIS_LLM_MODEL_ROUTER_H_
#define GALOIS_LLM_MODEL_ROUTER_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "llm/language_model.h"

namespace galois::llm {

/// Canonical routing phase of a prompt, derived from its structured
/// intent. These names line up with the BatchScheduler phase-label
/// prefixes the executor already emits ("key-scan:city",
/// "filter-check:population", "attribute:mayor", "verify:gdp"), so an
/// error message, a route and a cost line all speak the same vocabulary.
/// Returns one of: "key-scan", "filter-check", "attribute", "verify",
/// "freeform".
const std::string& PhaseOfIntent(const PromptIntent& intent);

/// The five routable phase names, in plan order.
const std::vector<std::string>& RoutablePhases();

/// Per-phase routing decorator: the top of the recommended backend stack
/// (router -> resilience -> cache -> transport). GaloisExecutor keeps
/// talking to one LanguageModel; the router sends each prompt to the
/// backend registered for its phase — the paper's cost-model lever made
/// operational: key scans, filter checks and attribute completion go to a
/// cheap model while critic verification ("verification is easier than
/// generation") goes to a strong one. ExecutionOptions::phase_models is
/// the configuration surface; eval/shell/examples feed it to
/// ConfigureRoutes.
///
/// CompleteBatch partitions a mixed batch by target backend, issues one
/// inner CompleteBatch per backend involved, and reassembles completions
/// in input order; executor phases are intent-homogeneous, so in practice
/// a chunk rides exactly one inner round trip. Any backend failure fails
/// the whole call with no partial completions (the CompleteBatch
/// contract).
///
/// cost() merges the meters of all distinct backends (deduped by
/// pointer, so two aliases of one model are not double-counted); the
/// per-backend by_model slices land in eval's FormatCostStats breakdown.
///
/// Thread-safety: routing-table mutations are mutex-guarded, and
/// Complete/CompleteBatch only read it, so routing is safe under
/// parallel_batches; reconfigure between queries, not mid-flight (an
/// in-flight phase may use either route). The backends themselves must
/// tolerate concurrent calls, same as behind a BatchScheduler.
class ModelRouter : public LanguageModel {
 public:
  ModelRouter();

  /// Registers `model` (non-owning; must outlive the router) under
  /// `backend`. The first registered backend becomes the default.
  /// kAlreadyExists on duplicate names.
  Status AddBackend(const std::string& backend, LanguageModel* model);

  /// kNotFound unless `backend` is registered.
  Status SetDefaultBackend(const std::string& backend);

  /// Routes `phase` ("critic" is accepted as an alias of "verify") to
  /// `backend`. kInvalidArgument for unknown phases, kNotFound for
  /// unknown backends.
  Status SetRoute(const std::string& phase, const std::string& backend);

  /// Applies ExecutionOptions::phase_models wholesale (clears existing
  /// routes first). On error the previous routes are restored.
  Status ConfigureRoutes(const std::map<std::string, std::string>& routes);

  void ClearRoutes();

  /// Registered backend names, in registration order.
  std::vector<std::string> backend_names() const;
  /// Current routes as phase -> backend name (unrouted phases use the
  /// default and are absent).
  std::map<std::string, std::string> routes() const;
  const std::string& default_backend() const;

  /// The backend a prompt with `intent` would be sent to (nullptr before
  /// any backend is registered).
  LanguageModel* BackendFor(const PromptIntent& intent) const;

  // --- LanguageModel -------------------------------------------------------

  /// "router(default)" — display-only; per-backend attribution uses the
  /// backends' own names via by_model. Like the routing table, the name
  /// must not be read concurrently with AddBackend/SetDefaultBackend
  /// (configure before issuing traffic).
  const std::string& name() const override;

  Result<Completion> Complete(const Prompt& prompt) override;
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

  /// Metered variants forward the usage pointer to the routed backend(s);
  /// a mixed batch accumulates one slice per backend involved, so a
  /// per-query meter shows the same per-backend breakdown as cost().
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  CostMeter cost() const override;
  void ResetCost() override;

 private:
  struct Backend {
    std::string backend_name;
    LanguageModel* model = nullptr;
  };

  LanguageModel* BackendForLocked(const PromptIntent& intent) const;

  mutable std::mutex mu_;
  std::vector<Backend> backends_;                 // registration order
  std::map<std::string, size_t> routes_;          // phase -> backends_ index
  size_t default_index_ = 0;
  std::string name_;  // recomputed on registration/default changes
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_MODEL_ROUTER_H_
