#include "llm/prompt_templates.h"

#include "common/strings.h"

namespace galois::llm {

const std::string& FewShotPreamble() {
  // Figure 4 of the paper, verbatim in spirit: instruction plus few-shot
  // QA pairs steering the model toward terse factual answers.
  static const std::string* kPreamble = new std::string(
      "I am a highly intelligent question answering bot. If you ask me a "
      "question that is rooted in truth, I will give you the short answer. "
      "If you ask me a question that is nonsense, trickery, or has no clear "
      "answer, I will respond with \"Unknown\". If the answer is numerical, "
      "I will return the number only.\n"
      "Q: What is human life expectancy in the United States?\nA: 78.\n"
      "Q: Who was president of the United States in 1955?\n"
      "A: Dwight D. Eisenhower.\n"
      "Q: What is the capital of France?\nA: Paris.\n"
      "Q: What is a continent starting with letter O?\nA: Oceania.\n"
      "Q: Where were the 1992 Olympics held?\nA: Barcelona.\n"
      "Q: How many squigs are in a bonk?\nA: Unknown\n");
  return *kPreamble;
}

std::string OperatorPhrase(const std::string& op) {
  if (op == "=") return "equal to";
  if (op == "!=") return "different from";
  if (op == "<") return "less than";
  if (op == "<=") return "at most";
  if (op == ">") return "greater than";
  if (op == ">=") return "at least";
  if (op == "LIKE") return "matching";
  return op;
}

std::string Pluralize(const std::string& noun) {
  if (noun.empty()) return noun;
  if (EndsWith(noun, "y") && noun.size() > 1) {
    char prev = noun[noun.size() - 2];
    if (prev != 'a' && prev != 'e' && prev != 'i' && prev != 'o' &&
        prev != 'u') {
      return noun.substr(0, noun.size() - 1) + "ies";
    }
  }
  if (EndsWith(noun, "s") || EndsWith(noun, "x") || EndsWith(noun, "ch") ||
      EndsWith(noun, "sh")) {
    return noun + "es";
  }
  return noun + "s";
}

namespace {

std::string FilterPhrase(const PromptFilter& f) {
  std::string attr = f.attribute_description.empty()
                         ? HumanizeIdentifier(f.attribute)
                         : f.attribute_description;
  return attr + " " + OperatorPhrase(f.op) + " " + f.value.ToString();
}

}  // namespace

Prompt BuildKeyScanPrompt(const KeyScanIntent& intent) {
  Prompt p;
  std::string request;
  std::string key = HumanizeIdentifier(intent.key_attribute);
  std::string nouns = Pluralize(intent.concept_name);
  if (intent.filter.has_value()) {
    request = "Q: List the " + Pluralize(key) + " of all " + nouns +
              " with " + FilterPhrase(*intent.filter) + ".\nA:";
  } else {
    request = "Q: List the " + Pluralize(key) + " of all " + nouns +
              ".\nA:";
  }
  if (intent.page > 0) {
    // The page index keeps each paging prompt's text distinct: in a real
    // conversation the transcript (the omitted previous results) differs
    // per page, and a text-keyed prompt cache must not conflate page k
    // with page k+1 or every cached scan would terminate after one
    // "Return more results" round.
    request += " [previous results 1-" + std::to_string(intent.page) +
               " omitted]\nQ: Return more results.\nA:";
  }
  p.text = FewShotPreamble() + request;
  p.intent = intent;
  return p;
}

Prompt BuildAttributePrompt(const AttributeGetIntent& intent) {
  Prompt p;
  std::string attr = intent.attribute_description.empty()
                         ? HumanizeIdentifier(intent.attribute)
                         : intent.attribute_description;
  p.text = FewShotPreamble() + "Q: What is the " + attr + " of the " +
           intent.concept_name + " " + intent.key + "?\nA:";
  p.intent = intent;
  return p;
}

Prompt BuildFilterPrompt(const FilterCheckIntent& intent) {
  // Instantiates the paper's template
  // "Has relationName keyName attributeName operator value ?".
  Prompt p;
  p.text = FewShotPreamble() + "Q: Has " + intent.concept_name + " " +
           intent.key + " " + FilterPhrase(intent.filter) +
           "? Answer Yes or No.\nA:";
  p.intent = intent;
  return p;
}

Prompt BuildVerifyPrompt(const VerifyIntent& intent) {
  Prompt p;
  std::string attr = intent.attribute_description.empty()
                         ? HumanizeIdentifier(intent.attribute)
                         : intent.attribute_description;
  p.text = FewShotPreamble() + "Q: Is it true that the " + attr +
           " of the " + intent.concept_name + " " + intent.key + " is " +
           intent.claimed.ToString() + "? Answer Yes or No.\nA:";
  p.intent = intent;
  return p;
}

Prompt BuildFreeformPrompt(const FreeformIntent& intent) {
  Prompt p;
  if (intent.chain_of_thought) {
    // Section 5: "an engineered prompt contains a complete example of a
    // manually crafted chain-of-thought, similar to the logical plan
    // execution for the query, followed by t and instructions to reason
    // step by step". The example is fixed, as in the paper.
    p.text =
        FewShotPreamble() +
        "Q: List the capitals of the countries where the current head of "
        "state took office after 2015.\n"
        "A: Let's break the task into steps. Step 1: list the countries. "
        "Step 2: for each country, find when its head of state took "
        "office. Step 3: keep the countries where that year is after "
        "2015. Step 4: for each kept country, return its capital.\n"
        "Q: " +
        intent.question + "\nA: Let's think step by step.";
  } else {
    p.text = FewShotPreamble() + "Q: " + intent.question + "\nA:";
  }
  p.intent = intent;
  return p;
}

}  // namespace galois::llm
