#ifndef GALOIS_LLM_PROMPT_TEMPLATES_H_
#define GALOIS_LLM_PROMPT_TEMPLATES_H_

#include <string>

#include "llm/prompt.h"

namespace galois::llm {

/// Builders for the operator-specific prompt templates of Section 4.
/// Each returns a complete Prompt: the Figure-4 instruction preamble with
/// few-shot examples, followed by the operator request instantiated with
/// the schema labels and conditions of the query at hand.

/// The fixed instruction + few-shot preamble (Figure 4 of the paper).
const std::string& FewShotPreamble();

/// Leaf data access: "List the names of all countries." / page>0 appends
/// the iterative "Return more results." continuation. A pushed-down filter
/// becomes e.g. "List the names of all cities with population greater than
/// 1000000."
Prompt BuildKeyScanPrompt(const KeyScanIntent& intent);

/// Attribute retrieval node: "What is the current mayor of the city Rome?"
Prompt BuildAttributePrompt(const AttributeGetIntent& intent);

/// Selection check: template "Has relationName keyName attributeName
/// operator value?" -> "Has politician B. Obama age less than 40?"
Prompt BuildFilterPrompt(const FilterCheckIntent& intent);

/// QA baseline prompt: the plain NL question (T_M) or the engineered
/// chain-of-thought variant (T^C_M) with a worked decomposition example.
Prompt BuildFreeformPrompt(const FreeformIntent& intent);

/// Critic verification: "Is it true that the population of the city Rome
/// is 2800000? Answer Yes or No." (Section 6's verify-by-another-model.)
Prompt BuildVerifyPrompt(const VerifyIntent& intent);

/// English rendering of a comparison operator ("greater than", ...).
std::string OperatorPhrase(const std::string& op);

/// Naive English pluralisation used in scan prompts ("country" ->
/// "countries").
std::string Pluralize(const std::string& noun);

}  // namespace galois::llm

#endif  // GALOIS_LLM_PROMPT_TEMPLATES_H_
