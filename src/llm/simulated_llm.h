#ifndef GALOIS_LLM_SIMULATED_LLM_H_
#define GALOIS_LLM_SIMULATED_LLM_H_

#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "knowledge/world_kb.h"
#include "llm/language_model.h"
#include "llm/model_profile.h"

namespace galois::llm {

/// Deterministic simulated language model.
///
/// Stands in for the OpenAI / HuggingFace models of the paper (see
/// DESIGN.md, substitutions). It answers prompts by reading the synthetic
/// WorldKb through a *noisy view* controlled by a ModelProfile:
///
///  * coverage — an entity is "known" iff a per-(model, entity) hash draw
///    falls under coverage_floor + coverage_gain * popularity; unknown
///    entities never appear in scans and yield "Unknown" on lookups;
///  * factuality — attribute values are recalled correctly with
///    probability fact_accuracy, otherwise a stable hallucinated
///    perturbation is returned (the same wrong value on every prompt);
///  * surface forms — reference attributes may be systematically rendered
///    in non-canonical forms per (model, concept_name, attribute) ("ITA" for
///    "Italy"), the paper's join-failure mechanism; numeric/date values may
///    be formatted noisily ("1k", "3 million", "08/04/1962");
///  * paging — key scans page through known entities by popularity and
///    stop early with probability paging_fatigue per page, and may inject
///    hallucinated keys.
///
/// Every draw is a pure function of (seed, model name, entity, attribute,
/// purpose), so runs are reproducible and answers are self-consistent
/// across prompts. Simulated latency is likewise a pure function of the
/// prompt text, so the CostMeter is identical however round trips are
/// ordered or overlapped.
///
/// Thread-safety: Complete, CompleteBatch and cost() may be called
/// concurrently (the batch scheduler overlaps round trips when
/// parallel_batches > 1); the cost meter is updated atomically per round
/// trip under an internal mutex and cost() returns a consistent
/// by-value snapshot.
class SimulatedLlm : public LanguageModel {
 public:
  /// `kb` must outlive the model. `ground_catalog` is optional and only
  /// needed for free-form QA prompts (the baselines), which ground their
  /// answers by executing the underlying SQL; pass the workload catalog.
  SimulatedLlm(const knowledge::WorldKb* kb, ModelProfile profile,
               const catalog::Catalog* ground_catalog = nullptr,
               uint64_t seed = 7);

  const std::string& name() const override { return profile_.name; }

  /// One round trip for one prompt. Safe to call concurrently.
  Result<Completion> Complete(const Prompt& prompt) override;

  /// Batched execution: prompts in one batch share a single round-trip
  /// overhead and their decode latencies overlap (the max, not the sum,
  /// dominates), mirroring how API batching amortises cost. One billing
  /// update per call, so concurrent batches never interleave partial
  /// meters.
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override;

  /// Exact per-call usage reports (the billing is computed per round trip
  /// anyway, so the delta handed to `usage` is the one applied to the
  /// meter — including the by_model slice).
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  /// Consistent snapshot of the accumulated usage; safe to call from any
  /// thread.
  CostMeter cost() const override;
  void ResetCost() override;

  const ModelProfile& profile() const { return profile_; }

  /// Makes every round trip (one Complete or CompleteBatch call) block
  /// the calling thread for `ms` wall-clock milliseconds, so concurrency
  /// benchmarks measure a real, deterministic per-round-trip latency
  /// instead of the sub-microsecond simulated answer path. 0 (default)
  /// disables the sleep. Does not affect the simulated_latency_ms meter.
  void set_wall_latency_ms(double ms) { wall_latency_ms_ = ms; }
  double wall_latency_ms() const { return wall_latency_ms_; }

  // --- noisy world view (used by the QA baseline and by tests) -----------

  /// Whether this model knows the entity at all.
  bool KnowsEntity(const std::string& concept_name, const std::string& key) const;

  /// Known entities of a concept_name, most popular first.
  std::vector<const knowledge::Entity*> KnownEntities(
      const std::string& concept_name) const;

  /// The value this model believes for (concept_name, key, attribute): the true
  /// value with probability fact_accuracy, else a stable perturbation.
  /// Returns NULL Value when the model would answer "Unknown".
  Result<Value> NoisyAttribute(const std::string& concept_name,
                               const std::string& key,
                               const std::string& attribute) const;

  /// Renders `v` as the model would print it, applying surface-form style
  /// (for reference attributes) and format noise. `key` seeds the
  /// per-value format draw.
  std::string RenderValue(const std::string& concept_name,
                          const std::string& attribute, const Value& v,
                          const std::string& key) const;

  /// Whether this model systematically uses a non-canonical surface form
  /// for the given reference attribute (decided once per (model, concept_name,
  /// attribute)).
  bool UsesNonCanonicalStyle(const std::string& concept_name,
                             const std::string& attribute) const;

  /// The page index (1-based) at which a key scan of `concept_name` stops
  /// producing results; pages >= this return "No more results".
  int ScanStopPage(const std::string& concept_name) const;

 private:
  /// Uniform [0,1) draw, pure in the labels.
  double Draw(const std::string& purpose, const std::string& a,
              const std::string& b = "", const std::string& c = "") const;

  /// Computes the completion text for `prompt` without billing. Pure in
  /// the prompt (plus the fixed seed/profile), hence safe to run from any
  /// thread.
  Result<Completion> Answer(const Prompt& prompt) const;

  Result<Completion> CompleteKeyScan(const KeyScanIntent& intent) const;
  Result<Completion> CompleteAttributeGet(
      const AttributeGetIntent& intent) const;
  Result<Completion> CompleteFilterCheck(
      const FilterCheckIntent& intent) const;
  Result<Completion> CompleteFreeform(const FreeformIntent& intent) const;
  Result<Completion> CompleteVerify(const VerifyIntent& intent) const;

  /// Applies filter semantics on the model's noisy value. Returns 1 (holds),
  /// 0 (does not hold) or -1 (model would answer "Unknown").
  Result<int> NoisyFilterHolds(const std::string& concept_name,
                               const std::string& key,
                               const PromptFilter& filter,
                               double extra_error,
                               const std::string& purpose) const;

  /// Per-prompt simulated latency (base + decode, with deterministic
  /// jitter seeded by the prompt text only, so it is order-independent).
  double PromptLatencyMs(const Prompt& prompt,
                         const std::string& completion_text) const;

  /// Blocks for wall_latency_ms_ when the knob is set (one call per round
  /// trip). Never holds cost_mu_.
  void SimulateRoundTripWait() const;

  /// Applies `delta` to the meter in one locked update and, when `usage`
  /// is non-null, reports it (with the by_model slice) to the caller.
  void Bill(const CostMeter& delta, CostMeter* usage);

  const knowledge::WorldKb* kb_;
  ModelProfile profile_;
  const catalog::Catalog* ground_catalog_;
  uint64_t seed_;
  double wall_latency_ms_ = 0.0;

  mutable std::mutex cost_mu_;
  CostMeter cost_;  // guarded by cost_mu_
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_SIMULATED_LLM_H_
