#ifndef GALOIS_LLM_MODEL_PROFILE_H_
#define GALOIS_LLM_MODEL_PROFILE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace galois::llm {

/// Behavioural knobs of a simulated language model.
///
/// The four presets correspond to the models evaluated in the paper
/// (Section 5, Setup): Flan-T5-large, TK-instruct-large, InstructGPT-3 and
/// GPT-3.5-turbo. Values are calibrated so the *shape* of Table 1 and
/// Table 2 is preserved (small models miss many rows; GPT-3 slightly
/// over-generates; joins fail on surface-form mismatches; Galois beats QA
/// which beats CoT on aggregates).
struct ModelProfile {
  std::string name;
  int64_t parameters_millions = 0;

  // --- knowledge coverage -------------------------------------------------
  /// An entity of popularity p is known iff
  /// hash-uniform(model, entity) < coverage_floor + coverage_gain * p
  /// (clamped to [0,1]). Popular entities are nearly always known.
  double coverage_floor = 0.2;
  double coverage_gain = 0.8;

  /// Probability a *known* attribute is still answered "Unknown".
  double unknown_rate = 0.02;

  /// Probability the model answers confidently (with a fabricated value)
  /// about an entity it does not actually know, instead of "Unknown" —
  /// Section 3's "LLMs do not know what they know". Keeps hallucinated
  /// scan keys alive through filter checks.
  double fake_entity_confidence = 0.3;

  // --- factuality ---------------------------------------------------------
  /// Probability an attribute value is recalled correctly; otherwise the
  /// model hallucinates a perturbed value.
  double fact_accuracy = 0.8;

  /// Recall accuracy for numeric magnitudes (populations, capacities...).
  /// Substantially below fact_accuracy: language models are much weaker at
  /// exact numeric literals than at entity names (cf. the paper's
  /// discussion of poor data-manipulation skills and [31]). Years use
  /// fact_accuracy — they behave like memorable tokens.
  double numeric_fact_accuracy = 0.6;

  /// Relative magnitude of numeric hallucinations (value scaled by
  /// 1 +/- U(0.1, this)).
  double numeric_error_scale = 0.5;

  // --- surface forms / formatting ----------------------------------------
  /// Probability that a *reference* attribute (a value that is the key of
  /// another concept: city.country, airport.city, ...) is systematically
  /// rendered in a non-canonical surface form for a given (concept,
  /// attribute) pair — e.g. "ITA" instead of "Italy". This is the paper's
  /// join-failure mechanism ("an attempt to join the country code IT with
  /// ITA for entity Italy").
  double reference_style_noise = 0.5;

  /// Probability a numeric/date value is rendered in a noisy format that
  /// the cleaning layer must normalise ("1k", "3 million", "08/04/1962").
  double value_format_noise = 0.3;

  /// Probability a scalar answer is wrapped in a full sentence instead of
  /// the bare value ("The population of Rome is 2.8 million.").
  double verbosity = 0.2;

  // --- iterative retrieval (key scans) ------------------------------------
  /// Keys returned per page of the iterative "Return more results" loop.
  int page_size = 15;

  /// After each page, probability the model refuses to produce more
  /// results even though it knows more entities (drives the missing-rows
  /// behaviour of the small models in Table 1).
  double paging_fatigue = 0.1;

  /// Probability (per page) of injecting one invented entity into a key
  /// scan (drives GPT-3's slightly positive cardinality delta).
  double hallucinated_key_rate = 0.02;

  /// Extra probability that a filter pushed down into the scan prompt is
  /// evaluated wrongly (Section 6: merged prompts are "complex questions
  /// that have lower accuracy than simple ones").
  double pushdown_error = 0.1;

  /// Probability a per-key filter-check prompt flips its outcome on top of
  /// the value noise.
  double filter_check_error = 0.03;

  /// Probability the critic catches a *false* claim. Higher than
  /// generation accuracy — Section 6: "verification is easier than
  /// generation, e.g., it is easier to verify a proof rather than
  /// generate it".
  double verifier_accuracy = 0.92;

  /// Probability the critic wrongly rejects a *true* claim. Much smaller:
  /// confirming a statement the model already believes is the easy
  /// direction of verification.
  double verifier_false_reject = 0.02;

  // --- QA baseline behaviour (Section 5, T_M and T^C_M) -------------------
  /// Fraction of the true result list a one-shot NL answer covers.
  double qa_list_recall = 0.7;
  /// Probability a one-shot NL aggregate answer lands within the 5%
  /// tolerance.
  double qa_aggregate_accuracy = 0.2;
  /// Probability a one-shot NL join row is aligned correctly.
  double qa_join_accuracy = 0.08;
  /// Same three for the chain-of-thought prompt variant.
  double cot_list_recall = 0.7;
  double cot_aggregate_accuracy = 0.13;
  double cot_join_accuracy = 0.0;

  // --- simulated cost -----------------------------------------------------
  double latency_ms_base = 120.0;     // fixed per-prompt overhead
  double latency_ms_per_token = 6.0;  // decoding cost per completion token

  /// The four paper models.
  static ModelProfile Flan();
  static ModelProfile Tk();
  static ModelProfile Gpt3();
  static ModelProfile ChatGpt();

  /// Lookup by (case-insensitive) name: "flan", "tk", "gpt-3", "chatgpt".
  static Result<ModelProfile> ByName(const std::string& name);

  /// All four presets, in the paper's table order.
  static std::vector<ModelProfile> AllPaperModels();
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_MODEL_PROFILE_H_
