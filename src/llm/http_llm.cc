#include "llm/http_llm.h"

#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "llm/prompt_json.h"
#include "net/http.h"
#include "net/socket.h"

namespace galois::llm {

namespace {

constexpr char kRetryableMarker[] = " [retryable]";
constexpr char kRetryAfterPrefix[] = " [retry-after-ms=";

using net::NowMs;

}  // namespace

Status MarkRetryable(Status s) {
  if (s.ok() || IsRetryableLlmError(s)) return s;
  return Status(s.code(), s.message() + kRetryableMarker);
}

Status WithRetryAfterMs(Status s, int64_t ms) {
  if (s.ok() || ms < 0) return s;
  return Status(s.code(),
                s.message() + kRetryAfterPrefix + std::to_string(ms) + "]");
}

bool IsRetryableLlmError(const Status& s) {
  return !s.ok() && s.message().find(kRetryableMarker) != std::string::npos;
}

int64_t RetryAfterMs(const Status& s) {
  size_t pos = s.message().find(kRetryAfterPrefix);
  if (pos == std::string::npos) return -1;
  const char* start =
      s.message().c_str() + pos + std::strlen(kRetryAfterPrefix);
  char* end = nullptr;
  long long v = std::strtoll(start, &end, 10);
  if (end == start || *end != ']' || v < 0) return -1;
  return static_cast<int64_t>(v);
}

HttpLlm::HttpLlm(HttpLlmOptions options)
    : options_(std::move(options)),
      name_(options_.display_name.empty() ? options_.wire_model
                                          : options_.display_name) {}

Result<HttpLlm::HttpResponse> HttpLlm::PostJson(
    const std::string& path, const std::string& body) const {
  const std::string port_str = std::to_string(options_.port);
  const std::string where = options_.host + ":" + port_str + path;
  const int64_t io_deadline = NowMs() + options_.io_timeout_ms;

  // Resolve + connect with its own (shorter) budget. Connection failures
  // are retryable: the server may be restarting behind a balancer.
  Result<net::Fd> connected =
      net::ConnectTcp(options_.host, options_.port, options_.connect_timeout_ms);
  if (!connected.ok()) {
    return MarkRetryable(Status::LlmError(
        "http: connect to " + where + " failed: " +
        connected.status().message()));
  }
  net::Fd fd = std::move(connected).value();

  // Request. Connection: close keeps the protocol read-to-EOF simple and
  // makes each round trip independent under concurrent dispatch.
  const std::string request = net::BuildHttpPost(
      options_.host + ":" + port_str, path, body);
  Status sent = net::SendAll(fd.get(), request, io_deadline);
  if (!sent.ok()) {
    return MarkRetryable(Status::LlmError("http: send to " + where +
                                          " failed: " + sent.message()));
  }

  // The net layer classifies read failures for us: kIoError is transport
  // trouble — timeout, connection died before the headers, or a body
  // truncated at EOF short of Content-Length (the peer died mid-write;
  // such a short read must surface as a retryable connection fault, never
  // reach the JSON parser as a "malformed body" decode error). kParseError
  // is a deterministic protocol violation (garbage status line or
  // Content-Length) that retries cannot fix.
  Result<net::HttpResponseMessage> message =
      net::ReadHttpResponse(fd.get(), io_deadline);
  if (!message.ok()) {
    if (message.status().code() == StatusCode::kParseError) {
      return Status::LlmError("http: protocol violation from " + where + ": " +
                              message.status().message());
    }
    return MarkRetryable(Status::LlmError("http: " + where + ": " +
                                          message.status().message()));
  }

  HttpResponse resp;
  resp.status_code = message.value().status_code;
  resp.body = std::move(message.value().body);
  std::string retry_after;
  if (net::FindHeader(message.value().headers, "Retry-After-Ms",
                      &retry_after)) {
    resp.retry_after_ms = std::strtoll(retry_after.c_str(), nullptr, 10);
  } else if (net::FindHeader(message.value().headers, "Retry-After",
                             &retry_after)) {
    // Standard header is in seconds.
    resp.retry_after_ms = 1000 * std::strtoll(retry_after.c_str(), nullptr, 10);
  }
  return resp;
}

Status HttpLlm::HttpError(const std::string& path,
                          const HttpResponse& resp) const {
  std::string detail;
  auto parsed = Json::Parse(resp.body);
  if (parsed.ok()) {
    detail = parsed.value()["error"].GetString("message");
  }
  Status s = Status::LlmError(
      "http: " + name_ + path + " returned " +
      std::to_string(resp.status_code) +
      (detail.empty() ? "" : (" (" + detail + ")")));
  if (resp.status_code == 429 || resp.status_code >= 500) {
    s = WithRetryAfterMs(MarkRetryable(std::move(s)), resp.retry_after_ms);
  }
  return s;
}

void HttpLlm::Bill(int64_t prompts, int64_t prompt_tokens,
                   int64_t completion_tokens, double latency_ms,
                   bool as_batch, CostMeter* usage) {
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.num_prompts += prompts;
    cost_.prompt_tokens += prompt_tokens;
    cost_.completion_tokens += completion_tokens;
    cost_.simulated_latency_ms += latency_ms;
    if (as_batch) ++cost_.num_batches;
  }
  if (usage != nullptr) {
    CostMeter delta;
    delta.num_prompts = prompts;
    delta.prompt_tokens = prompt_tokens;
    delta.completion_tokens = completion_tokens;
    delta.simulated_latency_ms = latency_ms;
    delta.num_batches = as_batch ? 1 : 0;
    delta.FillSelfSlice(name_);
    *usage += delta;
  }
}

Result<Completion> HttpLlm::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> HttpLlm::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> HttpLlm::CompleteMetered(const Prompt& prompt,
                                            CostMeter* usage) {
  const int64_t start_ms = NowMs();
  const std::string body =
      BuildChatRequest(options_.wire_model, prompt).Dump();
  GALOIS_ASSIGN_OR_RETURN(HttpResponse resp,
                          PostJson(options_.chat_path, body));
  if (resp.status_code != 200) {
    return HttpError(options_.chat_path, resp);
  }
  auto parsed = Json::Parse(resp.body);
  if (!parsed.ok()) {
    // Deliberately NOT retryable: a 200 with undecodable JSON is a
    // deterministic protocol bug, and retries would mask it.
    return Status::LlmError("http: malformed response JSON from " + name_ +
                            ": " + parsed.status().message());
  }
  GALOIS_ASSIGN_OR_RETURN(WireCompletion wire,
                          ParseChatResponse(parsed.value()));
  if (wire.usage.prompt_tokens == 0) {
    wire.usage.prompt_tokens = CountTokens(prompt.text);
  }
  if (wire.usage.completion_tokens == 0) {
    wire.usage.completion_tokens = CountTokens(wire.completion.text);
  }
  Bill(1, wire.usage.prompt_tokens, wire.usage.completion_tokens,
       wire.usage.latency_ms > 0.0
           ? wire.usage.latency_ms
           : static_cast<double>(NowMs() - start_ms),
       /*as_batch=*/false, usage);
  return wire.completion;
}

Result<std::vector<Completion>> HttpLlm::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (prompts.empty()) return std::vector<Completion>{};
  const int64_t start_ms = NowMs();
  const std::string body =
      BuildBatchRequest(options_.wire_model, prompts).Dump();
  GALOIS_ASSIGN_OR_RETURN(HttpResponse resp,
                          PostJson(options_.batch_path, body));
  if (resp.status_code != 200) {
    return HttpError(options_.batch_path, resp);
  }
  auto parsed = Json::Parse(resp.body);
  if (!parsed.ok()) {
    return Status::LlmError("http: malformed response JSON from " + name_ +
                            ": " + parsed.status().message());
  }
  // ParseBatchResponse reassembles out-of-order replies by index and
  // rejects missing/duplicate entries — on any error nothing is returned
  // (no partial completions), per the CompleteBatch contract.
  GALOIS_ASSIGN_OR_RETURN(auto reassembled,
                          ParseBatchResponse(parsed.value(), prompts.size()));
  auto& [completions, wire_usage] = reassembled;
  if (wire_usage.prompt_tokens == 0) {
    for (const Prompt& p : prompts) {
      wire_usage.prompt_tokens += CountTokens(p.text);
    }
  }
  if (wire_usage.completion_tokens == 0) {
    for (const Completion& c : completions) {
      wire_usage.completion_tokens += CountTokens(c.text);
    }
  }
  Bill(static_cast<int64_t>(prompts.size()), wire_usage.prompt_tokens,
       wire_usage.completion_tokens,
       wire_usage.latency_ms > 0.0
           ? wire_usage.latency_ms
           : static_cast<double>(NowMs() - start_ms),
       /*as_batch=*/true, usage);
  return std::move(completions);
}

CostMeter HttpLlm::cost() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  CostMeter out = cost_;
  out.FillSelfSlice(name_);
  return out;
}

void HttpLlm::ResetCost() {
  std::lock_guard<std::mutex> lock(cost_mu_);
  cost_.Reset();
}

}  // namespace galois::llm
