#include "llm/http_llm.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/json.h"
#include "common/strings.h"
#include "llm/prompt_json.h"

namespace galois::llm {

namespace {

constexpr char kRetryableMarker[] = " [retryable]";
constexpr char kRetryAfterPrefix[] = " [retry-after-ms=";

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd = -1) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) : fd_(other.release()) {}
  Fd& operator=(Fd&& other) {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.release();
    }
    return *this;
  }
  int get() const { return fd_; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

/// Waits until `fd` is ready for the poll `events` or `deadline_ms`
/// passes. Returns false on timeout.
bool WaitReady(int fd, short events, int64_t deadline_ms) {
  while (true) {
    int64_t remaining = deadline_ms - NowMs();
    if (remaining <= 0) return false;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// Case-insensitive header lookup over a raw header block; returns the
/// trimmed value of the first match.
bool FindHeader(const std::string& headers, const std::string& name,
                std::string* value) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos &&
        EqualsIgnoreCase(Trim(line.substr(0, colon)), name)) {
      *value = Trim(line.substr(colon + 1));
      return true;
    }
    pos = eol + 2;
  }
  return false;
}

}  // namespace

Status MarkRetryable(Status s) {
  if (s.ok() || IsRetryableLlmError(s)) return s;
  return Status(s.code(), s.message() + kRetryableMarker);
}

Status WithRetryAfterMs(Status s, int64_t ms) {
  if (s.ok() || ms < 0) return s;
  return Status(s.code(),
                s.message() + kRetryAfterPrefix + std::to_string(ms) + "]");
}

bool IsRetryableLlmError(const Status& s) {
  return !s.ok() && s.message().find(kRetryableMarker) != std::string::npos;
}

int64_t RetryAfterMs(const Status& s) {
  size_t pos = s.message().find(kRetryAfterPrefix);
  if (pos == std::string::npos) return -1;
  const char* start =
      s.message().c_str() + pos + std::strlen(kRetryAfterPrefix);
  char* end = nullptr;
  long long v = std::strtoll(start, &end, 10);
  if (end == start || *end != ']' || v < 0) return -1;
  return static_cast<int64_t>(v);
}

HttpLlm::HttpLlm(HttpLlmOptions options)
    : options_(std::move(options)),
      name_(options_.display_name.empty() ? options_.wire_model
                                          : options_.display_name) {}

Result<HttpLlm::HttpResponse> HttpLlm::PostJson(
    const std::string& path, const std::string& body) const {
  const std::string where =
      options_.host + ":" + std::to_string(options_.port) + path;
  const int64_t io_deadline = NowMs() + options_.io_timeout_ms;

  // Resolve + connect with its own (shorter) budget. Connection failures
  // are retryable: the server may be restarting behind a balancer.
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(options_.port);
  int rc = ::getaddrinfo(options_.host.c_str(), port_str.c_str(), &hints,
                         &addrs);
  if (rc != 0 || addrs == nullptr) {
    return MarkRetryable(
        Status::LlmError("http: cannot resolve " + where));
  }

  // Try every resolved address (getaddrinfo with AF_UNSPEC may order
  // ::1 before 127.0.0.1; an IPv4-only server must still be reachable).
  const int64_t connect_deadline = NowMs() + options_.connect_timeout_ms;
  Fd fd;
  std::string connect_error = "no addresses resolved";
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, SOCK_STREAM, 0));
    if (candidate.get() < 0) {
      connect_error = "socket() failed";
      continue;
    }
    ::fcntl(candidate.get(), F_SETFL, O_NONBLOCK);
    rc = ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      connect_error = std::strerror(errno);
      continue;
    }
    if (rc != 0) {
      if (!WaitReady(candidate.get(), POLLOUT, connect_deadline)) {
        connect_error = "timed out";
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(candidate.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        connect_error = std::strerror(err);
        continue;
      }
    }
    fd = Fd(candidate.release());
    break;
  }
  ::freeaddrinfo(addrs);
  if (fd.get() < 0) {
    return MarkRetryable(Status::LlmError(
        "http: connect to " + where + " failed: " + connect_error));
  }

  // Request. Connection: close keeps the protocol read-to-EOF simple and
  // makes each round trip independent under concurrent dispatch.
  std::string request = "POST " + path + " HTTP/1.1\r\n" +
                        "Host: " + options_.host + ":" + port_str + "\r\n" +
                        "Content-Type: application/json\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n" + "Connection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    if (!WaitReady(fd.get(), POLLOUT, io_deadline)) {
      return MarkRetryable(
          Status::LlmError("http: send to " + where + " timed out"));
    }
    ssize_t n = ::send(fd.get(), request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return MarkRetryable(Status::LlmError(
          "http: send to " + where + " failed: " + std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  // Read the full response (headers, then Content-Length bytes or EOF).
  std::string raw;
  char buf[4096];
  size_t header_end = std::string::npos;
  int64_t content_length = -1;
  while (true) {
    if (header_end != std::string::npos && content_length >= 0 &&
        raw.size() >= header_end + 4 + static_cast<size_t>(content_length)) {
      break;
    }
    if (!WaitReady(fd.get(), POLLIN, io_deadline)) {
      return MarkRetryable(
          Status::LlmError("http: read from " + where + " timed out"));
    }
    ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return MarkRetryable(Status::LlmError(
          "http: read from " + where + " failed: " + std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    raw.append(buf, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::string cl;
        if (FindHeader(raw.substr(0, header_end), "Content-Length", &cl)) {
          content_length = std::strtoll(cl.c_str(), nullptr, 10);
        }
      }
    }
  }
  if (header_end == std::string::npos) {
    return MarkRetryable(Status::LlmError(
        "http: connection to " + where + " closed before headers"));
  }

  const std::string headers = raw.substr(0, header_end);
  HttpResponse resp;
  resp.body = raw.substr(header_end + 4);
  if (content_length >= 0 &&
      resp.body.size() < static_cast<size_t>(content_length)) {
    // Truncated body: a connection-level fault (the peer died mid-write),
    // not a decode bug — retryable.
    return MarkRetryable(Status::LlmError(
        "http: truncated response from " + where + " (" +
        std::to_string(resp.body.size()) + " of " +
        std::to_string(content_length) + " bytes)"));
  }
  if (content_length >= 0) {
    resp.body.resize(static_cast<size_t>(content_length));
  }

  // "HTTP/1.1 200 OK"
  size_t sp = headers.find(' ');
  if (headers.compare(0, 5, "HTTP/") != 0 || sp == std::string::npos) {
    return MarkRetryable(
        Status::LlmError("http: malformed status line from " + where));
  }
  resp.status_code = std::atoi(headers.c_str() + sp + 1);

  std::string retry_after;
  if (FindHeader(headers, "Retry-After-Ms", &retry_after)) {
    resp.retry_after_ms = std::strtoll(retry_after.c_str(), nullptr, 10);
  } else if (FindHeader(headers, "Retry-After", &retry_after)) {
    // Standard header is in seconds.
    resp.retry_after_ms = 1000 * std::strtoll(retry_after.c_str(), nullptr, 10);
  }
  return resp;
}

Status HttpLlm::HttpError(const std::string& path,
                          const HttpResponse& resp) const {
  std::string detail;
  auto parsed = Json::Parse(resp.body);
  if (parsed.ok()) {
    detail = parsed.value()["error"].GetString("message");
  }
  Status s = Status::LlmError(
      "http: " + name_ + path + " returned " +
      std::to_string(resp.status_code) +
      (detail.empty() ? "" : (" (" + detail + ")")));
  if (resp.status_code == 429 || resp.status_code >= 500) {
    s = WithRetryAfterMs(MarkRetryable(std::move(s)), resp.retry_after_ms);
  }
  return s;
}

void HttpLlm::Bill(int64_t prompts, int64_t prompt_tokens,
                   int64_t completion_tokens, double latency_ms,
                   bool as_batch, CostMeter* usage) {
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.num_prompts += prompts;
    cost_.prompt_tokens += prompt_tokens;
    cost_.completion_tokens += completion_tokens;
    cost_.simulated_latency_ms += latency_ms;
    if (as_batch) ++cost_.num_batches;
  }
  if (usage != nullptr) {
    CostMeter delta;
    delta.num_prompts = prompts;
    delta.prompt_tokens = prompt_tokens;
    delta.completion_tokens = completion_tokens;
    delta.simulated_latency_ms = latency_ms;
    delta.num_batches = as_batch ? 1 : 0;
    delta.FillSelfSlice(name_);
    *usage += delta;
  }
}

Result<Completion> HttpLlm::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> HttpLlm::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> HttpLlm::CompleteMetered(const Prompt& prompt,
                                            CostMeter* usage) {
  const int64_t start_ms = NowMs();
  const std::string body =
      BuildChatRequest(options_.wire_model, prompt).Dump();
  GALOIS_ASSIGN_OR_RETURN(HttpResponse resp,
                          PostJson(options_.chat_path, body));
  if (resp.status_code != 200) {
    return HttpError(options_.chat_path, resp);
  }
  auto parsed = Json::Parse(resp.body);
  if (!parsed.ok()) {
    // Deliberately NOT retryable: a 200 with undecodable JSON is a
    // deterministic protocol bug, and retries would mask it.
    return Status::LlmError("http: malformed response JSON from " + name_ +
                            ": " + parsed.status().message());
  }
  GALOIS_ASSIGN_OR_RETURN(WireCompletion wire,
                          ParseChatResponse(parsed.value()));
  if (wire.usage.prompt_tokens == 0) {
    wire.usage.prompt_tokens = CountTokens(prompt.text);
  }
  if (wire.usage.completion_tokens == 0) {
    wire.usage.completion_tokens = CountTokens(wire.completion.text);
  }
  Bill(1, wire.usage.prompt_tokens, wire.usage.completion_tokens,
       wire.usage.latency_ms > 0.0
           ? wire.usage.latency_ms
           : static_cast<double>(NowMs() - start_ms),
       /*as_batch=*/false, usage);
  return wire.completion;
}

Result<std::vector<Completion>> HttpLlm::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (prompts.empty()) return std::vector<Completion>{};
  const int64_t start_ms = NowMs();
  const std::string body =
      BuildBatchRequest(options_.wire_model, prompts).Dump();
  GALOIS_ASSIGN_OR_RETURN(HttpResponse resp,
                          PostJson(options_.batch_path, body));
  if (resp.status_code != 200) {
    return HttpError(options_.batch_path, resp);
  }
  auto parsed = Json::Parse(resp.body);
  if (!parsed.ok()) {
    return Status::LlmError("http: malformed response JSON from " + name_ +
                            ": " + parsed.status().message());
  }
  // ParseBatchResponse reassembles out-of-order replies by index and
  // rejects missing/duplicate entries — on any error nothing is returned
  // (no partial completions), per the CompleteBatch contract.
  GALOIS_ASSIGN_OR_RETURN(auto reassembled,
                          ParseBatchResponse(parsed.value(), prompts.size()));
  auto& [completions, wire_usage] = reassembled;
  if (wire_usage.prompt_tokens == 0) {
    for (const Prompt& p : prompts) {
      wire_usage.prompt_tokens += CountTokens(p.text);
    }
  }
  if (wire_usage.completion_tokens == 0) {
    for (const Completion& c : completions) {
      wire_usage.completion_tokens += CountTokens(c.text);
    }
  }
  Bill(static_cast<int64_t>(prompts.size()), wire_usage.prompt_tokens,
       wire_usage.completion_tokens,
       wire_usage.latency_ms > 0.0
           ? wire_usage.latency_ms
           : static_cast<double>(NowMs() - start_ms),
       /*as_batch=*/true, usage);
  return std::move(completions);
}

CostMeter HttpLlm::cost() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  CostMeter out = cost_;
  out.FillSelfSlice(name_);
  return out;
}

void HttpLlm::ResetCost() {
  std::lock_guard<std::mutex> lock(cost_mu_);
  cost_.Reset();
}

}  // namespace galois::llm
