#include "llm/simulated_llm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "engine/executor.h"
#include "engine/expr_eval.h"
#include "sql/parser.h"

namespace galois::llm {

namespace {

using knowledge::Entity;
using knowledge::EntitySet;
using knowledge::WorldKb;

/// Renders an int with thousands separators: 1234567 -> "1,234,567".
std::string WithSeparators(int64_t v) {
  std::string digits = std::to_string(std::llabs(v));
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.insert(out.begin(), ',');
    out.insert(out.begin(), *it);
    ++count;
  }
  if (v < 0) out.insert(out.begin(), '-');
  return out;
}

/// Compact "k / M" rendering: 1200 -> "1.2k", 3000000 -> "3M".
std::string Compact(double v) {
  auto fmt = [](double x, const char* suffix) {
    double rounded = std::round(x * 10.0) / 10.0;
    std::ostringstream os;
    if (rounded == std::floor(rounded)) {
      os << static_cast<int64_t>(rounded) << suffix;
    } else {
      os << rounded << suffix;
    }
    return os.str();
  };
  double a = std::fabs(v);
  if (a >= 1e9) return fmt(v / 1e9, "B");
  if (a >= 1e6) return fmt(v / 1e6, "M");
  if (a >= 1e3) return fmt(v / 1e3, "k");
  std::ostringstream os;
  os << v;
  return os.str();
}

/// "3 million" style for round numbers; falls back to compact.
std::string Worded(double v) {
  double a = std::fabs(v);
  if (a >= 1e6 && std::fmod(a, 1e5) == 0.0) {
    double m = v / 1e6;
    std::ostringstream os;
    if (m == std::floor(m)) {
      os << static_cast<int64_t>(m) << " million";
    } else {
      os << m << " million";
    }
    return os.str();
  }
  if (a >= 1e3 && std::fmod(a, 1e3) == 0.0 && a < 1e6) {
    std::ostringstream os;
    os << static_cast<int64_t>(v / 1e3) << " thousand";
    return os.str();
  }
  return Compact(v);
}

const char* kMonthNames[] = {"January",   "February", "March",    "April",
                             "May",       "June",     "July",     "August",
                             "September", "October",  "November", "December"};

}  // namespace

SimulatedLlm::SimulatedLlm(const WorldKb* kb, ModelProfile profile,
                           const catalog::Catalog* ground_catalog,
                           uint64_t seed)
    : kb_(kb),
      profile_(std::move(profile)),
      ground_catalog_(ground_catalog),
      seed_(seed ^ Rng::HashString(profile_.name)) {}

double SimulatedLlm::Draw(const std::string& purpose, const std::string& a,
                          const std::string& b, const std::string& c) const {
  uint64_t h = seed_;
  h ^= Rng::HashString(purpose) * 0x9E3779B97F4A7C15ULL;
  h ^= Rng::HashString(a) * 0xC2B2AE3D27D4EB4FULL;
  h ^= Rng::HashString(b) * 0x165667B19E3779F9ULL;
  h ^= Rng::HashString(c) * 0x27D4EB2F165667C5ULL;
  Rng rng(h);
  return rng.NextDouble();
}

bool SimulatedLlm::KnowsEntity(const std::string& concept_name,
                               const std::string& key) const {
  const EntitySet* set = kb_->FindConcept(concept_name);
  if (set == nullptr) return false;
  const Entity* e = set->FindEntity(key);
  if (e == nullptr) return false;
  double p_known = std::clamp(
      profile_.coverage_floor + profile_.coverage_gain * e->popularity, 0.0,
      1.0);
  return Draw("know", concept_name, e->key) < p_known;
}

std::vector<const Entity*> SimulatedLlm::KnownEntities(
    const std::string& concept_name) const {
  std::vector<const Entity*> out;
  const EntitySet* set = kb_->FindConcept(concept_name);
  if (set == nullptr) return out;
  for (const Entity& e : set->entities) {
    if (KnowsEntity(concept_name, e.key)) out.push_back(&e);
  }
  // Most popular first: "the default semantics for the LLM is to pick the
  // most popular interpretation" — scans surface popular entities first.
  std::stable_sort(out.begin(), out.end(),
                   [](const Entity* a, const Entity* b) {
                     if (a->popularity != b->popularity) {
                       return a->popularity > b->popularity;
                     }
                     return a->key < b->key;
                   });
  return out;
}

Result<Value> SimulatedLlm::NoisyAttribute(const std::string& concept_name,
                                           const std::string& key,
                                           const std::string& attribute)
    const {
  if (!KnowsEntity(concept_name, key)) {
    // "LLMs do not know what they know" (Section 3): with some
    // probability the model answers confidently about an entity it has no
    // reliable knowledge of, fabricating a value borrowed from a similar
    // entity. Otherwise it answers "Unknown".
    if (Draw("fake-conf", concept_name, key, attribute) >=
        profile_.fake_entity_confidence) {
      return Value::Null();
    }
    const EntitySet* pool = kb_->FindConcept(concept_name);
    if (pool == nullptr || pool->entities.empty()) return Value::Null();
    size_t idx = static_cast<size_t>(
        Draw("fake-src", concept_name, key, attribute) *
        static_cast<double>(pool->entities.size()));
    idx = std::min(idx, pool->entities.size() - 1);
    const Value* v =
        pool->entities[idx].FindAttribute(ToLower(attribute));
    if (v == nullptr) return Value::Null();
    return *v;
  }
  if (Draw("unknown", concept_name, key, attribute) < profile_.unknown_rate) {
    return Value::Null();
  }
  GALOIS_ASSIGN_OR_RETURN(
      Value truth, kb_->GetAttribute(concept_name, key, ToLower(attribute)));
  // Numeric magnitudes are recalled less reliably than names/years.
  double recall_accuracy = profile_.fact_accuracy;
  if (IsNumeric(truth.type()) && !ContainsIgnoreCase(attribute, "year")) {
    recall_accuracy = profile_.numeric_fact_accuracy;
  }
  if (Draw("fact", concept_name, key, attribute) < recall_accuracy) {
    return truth;
  }
  // Stable hallucination: the same wrong value on every prompt.
  double u = Draw("perturb", concept_name, key, attribute);
  switch (truth.type()) {
    case DataType::kInt64:
    case DataType::kDouble: {
      GALOIS_ASSIGN_OR_RETURN(double d, truth.AsDouble());
      double sign = Draw("perturb-sign", concept_name, key, attribute) < 0.5
                        ? -1.0
                        : 1.0;
      // Calendar years drift by a few years; magnitudes scale
      // multiplicatively. A 20%-scaled year would be nonsense no model
      // produces.
      if (ContainsIgnoreCase(attribute, "year")) {
        int shift = 1 + static_cast<int>(u * 4.0);
        return Value::Int(static_cast<int64_t>(d) +
                          static_cast<int64_t>(sign * shift));
      }
      double mag = 0.1 + u * (profile_.numeric_error_scale - 0.1);
      double wrong = d * (1.0 + sign * mag);
      if (truth.type() == DataType::kInt64) {
        return Value::Int(static_cast<int64_t>(std::llround(wrong)));
      }
      return Value::Double(wrong);
    }
    case DataType::kDate: {
      int y, m, d;
      UnpackDate(truth.date_packed(), &y, &m, &d);
      int shift = 1 + static_cast<int>(u * 3.0);
      if (Draw("perturb-sign", concept_name, key, attribute) < 0.5) {
        shift = -shift;
      }
      return Value::Date(y + shift, m, d);
    }
    case DataType::kBool:
      return Value::Bool(!truth.bool_value());
    case DataType::kString: {
      // Entity confusion: answer with another entity's value for the same
      // attribute (classic LLM mixup).
      std::string ref = WorldKb::ReferencedConcept(concept_name, attribute);
      const EntitySet* pool = kb_->FindConcept(ref.empty() ? concept_name : ref);
      if (pool != nullptr && pool->entities.size() > 1) {
        size_t idx = static_cast<size_t>(u * pool->entities.size());
        idx = std::min(idx, pool->entities.size() - 1);
        const Entity& other = pool->entities[idx];
        if (!ref.empty()) {
          if (other.key != truth.string_value()) {
            return Value::String(other.key);
          }
          const Entity& next =
              pool->entities[(idx + 1) % pool->entities.size()];
          return Value::String(next.key);
        }
        const Value* alt = other.FindAttribute(ToLower(attribute));
        if (alt != nullptr && !alt->is_null() &&
            alt->type() == DataType::kString &&
            alt->string_value() != truth.string_value()) {
          return *alt;
        }
      }
      return truth;  // nothing plausible to confuse with
    }
    default:
      return truth;
  }
}

bool SimulatedLlm::UsesNonCanonicalStyle(const std::string& concept_name,
                                         const std::string& attribute) const {
  if (WorldKb::ReferencedConcept(concept_name, attribute).empty()) return false;
  return Draw("style", concept_name, attribute) < profile_.reference_style_noise;
}

std::string SimulatedLlm::RenderValue(const std::string& concept_name,
                                      const std::string& attribute,
                                      const Value& v,
                                      const std::string& key) const {
  if (v.is_null()) return "Unknown";
  switch (v.type()) {
    case DataType::kString: {
      if (!concept_name.empty() && UsesNonCanonicalStyle(concept_name, attribute)) {
        std::string ref = WorldKb::ReferencedConcept(concept_name, attribute);
        std::vector<std::string> forms =
            kb_->SurfaceForms(ref, v.string_value());
        if (forms.size() > 1) {
          // The style index is fixed per (model, concept_name, attribute), so a
          // whole retrieved column uses the same non-canonical form.
          size_t idx = 1 + static_cast<size_t>(
                               Draw("style-idx", concept_name, attribute) *
                               static_cast<double>(forms.size() - 1));
          idx = std::min(idx, forms.size() - 1);
          return forms[idx];
        }
      }
      return v.string_value();
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      double fmt_draw = Draw("format", concept_name, attribute, key);
      if (fmt_draw >= profile_.value_format_noise) return v.ToString();
      double variant = Draw("format-variant", concept_name, attribute, key);
      double d = v.AsDouble().value_or(0.0);
      if (variant < 0.3 && v.type() == DataType::kInt64) {
        return WithSeparators(v.int_value());
      }
      if (variant < 0.6) return Compact(d);
      if (variant < 0.85) return Worded(d);
      return "about " + v.ToString();
    }
    case DataType::kDate: {
      int y, m, d;
      UnpackDate(v.date_packed(), &y, &m, &d);
      m = std::clamp(m, 1, 12);
      double fmt_draw = Draw("format", concept_name, attribute, key);
      if (fmt_draw >= profile_.value_format_noise) return v.ToString();
      double variant = Draw("format-variant", concept_name, attribute, key);
      std::ostringstream os;
      if (variant < 0.45) {
        os << kMonthNames[m - 1] << " " << d << ", " << y;
      } else if (variant < 0.8) {
        os << d << " " << kMonthNames[m - 1] << " " << y;
      } else {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", d, m, y);
        os << buf;
      }
      return os.str();
    }
    default:
      return v.ToString();
  }
}

int SimulatedLlm::ScanStopPage(const std::string& concept_name) const {
  for (int page = 1; page < 1000; ++page) {
    if (Draw("fatigue", concept_name, std::to_string(page)) <
        profile_.paging_fatigue) {
      return page;
    }
  }
  return 1000;
}

Result<int> SimulatedLlm::NoisyFilterHolds(const std::string& concept_name,
                                           const std::string& key,
                                           const PromptFilter& filter,
                                           double extra_error,
                                           const std::string& purpose) const {
  GALOIS_ASSIGN_OR_RETURN(Value noisy,
                          NoisyAttribute(concept_name, key, filter.attribute));
  if (noisy.is_null()) return -1;
  bool holds = false;
  const std::string& op = filter.op;
  if (op == "LIKE") {
    if (noisy.type() != DataType::kString ||
        filter.value.type() != DataType::kString) {
      return -1;
    }
    holds = engine::LikeMatch(noisy.string_value(),
                              filter.value.string_value());
  } else {
    int cmp = noisy.Compare(filter.value);
    if (op == "=") {
      holds = cmp == 0;
      // String equality: the model compares meanings, not bytes; be
      // case-insensitive like a human reader.
      if (!holds && noisy.type() == DataType::kString &&
          filter.value.type() == DataType::kString) {
        holds = EqualsIgnoreCase(noisy.string_value(),
                                 filter.value.string_value());
      }
    } else if (op == "!=") {
      holds = cmp != 0;
    } else if (op == "<") {
      holds = cmp < 0;
    } else if (op == "<=") {
      holds = cmp <= 0;
    } else if (op == ">") {
      holds = cmp > 0;
    } else if (op == ">=") {
      holds = cmp >= 0;
    } else {
      return Status::LlmError("unsupported filter operator '" + op + "'");
    }
  }
  if (Draw(purpose, concept_name, key,
           filter.attribute + filter.op + filter.value.ToString()) <
      extra_error) {
    holds = !holds;
  }
  return holds ? 1 : 0;
}

double SimulatedLlm::PromptLatencyMs(
    const Prompt& prompt, const std::string& completion_text) const {
  // Deterministic jitter in [0.9, 1.1), seeded by the prompt text alone so
  // the meter is independent of round-trip ordering (and hence identical
  // for sequential and concurrent dispatch).
  double jitter = 0.9 + 0.2 * Draw("latency", prompt.text.substr(0, 64));
  int64_t ct = CountTokens(completion_text);
  return (profile_.latency_ms_base +
          profile_.latency_ms_per_token * static_cast<double>(ct)) *
         jitter;
}

void SimulatedLlm::SimulateRoundTripWait() const {
  if (wall_latency_ms_ <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(wall_latency_ms_));
}

Result<Completion> SimulatedLlm::Answer(const Prompt& prompt) const {
  if (const auto* scan = std::get_if<KeyScanIntent>(&prompt.intent)) {
    return CompleteKeyScan(*scan);
  }
  if (const auto* get = std::get_if<AttributeGetIntent>(&prompt.intent)) {
    return CompleteAttributeGet(*get);
  }
  if (const auto* check = std::get_if<FilterCheckIntent>(&prompt.intent)) {
    return CompleteFilterCheck(*check);
  }
  if (const auto* freeform = std::get_if<FreeformIntent>(&prompt.intent)) {
    return CompleteFreeform(*freeform);
  }
  if (const auto* verify = std::get_if<VerifyIntent>(&prompt.intent)) {
    return CompleteVerify(*verify);
  }
  return Status::LlmError("unhandled prompt intent");
}

Result<Completion> SimulatedLlm::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> SimulatedLlm::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> SimulatedLlm::CompleteMetered(const Prompt& prompt,
                                                 CostMeter* usage) {
  GALOIS_ASSIGN_OR_RETURN(Completion c, Answer(prompt));
  CostMeter delta;
  delta.num_prompts = 1;
  delta.prompt_tokens = CountTokens(prompt.text);
  delta.completion_tokens = CountTokens(c.text);
  delta.simulated_latency_ms = PromptLatencyMs(prompt, c.text);
  Bill(delta, usage);
  SimulateRoundTripWait();
  return c;
}

Result<std::vector<Completion>> SimulatedLlm::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (prompts.empty()) return std::vector<Completion>{};
  // Answer the prompts individually (same completions, full token
  // billing), but charge the overlapped latency of one round trip: a
  // batch pays one base overhead plus the *maximum* decode time instead
  // of the sum. All meter fields are applied in one locked update so
  // concurrent batches never observe a half-billed round trip.
  std::vector<Completion> out;
  out.reserve(prompts.size());
  CostMeter delta;
  double max_single = 0.0;
  for (const Prompt& p : prompts) {
    GALOIS_ASSIGN_OR_RETURN(Completion c, Answer(p));
    delta.prompt_tokens += CountTokens(p.text);
    delta.completion_tokens += CountTokens(c.text);
    max_single = std::max(max_single, PromptLatencyMs(p, c.text));
    out.push_back(std::move(c));
  }
  delta.num_prompts = static_cast<int64_t>(prompts.size());
  delta.simulated_latency_ms = profile_.latency_ms_base + max_single;
  delta.num_batches = 1;
  Bill(delta, usage);
  SimulateRoundTripWait();
  return out;
}

void SimulatedLlm::Bill(const CostMeter& delta, CostMeter* usage) {
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.num_prompts += delta.num_prompts;
    cost_.prompt_tokens += delta.prompt_tokens;
    cost_.completion_tokens += delta.completion_tokens;
    cost_.simulated_latency_ms += delta.simulated_latency_ms;
    cost_.num_batches += delta.num_batches;
  }
  if (usage != nullptr) {
    // The caller's meter gets the per-backend slice too, so routed and
    // direct paths attribute identically (mirrors cost()).
    CostMeter reported = delta;
    reported.FillSelfSlice(profile_.name);
    *usage += reported;
  }
}

CostMeter SimulatedLlm::cost() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  CostMeter out = cost_;
  // Every concrete model reports its own by_model slice so per-backend
  // attribution works uniformly: a direct SimulatedLlm and a ModelRouter
  // routing every phase to it produce byte-identical meters.
  out.FillSelfSlice(profile_.name);
  return out;
}

void SimulatedLlm::ResetCost() {
  std::lock_guard<std::mutex> lock(cost_mu_);
  cost_.Reset();
}

Result<Completion> SimulatedLlm::CompleteKeyScan(
    const KeyScanIntent& intent) const {
  GALOIS_ASSIGN_OR_RETURN(const EntitySet* set,
                          kb_->GetConcept(intent.concept_name));
  (void)set;
  std::vector<const Entity*> known = KnownEntities(intent.concept_name);
  // Pushed-down filter: the model filters with its own noisy values plus
  // the extra pushdown error.
  std::vector<const Entity*> surfaced;
  if (intent.filter.has_value()) {
    for (const Entity* e : known) {
      GALOIS_ASSIGN_OR_RETURN(
          int holds, NoisyFilterHolds(intent.concept_name, e->key,
                                      *intent.filter,
                                      profile_.pushdown_error,
                                      "pushdown"));
      if (holds == 1) surfaced.push_back(e);
    }
  } else {
    surfaced = std::move(known);
  }
  int stop_page = ScanStopPage(intent.concept_name);
  if (intent.page >= stop_page) {
    return Completion{"No more results."};
  }
  size_t begin = static_cast<size_t>(intent.page) *
                 static_cast<size_t>(profile_.page_size);
  if (begin >= surfaced.size()) {
    return Completion{"No more results."};
  }
  size_t end = std::min(surfaced.size(),
                        begin + static_cast<size_t>(profile_.page_size));
  std::vector<std::string> keys;
  keys.reserve(end - begin + 1);
  for (size_t i = begin; i < end; ++i) keys.push_back(surfaced[i]->key);
  // Hallucinated extra key, deterministically per (concept_name, page).
  std::string page_label = std::to_string(intent.page);
  if (Draw("hallucinate", intent.concept_name, page_label) <
      profile_.hallucinated_key_rate && !surfaced.empty()) {
    size_t src = static_cast<size_t>(
        Draw("hallucinate-src", intent.concept_name, page_label) *
        static_cast<double>(surfaced.size()));
    src = std::min(src, surfaced.size() - 1);
    std::string fake = "New " + surfaced[src]->key;
    if (!StartsWith(surfaced[src]->key, "New ")) keys.push_back(fake);
  }
  return Completion{Join(keys, ", ")};
}

Result<Completion> SimulatedLlm::CompleteAttributeGet(
    const AttributeGetIntent& intent) const {
  GALOIS_ASSIGN_OR_RETURN(
      Value noisy, NoisyAttribute(intent.concept_name, intent.key,
                                  intent.attribute));
  if (noisy.is_null()) return Completion{"Unknown"};
  std::string rendered =
      RenderValue(intent.concept_name, intent.attribute, noisy, intent.key);
  if (Draw("verbose", intent.concept_name, intent.key, intent.attribute) <
      profile_.verbosity) {
    std::string attr = intent.attribute_description.empty()
                           ? HumanizeIdentifier(intent.attribute)
                           : intent.attribute_description;
    return Completion{"The " + attr + " of " + intent.key + " is " +
                      rendered + "."};
  }
  return Completion{rendered};
}

Result<Completion> SimulatedLlm::CompleteFilterCheck(
    const FilterCheckIntent& intent) const {
  GALOIS_ASSIGN_OR_RETURN(
      int holds,
      NoisyFilterHolds(intent.concept_name, intent.key, intent.filter,
                       profile_.filter_check_error, "filter-check"));
  if (holds < 0) return Completion{"Unknown"};
  return Completion{holds == 1 ? "Yes." : "No."};
}

Result<Completion> SimulatedLlm::CompleteVerify(
    const VerifyIntent& intent) const {
  // An entity that does not exist in the world at all (a hallucinated
  // scan key like "New Italy") is recognised as bogus by a competent
  // critic; an entity that exists but that this model has no reliable
  // knowledge of draws an honest "Unknown".
  const EntitySet* set = kb_->FindConcept(intent.concept_name);
  const Entity* entity =
      set == nullptr ? nullptr : set->FindEntity(intent.key);
  if (entity == nullptr) {
    bool correct = Draw("verify-exists", intent.concept_name, intent.key,
                        intent.attribute) < profile_.verifier_accuracy;
    return Completion{correct ? "No." : "Yes."};
  }
  if (!KnowsEntity(intent.concept_name, intent.key)) {
    return Completion{"Unknown"};
  }
  auto truth = kb_->GetAttribute(intent.concept_name, intent.key,
                                 ToLower(intent.attribute));
  if (!truth.ok()) return Completion{"Unknown"};
  // Does the claim actually hold? Numerics within the 5% tolerance a
  // reader would apply; strings case-insensitively.
  bool claim_true = false;
  if (intent.claimed.is_null()) {
    claim_true = truth.value().is_null();
  } else if (IsNumeric(truth.value().type()) &&
             IsNumeric(intent.claimed.type())) {
    double t = truth.value().AsDouble().value_or(0.0);
    double c = intent.claimed.AsDouble().value_or(0.0);
    claim_true = t == 0.0 ? c == 0.0 : std::fabs(c - t) / std::fabs(t) < 0.05;
  } else if (truth.value().type() == DataType::kString &&
             intent.claimed.type() == DataType::kString) {
    // A reader judging "is the capital of Australia Canberra, Australia?"
    // says yes: compare up to case and a disambiguating ", ..." suffix,
    // and accept any surface form of the referenced entity ("ITA" for
    // "Italy").
    auto canonical = [](const std::string& s) {
      std::string t = ToLower(Trim(s));
      size_t comma = t.find(", ");
      if (comma != std::string::npos) t = t.substr(0, comma);
      if (StartsWith(t, "the ")) t = t.substr(4);
      return t;
    };
    claim_true = canonical(truth.value().string_value()) ==
                 canonical(intent.claimed.string_value());
    if (!claim_true) {
      std::string ref = WorldKb::ReferencedConcept(intent.concept_name,
                                                   intent.attribute);
      if (!ref.empty()) {
        for (const std::string& form :
             kb_->SurfaceForms(ref, truth.value().string_value())) {
          if (canonical(form) ==
              canonical(intent.claimed.string_value())) {
            claim_true = true;
            break;
          }
        }
      }
    }
  } else {
    claim_true = truth.value() == intent.claimed;
  }
  // The critic errs asymmetrically — and independently of the generation
  // pass, which is what makes verification useful: catching a false claim
  // succeeds with verifier_accuracy, while a true claim is only rarely
  // rejected (verifier_false_reject).
  double u = Draw("verify", intent.concept_name, intent.key,
                  intent.attribute + "|" + intent.claimed.ToString());
  bool answer_yes =
      claim_true ? u >= profile_.verifier_false_reject
                 : u >= profile_.verifier_accuracy;
  return Completion{answer_yes ? "Yes." : "No."};
}

Result<Completion> SimulatedLlm::CompleteFreeform(
    const FreeformIntent& intent) const {
  if (ground_catalog_ == nullptr) {
    return Status::LlmError(
        "free-form QA requires a ground catalog for answer grounding");
  }
  GALOIS_ASSIGN_OR_RETURN(sql::SelectStatement stmt,
                          sql::ParseSelect(intent.sql));
  GALOIS_ASSIGN_OR_RETURN(Relation truth,
                          engine::ExecuteSelect(stmt, *ground_catalog_));
  bool has_aggregate = false;
  for (const auto& item : stmt.select_list) {
    if (sql::ContainsAggregate(*item.expr)) has_aggregate = true;
  }
  if (!stmt.group_by.empty()) has_aggregate = true;
  bool has_join = stmt.from.size() + stmt.joins.size() > 1;

  double recall = intent.chain_of_thought ? profile_.cot_list_recall
                                          : profile_.qa_list_recall;
  double agg_acc = intent.chain_of_thought
                       ? profile_.cot_aggregate_accuracy
                       : profile_.qa_aggregate_accuracy;
  double join_acc = intent.chain_of_thought ? profile_.cot_join_accuracy
                                            : profile_.qa_join_accuracy;

  // Per-row keep probability by query class.
  double keep_p = recall;
  if (has_join) keep_p = join_acc;

  std::ostringstream body;
  bool first_line = true;
  int emitted = 0;
  for (size_t r = 0; r < truth.NumRows(); ++r) {
    const Tuple& row = truth.row(r);
    std::string row_label = intent.sql + "#" + std::to_string(r);
    if (Draw("qa-keep", row_label, intent.chain_of_thought ? "cot" : "qa") >=
        keep_p) {
      continue;
    }
    std::vector<std::string> cells;
    for (size_t c = 0; c < row.size(); ++c) {
      const Value& v = row[c];
      bool numeric_cell = IsNumeric(v.type());
      bool agg_cell =
          has_aggregate && numeric_cell &&
          c >= (stmt.group_by.empty() ? 0 : stmt.group_by.size());
      if (agg_cell) {
        // One-shot aggregates: LLMs "fail short with complex operations to
        // combine intermediate values, such as aggregates".
        if (Draw("qa-agg", row_label, std::to_string(c)) < agg_acc) {
          cells.push_back(v.ToString());
        } else {
          double d = v.AsDouble().value_or(0.0);
          double mag = 0.1 + 0.5 * Draw("qa-agg-mag", row_label,
                                        std::to_string(c));
          double sign =
              Draw("qa-agg-sign", row_label, std::to_string(c)) < 0.5
                  ? -1.0
                  : 1.0;
          double wrong = d * (1.0 + sign * mag);
          if (v.type() == DataType::kInt64) {
            cells.push_back(
                std::to_string(static_cast<int64_t>(std::llround(wrong))));
          } else {
            cells.push_back(Value::Double(wrong).ToString());
          }
        }
      } else if (numeric_cell || v.type() == DataType::kDate) {
        // Plain value with the model's usual fact noise and formatting.
        if (Draw("qa-fact", row_label, std::to_string(c)) <
            profile_.fact_accuracy) {
          cells.push_back(RenderValue("", "", v, row_label));
        } else {
          double d = v.AsDouble().value_or(
              static_cast<double>(v.type() == DataType::kDate
                                      ? v.date_packed()
                                      : 0));
          double wrong = d * (1.0 + 0.2);
          cells.push_back(Value::Double(wrong).ToString());
        }
      } else {
        cells.push_back(v.ToString());
      }
    }
    if (!first_line) body << "\n";
    first_line = false;
    body << "- " << Join(cells, ": ");
    ++emitted;
  }
  std::string answer = emitted == 0 ? "Unknown" : body.str();
  if (intent.chain_of_thought) {
    return Completion{
        "Step 1: identify the relevant entities. Step 2: retrieve the "
        "requested properties. Step 3: combine the results.\nFinal "
        "answer:\n" +
        answer};
  }
  return Completion{answer};
}

}  // namespace galois::llm
