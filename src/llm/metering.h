#ifndef GALOIS_LLM_METERING_H_
#define GALOIS_LLM_METERING_H_

#include <mutex>
#include <string>
#include <vector>

#include "llm/language_model.h"

namespace galois::llm {

/// Per-query cost attribution decorator.
///
/// A CostTap sits on top of a (usually shared) model stack for the
/// duration of one logical query: every round trip issued through it is
/// forwarded to the inner stack via the metered API, and the usage the
/// stack reports for that call — and only that call — is accumulated
/// into the tap's own meter. cost() therefore returns exactly what
/// flowed through *this tap*, however many other taps (other concurrent
/// queries, other sessions) are billing the same stack at the same
/// moment. This is what makes `QueryResult::cost` exact under
/// concurrency, where the old snapshot-and-diff of the shared stack's
/// meter was racy.
///
/// The tap is transparent to identification (name() forwards) and adds
/// no caching, routing or policy — attribution only. ResetCost() clears
/// the tap's meter and leaves the inner stack untouched.
///
/// Thread-safety: Complete/CompleteBatch/cost may be called concurrently
/// (the pipelined executor bills one query from several phase threads);
/// the meter is guarded by a mutex and updated once per round trip.
///
/// Failed round trips add nothing to the tap even when the stack billed
/// them internally (see LanguageModel::CompleteMetered); the stack-wide
/// meter remains the source of truth for total spend.
class CostTap : public LanguageModel {
 public:
  /// `inner` must outlive the tap.
  explicit CostTap(LanguageModel* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }

  Result<Completion> Complete(const Prompt& prompt) override {
    return CompleteMetered(prompt, nullptr);
  }
  Result<std::vector<Completion>> CompleteBatch(
      const std::vector<Prompt>& prompts) override {
    return CompleteBatchMetered(prompts, nullptr);
  }

  /// Forwards to the inner stack's metered call; the reported usage is
  /// added to the tap's meter and, when `usage` is non-null, to the
  /// caller's meter too (taps compose).
  Result<Completion> CompleteMetered(const Prompt& prompt,
                                     CostMeter* usage) override;
  Result<std::vector<Completion>> CompleteBatchMetered(
      const std::vector<Prompt>& prompts, CostMeter* usage) override;

  /// Usage accumulated through this tap only.
  CostMeter cost() const override;

  /// Clears the tap's meter; the inner stack's meter is untouched.
  void ResetCost() override;

 private:
  void Record(const CostMeter& delta, CostMeter* usage);

  LanguageModel* inner_;
  mutable std::mutex mu_;
  CostMeter tapped_;  // guarded by mu_
};

}  // namespace galois::llm

#endif  // GALOIS_LLM_METERING_H_
