#include "llm/language_model.h"

#include <sstream>

namespace galois::llm {

Result<std::vector<Completion>> LanguageModel::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  std::vector<Completion> out;
  out.reserve(prompts.size());
  for (const Prompt& p : prompts) {
    GALOIS_ASSIGN_OR_RETURN(Completion c, Complete(p));
    out.push_back(std::move(c));
  }
  return out;
}

Result<Completion> LanguageModel::CompleteMetered(const Prompt& prompt,
                                                  CostMeter* usage) {
  if (usage == nullptr) return Complete(prompt);
  CostMeter before = cost();
  Result<Completion> out = Complete(prompt);
  if (out.ok()) *usage += cost() - before;
  return out;
}

Result<std::vector<Completion>> LanguageModel::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (usage == nullptr) return CompleteBatch(prompts);
  CostMeter before = cost();
  Result<std::vector<Completion>> out = CompleteBatch(prompts);
  if (out.ok()) *usage += cost() - before;
  return out;
}

int64_t CountTokens(const std::string& text) {
  std::istringstream is(text);
  std::string word;
  int64_t count = 0;
  while (is >> word) ++count;
  return count;
}

}  // namespace galois::llm
