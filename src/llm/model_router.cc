#include "llm/model_router.h"

#include <algorithm>
#include <set>

namespace galois::llm {

namespace {

const std::string kKeyScan = "key-scan";
const std::string kFilterCheck = "filter-check";
const std::string kAttribute = "attribute";
const std::string kVerify = "verify";
const std::string kFreeform = "freeform";

}  // namespace

const std::string& PhaseOfIntent(const PromptIntent& intent) {
  if (std::holds_alternative<KeyScanIntent>(intent)) return kKeyScan;
  if (std::holds_alternative<FilterCheckIntent>(intent)) return kFilterCheck;
  if (std::holds_alternative<AttributeGetIntent>(intent)) return kAttribute;
  if (std::holds_alternative<VerifyIntent>(intent)) return kVerify;
  return kFreeform;
}

const std::vector<std::string>& RoutablePhases() {
  static const std::vector<std::string>* kPhases = new std::vector<std::string>{
      kKeyScan, kFilterCheck, kAttribute, kVerify, kFreeform};
  return *kPhases;
}

ModelRouter::ModelRouter() : name_("router()") {}

Status ModelRouter::AddBackend(const std::string& backend,
                               LanguageModel* model) {
  if (backend.empty() || model == nullptr) {
    return Status::InvalidArgument("router: backend needs a name and a model");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Backend& b : backends_) {
    if (b.backend_name == backend) {
      return Status::AlreadyExists("router: backend '" + backend +
                                   "' already registered");
    }
  }
  backends_.push_back(Backend{backend, model});
  if (backends_.size() == 1) default_index_ = 0;
  name_ = "router(" + backends_[default_index_].backend_name + ")";
  return Status::OK();
}

Status ModelRouter::SetDefaultBackend(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].backend_name == backend) {
      default_index_ = i;
      name_ = "router(" + backend + ")";
      return Status::OK();
    }
  }
  return Status::NotFound("router: no backend named '" + backend + "'");
}

Status ModelRouter::SetRoute(const std::string& phase,
                             const std::string& backend) {
  // "critic" reads naturally for the verification phase; accept it as an
  // alias of the scheduler's "verify" label.
  const std::string canonical = phase == "critic" ? kVerify : phase;
  const std::vector<std::string>& phases = RoutablePhases();
  if (std::find(phases.begin(), phases.end(), canonical) == phases.end()) {
    return Status::InvalidArgument(
        "router: unknown phase '" + phase +
        "' (expected key-scan, filter-check, attribute, verify/critic or "
        "freeform)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].backend_name == backend) {
      routes_[canonical] = i;
      return Status::OK();
    }
  }
  return Status::NotFound("router: no backend named '" + backend + "'");
}

Status ModelRouter::ConfigureRoutes(
    const std::map<std::string, std::string>& routes) {
  std::map<std::string, size_t> saved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    saved = routes_;
    routes_.clear();
  }
  for (const auto& [phase, backend] : routes) {
    Status s = SetRoute(phase, backend);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      routes_ = std::move(saved);
      return s;
    }
  }
  return Status::OK();
}

void ModelRouter::ClearRoutes() {
  std::lock_guard<std::mutex> lock(mu_);
  routes_.clear();
}

std::vector<std::string> ModelRouter::backend_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const Backend& b : backends_) names.push_back(b.backend_name);
  return names;
}

std::map<std::string, std::string> ModelRouter::routes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::string> out;
  for (const auto& [phase, index] : routes_) {
    out[phase] = backends_[index].backend_name;
  }
  return out;
}

const std::string& ModelRouter::default_backend() const {
  std::lock_guard<std::mutex> lock(mu_);
  static const std::string kNone;
  return backends_.empty() ? kNone
                           : backends_[default_index_].backend_name;
}

LanguageModel* ModelRouter::BackendForLocked(
    const PromptIntent& intent) const {
  if (backends_.empty()) return nullptr;
  auto it = routes_.find(PhaseOfIntent(intent));
  if (it != routes_.end()) return backends_[it->second].model;
  return backends_[default_index_].model;
}

LanguageModel* ModelRouter::BackendFor(const PromptIntent& intent) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BackendForLocked(intent);
}

const std::string& ModelRouter::name() const {
  // No lock: the returned reference would outlive it anyway. name()
  // follows the same contract as the routing table — configure the
  // router (AddBackend/SetDefaultBackend) before issuing traffic, not
  // concurrently with it; only then is the reference stable.
  return name_;
}

Result<Completion> ModelRouter::Complete(const Prompt& prompt) {
  return CompleteMetered(prompt, nullptr);
}

Result<std::vector<Completion>> ModelRouter::CompleteBatch(
    const std::vector<Prompt>& prompts) {
  return CompleteBatchMetered(prompts, nullptr);
}

Result<Completion> ModelRouter::CompleteMetered(const Prompt& prompt,
                                                CostMeter* usage) {
  LanguageModel* backend = BackendFor(prompt.intent);
  if (backend == nullptr) {
    return Status::LlmError("router: no backends registered");
  }
  return backend->CompleteMetered(prompt, usage);
}

Result<std::vector<Completion>> ModelRouter::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  if (prompts.empty()) return std::vector<Completion>{};
  // Partition by target backend, preserving input positions. Executor
  // phases are intent-homogeneous, so the common case is one group and
  // the partition cost is a single pass.
  std::vector<LanguageModel*> target(prompts.size(), nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < prompts.size(); ++i) {
      target[i] = BackendForLocked(prompts[i].intent);
      if (target[i] == nullptr) {
        return Status::LlmError("router: no backends registered");
      }
    }
  }
  // Fast path: a homogeneous batch (the executor's phases always are)
  // forwards without copying a single prompt.
  bool homogeneous = true;
  for (size_t i = 1; i < prompts.size(); ++i) {
    if (target[i] != target[0]) {
      homogeneous = false;
      break;
    }
  }
  if (homogeneous) return target[0]->CompleteBatchMetered(prompts, usage);

  std::vector<Completion> out(prompts.size());
  std::vector<LanguageModel*> done;  // backends already dispatched
  for (size_t i = 0; i < prompts.size(); ++i) {
    LanguageModel* backend = target[i];
    if (std::find(done.begin(), done.end(), backend) != done.end()) continue;
    done.push_back(backend);
    std::vector<size_t> positions;
    std::vector<Prompt> group;
    for (size_t j = i; j < prompts.size(); ++j) {
      if (target[j] == backend) {
        positions.push_back(j);
        group.push_back(prompts[j]);
      }
    }
    // One inner round trip per backend involved. On failure the whole
    // batch fails — completions filled for an earlier backend are
    // discarded with `out`, never returned partially (though an earlier
    // backend's usage may already be reported; the executor discards the
    // query's meter on error anyway).
    GALOIS_ASSIGN_OR_RETURN(std::vector<Completion> group_out,
                            backend->CompleteBatchMetered(group, usage));
    for (size_t k = 0; k < positions.size(); ++k) {
      out[positions[k]] = std::move(group_out[k]);
    }
  }
  return out;
}

CostMeter ModelRouter::cost() const {
  std::vector<Backend> backends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    backends = backends_;
  }
  CostMeter total;
  std::set<const LanguageModel*> seen;  // aliases share one meter
  for (const Backend& b : backends) {
    if (!seen.insert(b.model).second) continue;
    CostMeter c = b.model->cost();
    total.num_prompts += c.num_prompts;
    total.prompt_tokens += c.prompt_tokens;
    total.completion_tokens += c.completion_tokens;
    total.simulated_latency_ms += c.simulated_latency_ms;
    total.cache_hits += c.cache_hits;
    total.num_batches += c.num_batches;
    if (c.by_model.empty() && (c.num_prompts != 0 || c.num_batches != 0)) {
      // A custom backend that does not fill its own slice still gets
      // attributed, under its display name.
      ModelUsage usage;
      usage.num_prompts = c.num_prompts;
      usage.prompt_tokens = c.prompt_tokens;
      usage.completion_tokens = c.completion_tokens;
      usage.simulated_latency_ms = c.simulated_latency_ms;
      usage.num_batches = c.num_batches;
      total.by_model[b.model->name()] += usage;
    } else {
      for (const auto& [model_name, usage] : c.by_model) {
        total.by_model[model_name] += usage;
      }
    }
  }
  return total;
}

void ModelRouter::ResetCost() {
  std::vector<Backend> backends;
  {
    std::lock_guard<std::mutex> lock(mu_);
    backends = backends_;
  }
  std::set<LanguageModel*> seen;
  for (const Backend& b : backends) {
    if (seen.insert(b.model).second) b.model->ResetCost();
  }
}

}  // namespace galois::llm
