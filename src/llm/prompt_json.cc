#include "llm/prompt_json.h"

#include <cstdlib>

namespace galois::llm {

namespace {

Result<int64_t> ParseInt64(const std::string& s) {
  if (s.empty()) return Status::ParseError("wire value: empty int");
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::ParseError("wire value: bad int '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

const char* DataTypeTag(DataType t) {
  switch (t) {
    case DataType::kNull: return "null";
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kDate: return "date";
  }
  return "null";
}

Result<DataType> DataTypeFromTag(const std::string& tag) {
  if (tag == "null") return DataType::kNull;
  if (tag == "bool") return DataType::kBool;
  if (tag == "int") return DataType::kInt64;
  if (tag == "double") return DataType::kDouble;
  if (tag == "string") return DataType::kString;
  if (tag == "date") return DataType::kDate;
  return Status::ParseError("wire value: unknown type tag '" + tag + "'");
}

Json FilterToJson(const PromptFilter& f) {
  Json j = Json::Object();
  j.Set("attribute", Json::String(f.attribute));
  j.Set("attribute_description", Json::String(f.attribute_description));
  j.Set("op", Json::String(f.op));
  j.Set("value", ValueToJson(f.value));
  return j;
}

Result<PromptFilter> FilterFromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("wire filter: not an object");
  PromptFilter f;
  f.attribute = j.GetString("attribute");
  f.attribute_description = j.GetString("attribute_description");
  f.op = j.GetString("op");
  GALOIS_ASSIGN_OR_RETURN(f.value, ValueFromJson(j["value"]));
  return f;
}

}  // namespace

Json ValueToJson(const Value& v) {
  Json j = Json::Object();
  j.Set("t", Json::String(DataTypeTag(v.type())));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      j.Set("v", Json::Bool(v.bool_value()));
      break;
    case DataType::kInt64:
      // int64 as string: JSON numbers are doubles on the wire and would
      // corrupt values above 2^53.
      j.Set("v", Json::String(std::to_string(v.int_value())));
      break;
    case DataType::kDouble:
      j.Set("v", Json::Number(v.double_value()));
      break;
    case DataType::kString:
      j.Set("v", Json::String(v.string_value()));
      break;
    case DataType::kDate:
      j.Set("v", Json::String(std::to_string(v.date_packed())));
      break;
  }
  return j;
}

Result<Value> ValueFromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("wire value: not an object");
  GALOIS_ASSIGN_OR_RETURN(DataType t, DataTypeFromTag(j.GetString("t")));
  switch (t) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(j.GetBool("v"));
    case DataType::kInt64: {
      GALOIS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(j.GetString("v")));
      return Value::Int(v);
    }
    case DataType::kDouble:
      return Value::Double(j.GetNumber("v"));
    case DataType::kString:
      return Value::String(j.GetString("v"));
    case DataType::kDate: {
      GALOIS_ASSIGN_OR_RETURN(int64_t v, ParseInt64(j.GetString("v")));
      return Value::DatePacked(v);
    }
  }
  return Status::ParseError("wire value: unhandled type");
}

Json IntentToJson(const PromptIntent& intent) {
  Json j = Json::Object();
  if (const auto* scan = std::get_if<KeyScanIntent>(&intent)) {
    j.Set("kind", Json::String("key_scan"));
    j.Set("concept", Json::String(scan->concept_name));
    j.Set("key_attribute", Json::String(scan->key_attribute));
    j.Set("page", Json::Number(static_cast<int64_t>(scan->page)));
    if (scan->filter.has_value()) {
      j.Set("filter", FilterToJson(*scan->filter));
    }
  } else if (const auto* get = std::get_if<AttributeGetIntent>(&intent)) {
    j.Set("kind", Json::String("attribute_get"));
    j.Set("concept", Json::String(get->concept_name));
    j.Set("key", Json::String(get->key));
    j.Set("attribute", Json::String(get->attribute));
    j.Set("attribute_description", Json::String(get->attribute_description));
    j.Set("expected_type", Json::String(DataTypeTag(get->expected_type)));
  } else if (const auto* check = std::get_if<FilterCheckIntent>(&intent)) {
    j.Set("kind", Json::String("filter_check"));
    j.Set("concept", Json::String(check->concept_name));
    j.Set("key", Json::String(check->key));
    j.Set("filter", FilterToJson(check->filter));
  } else if (const auto* freeform = std::get_if<FreeformIntent>(&intent)) {
    j.Set("kind", Json::String("freeform"));
    j.Set("question", Json::String(freeform->question));
    j.Set("sql", Json::String(freeform->sql));
    j.Set("chain_of_thought", Json::Bool(freeform->chain_of_thought));
  } else if (const auto* verify = std::get_if<VerifyIntent>(&intent)) {
    j.Set("kind", Json::String("verify"));
    j.Set("concept", Json::String(verify->concept_name));
    j.Set("key", Json::String(verify->key));
    j.Set("attribute", Json::String(verify->attribute));
    j.Set("attribute_description",
          Json::String(verify->attribute_description));
    j.Set("claimed", ValueToJson(verify->claimed));
  }
  return j;
}

Result<PromptIntent> IntentFromJson(const Json& j) {
  if (!j.is_object()) return Status::ParseError("wire intent: not an object");
  const std::string kind = j.GetString("kind");
  if (kind == "key_scan") {
    KeyScanIntent intent;
    intent.concept_name = j.GetString("concept");
    intent.key_attribute = j.GetString("key_attribute");
    intent.page = static_cast<int>(j.GetInt("page"));
    if (j.Has("filter")) {
      GALOIS_ASSIGN_OR_RETURN(PromptFilter f, FilterFromJson(j["filter"]));
      intent.filter = std::move(f);
    }
    return PromptIntent(std::move(intent));
  }
  if (kind == "attribute_get") {
    AttributeGetIntent intent;
    intent.concept_name = j.GetString("concept");
    intent.key = j.GetString("key");
    intent.attribute = j.GetString("attribute");
    intent.attribute_description = j.GetString("attribute_description");
    GALOIS_ASSIGN_OR_RETURN(intent.expected_type,
                            DataTypeFromTag(j.GetString("expected_type")));
    return PromptIntent(std::move(intent));
  }
  if (kind == "filter_check") {
    FilterCheckIntent intent;
    intent.concept_name = j.GetString("concept");
    intent.key = j.GetString("key");
    GALOIS_ASSIGN_OR_RETURN(intent.filter, FilterFromJson(j["filter"]));
    return PromptIntent(std::move(intent));
  }
  if (kind == "freeform") {
    FreeformIntent intent;
    intent.question = j.GetString("question");
    intent.sql = j.GetString("sql");
    intent.chain_of_thought = j.GetBool("chain_of_thought");
    return PromptIntent(std::move(intent));
  }
  if (kind == "verify") {
    VerifyIntent intent;
    intent.concept_name = j.GetString("concept");
    intent.key = j.GetString("key");
    intent.attribute = j.GetString("attribute");
    intent.attribute_description = j.GetString("attribute_description");
    GALOIS_ASSIGN_OR_RETURN(intent.claimed, ValueFromJson(j["claimed"]));
    return PromptIntent(std::move(intent));
  }
  return Status::ParseError("wire intent: unknown kind '" + kind + "'");
}

namespace {

Json MessagesFor(const Prompt& prompt) {
  Json message = Json::Object();
  message.Set("role", Json::String("user"));
  message.Set("content", Json::String(prompt.text));
  Json messages = Json::Array();
  messages.Append(std::move(message));
  return messages;
}

Result<std::string> UserContentOf(const Json& body) {
  const Json& messages = body["messages"];
  if (!messages.is_array() || messages.size() == 0) {
    return Status::ParseError("wire request: missing messages");
  }
  const Json& content = messages.at(messages.size() - 1)["content"];
  if (!content.is_string()) {
    return Status::ParseError("wire request: message content not a string");
  }
  return content.string_value();
}

Json UsageToJson(const WireUsage& usage) {
  Json j = Json::Object();
  j.Set("prompt_tokens", Json::Number(usage.prompt_tokens));
  j.Set("completion_tokens", Json::Number(usage.completion_tokens));
  j.Set("total_tokens",
        Json::Number(usage.prompt_tokens + usage.completion_tokens));
  return j;
}

WireUsage UsageFromJson(const Json& j) {
  WireUsage usage;
  usage.prompt_tokens = j.GetInt("prompt_tokens");
  usage.completion_tokens = j.GetInt("completion_tokens");
  return usage;
}

}  // namespace

Json BuildChatRequest(const std::string& model, const Prompt& prompt) {
  Json j = Json::Object();
  j.Set("model", Json::String(model));
  j.Set("messages", MessagesFor(prompt));
  j.Set("galois_intent", IntentToJson(prompt.intent));
  return j;
}

Result<Prompt> ParseChatRequest(const Json& body) {
  Prompt prompt;
  GALOIS_ASSIGN_OR_RETURN(prompt.text, UserContentOf(body));
  GALOIS_ASSIGN_OR_RETURN(prompt.intent,
                          IntentFromJson(body["galois_intent"]));
  return prompt;
}

Json BuildChatResponse(const std::string& model,
                       const Completion& completion, const WireUsage& usage) {
  Json message = Json::Object();
  message.Set("role", Json::String("assistant"));
  message.Set("content", Json::String(completion.text));
  Json choice = Json::Object();
  choice.Set("index", Json::Number(static_cast<int64_t>(0)));
  choice.Set("message", std::move(message));
  choice.Set("finish_reason", Json::String("stop"));
  Json choices = Json::Array();
  choices.Append(std::move(choice));
  Json j = Json::Object();
  j.Set("object", Json::String("chat.completion"));
  j.Set("model", Json::String(model));
  j.Set("choices", std::move(choices));
  j.Set("usage", UsageToJson(usage));
  j.Set("galois_latency_ms", Json::Number(usage.latency_ms));
  return j;
}

Result<WireCompletion> ParseChatResponse(const Json& body) {
  const Json& choices = body["choices"];
  if (!choices.is_array() || choices.size() == 0) {
    return Status::LlmError("wire response: missing choices");
  }
  const Json& content = choices.at(0)["message"]["content"];
  if (!content.is_string()) {
    return Status::LlmError("wire response: missing message content");
  }
  WireCompletion out;
  out.completion.text = content.string_value();
  out.usage = UsageFromJson(body["usage"]);
  out.usage.latency_ms = body.GetNumber("galois_latency_ms");
  return out;
}

Json BuildBatchRequest(const std::string& model,
                       const std::vector<Prompt>& prompts) {
  Json requests = Json::Array();
  for (size_t i = 0; i < prompts.size(); ++i) {
    Json one = Json::Object();
    one.Set("index", Json::Number(static_cast<int64_t>(i)));
    one.Set("messages", MessagesFor(prompts[i]));
    one.Set("galois_intent", IntentToJson(prompts[i].intent));
    requests.Append(std::move(one));
  }
  Json j = Json::Object();
  j.Set("model", Json::String(model));
  j.Set("requests", std::move(requests));
  return j;
}

Result<std::vector<Prompt>> ParseBatchRequest(const Json& body) {
  const Json& requests = body["requests"];
  if (!requests.is_array()) {
    return Status::ParseError("wire batch: missing requests");
  }
  std::vector<Prompt> prompts(requests.size());
  std::vector<bool> seen(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    const Json& one = requests.at(i);
    int64_t index = one.GetInt("index", -1);
    if (index < 0 || index >= static_cast<int64_t>(requests.size()) ||
        seen[static_cast<size_t>(index)]) {
      return Status::ParseError("wire batch: bad request index");
    }
    seen[static_cast<size_t>(index)] = true;
    Prompt& p = prompts[static_cast<size_t>(index)];
    GALOIS_ASSIGN_OR_RETURN(p.text, UserContentOf(one));
    GALOIS_ASSIGN_OR_RETURN(p.intent, IntentFromJson(one["galois_intent"]));
  }
  return prompts;
}

Json BuildBatchResponse(const std::string& model,
                        const std::vector<Completion>& completions,
                        const std::vector<WireUsage>& per_prompt,
                        double round_trip_latency_ms,
                        const std::vector<size_t>& emit_order) {
  Json responses = Json::Array();
  for (size_t pos = 0; pos < emit_order.size(); ++pos) {
    size_t i = emit_order[pos];
    Json message = Json::Object();
    message.Set("role", Json::String("assistant"));
    message.Set("content", Json::String(completions[i].text));
    Json one = Json::Object();
    one.Set("index", Json::Number(static_cast<int64_t>(i)));
    one.Set("message", std::move(message));
    one.Set("usage", UsageToJson(per_prompt[i]));
    responses.Append(std::move(one));
  }
  Json j = Json::Object();
  j.Set("object", Json::String("batch.completion"));
  j.Set("model", Json::String(model));
  j.Set("responses", std::move(responses));
  j.Set("galois_latency_ms", Json::Number(round_trip_latency_ms));
  return j;
}

Result<std::pair<std::vector<Completion>, WireUsage>> ParseBatchResponse(
    const Json& body, size_t expected) {
  const Json& responses = body["responses"];
  if (!responses.is_array()) {
    return Status::LlmError("wire batch response: missing responses");
  }
  if (responses.size() != expected) {
    return Status::LlmError(
        "wire batch response: got " + std::to_string(responses.size()) +
        " completions for " + std::to_string(expected) + " prompts");
  }
  std::vector<Completion> completions(expected);
  std::vector<bool> seen(expected, false);
  WireUsage usage;
  for (size_t pos = 0; pos < responses.size(); ++pos) {
    const Json& one = responses.at(pos);
    int64_t index = one.GetInt("index", -1);
    if (index < 0 || index >= static_cast<int64_t>(expected) ||
        seen[static_cast<size_t>(index)]) {
      // Out-of-range or duplicated index: the whole batch is rejected —
      // never a partially filled completion vector.
      return Status::LlmError("wire batch response: bad completion index");
    }
    const Json& content = one["message"]["content"];
    if (!content.is_string()) {
      return Status::LlmError("wire batch response: missing content");
    }
    seen[static_cast<size_t>(index)] = true;
    completions[static_cast<size_t>(index)].text = content.string_value();
    WireUsage u = UsageFromJson(one["usage"]);
    usage.prompt_tokens += u.prompt_tokens;
    usage.completion_tokens += u.completion_tokens;
  }
  usage.latency_ms = body.GetNumber("galois_latency_ms");
  return std::make_pair(std::move(completions), usage);
}

}  // namespace galois::llm
