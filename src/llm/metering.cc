#include "llm/metering.h"

namespace galois::llm {

void CostTap::Record(const CostMeter& delta, CostMeter* usage) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tapped_ += delta;
  }
  if (usage != nullptr) *usage += delta;
}

Result<Completion> CostTap::CompleteMetered(const Prompt& prompt,
                                            CostMeter* usage) {
  CostMeter delta;
  GALOIS_ASSIGN_OR_RETURN(Completion c,
                          inner_->CompleteMetered(prompt, &delta));
  Record(delta, usage);
  return c;
}

Result<std::vector<Completion>> CostTap::CompleteBatchMetered(
    const std::vector<Prompt>& prompts, CostMeter* usage) {
  CostMeter delta;
  GALOIS_ASSIGN_OR_RETURN(std::vector<Completion> out,
                          inner_->CompleteBatchMetered(prompts, &delta));
  Record(delta, usage);
  return out;
}

CostMeter CostTap::cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tapped_;
}

void CostTap::ResetCost() {
  std::lock_guard<std::mutex> lock(mu_);
  tapped_.Reset();
}

}  // namespace galois::llm
