#include "api/database.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cluster/cluster_coordinator.h"
#include "llm/model_router.h"
#include "llm/prompt_cache.h"
#include "llm/resilience.h"
#include "llm/simulated_llm.h"

namespace galois {

namespace {

/// The implicit single-backend configuration of a DatabaseOptions with no
/// backends: the ChatGpt profile, undecorated.
BackendSpec DefaultBackend() {
  BackendSpec spec;
  spec.simulated = llm::ModelProfile::ChatGpt();
  spec.name = spec.simulated->name;
  return spec;
}

/// Bridges MaterialisationCache mutations into the journal. Append
/// failures are swallowed by design: the store marks itself dead on the
/// first error and the query proceeds uncached (failure policy in
/// store/result_store.h).
class StoreMaterialisationSink : public core::MaterialisationSink {
 public:
  explicit StoreMaterialisationSink(store::ResultStore* store)
      : store_(store) {}

  void OnInsert(const std::string& base_key, const std::string& descriptor,
                const std::vector<std::string>& columns,
                const std::vector<Tuple>& rows) override {
    store_
        ->PutMaterialisation(
            core::MaterialisationStoreKey(base_key, descriptor), columns,
            rows, base_key, descriptor)
        .IgnoreError();
  }
  void OnHit(const std::string& base_key,
             const std::string& descriptor) override {
    store_->TouchMaterialisation(
        core::MaterialisationStoreKey(base_key, descriptor));
  }
  void OnClear() override { store_->ClearMaterialisations().IgnoreError(); }

 private:
  store::ResultStore* store_;
};

}  // namespace

Database::~Database() {
  // Detach every persistence hook before anything is torn down: the
  // table cache may be *borrowed* (it outlives this Database), and no
  // callback may reach the store once it is closed.
  if (store_ != nullptr) {
    if (table_cache_ != nullptr) table_cache_->SetSink(nullptr);
    store_sink_.reset();
    store_.reset();  // syncs per durability mode
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  // unique_ptr from the start: backends capture pointers into the
  // Database (workload KB, inner chains), so its address must be final
  // before any of them is constructed.
  std::unique_ptr<Database> db(new Database());

  if (options.materialisation_cache != nullptr &&
      options.enable_materialisation_cache) {
    return Status::InvalidArgument(
        "DatabaseOptions sets both materialisation_cache (borrow) and "
        "enable_materialisation_cache (own); pick one");
  }

  std::vector<BackendSpec> specs = std::move(options.backends);
  if (specs.empty()) specs.push_back(DefaultBackend());

  // --- world + catalog ------------------------------------------------
  // The builtin workload is only built when something needs it: a
  // simulated backend grounds on its world, and queries need its
  // catalog unless the caller supplied one. A Database over external/
  // HTTP backends with its own catalog keeps workload() null.
  bool needs_workload = options.catalog == nullptr;
  for (const BackendSpec& spec : specs) {
    if (spec.simulated.has_value()) needs_workload = true;
  }
  if (options.workload != nullptr) {
    db->workload_ = options.workload;
  } else if (needs_workload) {
    GALOIS_ASSIGN_OR_RETURN(knowledge::SpiderLikeWorkload workload,
                            knowledge::SpiderLikeWorkload::Create());
    db->owned_workload_ = std::make_unique<knowledge::SpiderLikeWorkload>(
        std::move(workload));
    db->workload_ = db->owned_workload_.get();
  }
  db->catalog_ = options.catalog != nullptr ? options.catalog
                                            : &db->workload_->catalog();

  // --- backends: transport + per-backend decorators --------------------
  // Every PromptCache built below is remembered so a configured store
  // can preload it and attach its persistence hooks.
  std::vector<llm::PromptCache*> prompt_caches;
  for (const BackendSpec& spec : specs) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("backend with empty name");
    }
    for (const auto& [existing, chain] : db->backends_) {
      (void)chain;
      if (existing == spec.name) {
        return Status::InvalidArgument("duplicate backend name '" +
                                       spec.name + "'");
      }
    }
    const int sources = (spec.simulated.has_value() ? 1 : 0) +
                        (spec.http.has_value() ? 1 : 0) +
                        (spec.external != nullptr ? 1 : 0);
    if (sources != 1) {
      return Status::InvalidArgument(
          "backend '" + spec.name +
          "' must set exactly one of simulated/http/external");
    }
    llm::LanguageModel* chain = nullptr;
    if (spec.simulated.has_value()) {
      db->owned_models_.push_back(std::make_unique<llm::SimulatedLlm>(
          &db->workload_->kb(), *spec.simulated, &db->workload_->catalog(),
          options.llm_seed));
      chain = db->owned_models_.back().get();
    } else if (spec.http.has_value()) {
      db->owned_models_.push_back(
          std::make_unique<llm::HttpLlm>(*spec.http));
      chain = db->owned_models_.back().get();
    } else {
      chain = spec.external;
    }
    if (spec.prompt_cache) {
      auto cache = std::make_unique<llm::PromptCache>(chain);
      prompt_caches.push_back(cache.get());
      db->owned_models_.push_back(std::move(cache));
      chain = db->owned_models_.back().get();
    }
    if (spec.resilience.has_value()) {
      db->owned_models_.push_back(
          std::make_unique<llm::ResilientLlm>(chain, *spec.resilience));
      chain = db->owned_models_.back().get();
    }
    db->backends_.emplace_back(spec.name, chain);
  }

  // --- default backend + router ----------------------------------------
  std::string default_name = options.default_backend.empty()
                                 ? db->backends_.front().first
                                 : options.default_backend;
  if (db->backend(default_name) == nullptr) {
    return Status::NotFound("default_backend '" + default_name +
                            "' is not a registered backend");
  }
  const bool need_router = db->backends_.size() > 1 ||
                           !options.execution.phase_models.empty();
  if (need_router) {
    auto router = std::make_unique<llm::ModelRouter>();
    for (const auto& [name, chain] : db->backends_) {
      GALOIS_RETURN_IF_ERROR(router->AddBackend(name, chain));
    }
    GALOIS_RETURN_IF_ERROR(router->SetDefaultBackend(default_name));
    GALOIS_RETURN_IF_ERROR(
        router->ConfigureRoutes(options.execution.phase_models));
    db->router_ = std::move(router);
    db->model_ = db->router_.get();
  } else {
    db->model_ = db->backends_.front().second;
  }

  // --- shared caches + session defaults --------------------------------
  if (options.materialisation_cache != nullptr) {
    db->table_cache_ = options.materialisation_cache;
  } else if (options.enable_materialisation_cache) {
    db->owned_table_cache_ = std::make_unique<core::MaterialisationCache>(
        options.materialisation_cache_entries);
    db->table_cache_ = db->owned_table_cache_.get();
  }
  db->execution_defaults_ = std::move(options.execution);

  // --- persistent store: recover, warm-start, attach hooks -------------
  if (!options.store.path.empty()) {
    GALOIS_ASSIGN_OR_RETURN(db->store_,
                            store::ResultStore::Open(options.store));
    store::ResultStore* st = db->store_.get();
    // Warm-start strictly before attaching hooks, so recovered entries
    // are never re-journaled as fresh inserts.
    if (db->table_cache_ != nullptr) {
      st->ForEachMaterialisation(
          [cache = db->table_cache_](const std::string& store_key,
                                     const std::string& base_key,
                                     const std::string& descriptor,
                                     const std::vector<std::string>& columns,
                                     const std::vector<Tuple>& rows) {
            // Records from before predicate subsumption carry no
            // structured key halves; without them the entry cannot
            // participate in lookups, so it is skipped (a one-time cache
            // miss — the re-bought entry is journaled in the new form).
            (void)store_key;
            if (base_key.empty()) return;
            cache->WarmStart(base_key, descriptor, columns, rows);
          });
      db->store_sink_ = std::make_unique<StoreMaterialisationSink>(st);
      db->table_cache_->SetSink(db->store_sink_.get());
    }
    if (!prompt_caches.empty()) {
      // A prompt record belongs to the backend whose (inner) model name
      // matches — a PromptCache reports its transport's name, so cached
      // completions can never cross models with the same backend label.
      st->ForEachPrompt([&prompt_caches](const std::string& model,
                                         const std::string& text,
                                         const std::string& completion) {
        for (llm::PromptCache* cache : prompt_caches) {
          if (cache->name() == model) cache->Preload(text, completion);
        }
      });
      for (llm::PromptCache* cache : prompt_caches) {
        const std::string model = cache->name();
        llm::PromptCacheHooks hooks;
        hooks.on_insert = [st, model](const std::string& text,
                                      const std::string& completion) {
          st->PutPrompt(model, text, completion).IgnoreError();
        };
        hooks.on_hit = [st, model](const std::string& text) {
          st->TouchPrompt(model, text);
        };
        hooks.on_clear = [st] { st->ClearPrompts().IgnoreError(); };
        cache->SetHooks(std::move(hooks));
      }
    }
  }

  // Cluster coordinator last: it needs the fully-wired Database (model
  // stack, catalog, cache) to plan shards and run local/merge stages.
  if (!options.cluster.nodes.empty()) {
    Result<std::unique_ptr<cluster::ClusterCoordinator>> coord =
        cluster::ClusterCoordinator::Connect(db.get(),
                                             std::move(options.cluster));
    if (!coord.ok()) return coord.status();
    db->cluster_ = std::move(coord).value();
  }

  return db;
}

llm::LanguageModel* Database::backend(const std::string& name) const {
  for (const auto& [backend_name, chain] : backends_) {
    if (backend_name == name) return chain;
  }
  return nullptr;
}

std::vector<std::string> Database::backend_names() const {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, chain] : backends_) {
    (void)chain;
    names.push_back(name);
  }
  return names;
}

Session Database::CreateSession() const {
  return Session(this, execution_defaults_);
}

Session Database::CreateSession(core::ExecutionOptions options) const {
  return Session(this, std::move(options));
}

Result<QueryResult> Session::RunSnapshot(
    const Database* db, core::ExecutionOptions snapshot,
    const std::string& sql, std::shared_ptr<ExplainState> explain) {
  // Cluster deployments scatter the query's LLM-table materialisation
  // across the nodes (provenance-recording queries excepted: per-cell
  // prompt traces do not travel, so they run locally for fidelity). The
  // coordinator measures wall_ms itself.
  if (db->cluster_ != nullptr && !snapshot.record_provenance) {
    Result<QueryResult> result = db->cluster_->Query(sql, snapshot);
    if (result.ok() && explain != nullptr) {
      std::lock_guard<std::mutex> lock(explain->mu);
      explain->text = result.value().physical_plan;
    }
    return result;
  }

  const auto start = std::chrono::steady_clock::now();
  core::GaloisExecutor executor(db->model_, db->catalog_, snapshot);
  executor.set_materialisation_cache(db->table_cache_);
  GALOIS_ASSIGN_OR_RETURN(core::QueryOutput out, executor.RunSql(sql));
  QueryResult result;
  result.relation = std::move(out.relation);
  result.cost = std::move(out.cost);
  result.trace = std::move(out.trace);
  result.table_cache_lookups = out.table_cache_lookups;
  result.table_cache_hits = out.table_cache_hits;
  result.table_cache_exact_hits = out.table_cache_exact_hits;
  result.table_cache_subsumption_hits = out.table_cache_subsumption_hits;
  result.table_cache_store_hits = out.table_cache_store_hits;
  result.scan_pages_prefetched = out.scan_pages_prefetched;
  result.scan_pages_overfetched = out.scan_pages_overfetched;
  result.physical_plan = std::move(out.physical_plan);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (explain != nullptr) {
    std::lock_guard<std::mutex> lock(explain->mu);
    explain->text = result.physical_plan;
  }
  return result;
}

std::string Session::Explain() const {
  std::lock_guard<std::mutex> lock(explain_->mu);
  return explain_->text;
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   CancelToken control) const {
  core::ExecutionOptions snapshot = options_;  // per-query immutability
  if (snapshot.query_deadline_ms > 0) {
    // The deadline is armed on a fresh token chained onto the caller's
    // (if any): a caller-supplied token may already be shared with
    // other in-flight queries, so it is never mutated here.
    auto armed = std::make_shared<CancelState>(std::move(control));
    armed->ArmDeadline(snapshot.query_deadline_ms);
    control = std::move(armed);
  }
  if (control != nullptr) snapshot.control = control;
  return RunSnapshot(db_, std::move(snapshot), sql, explain_);
}

AsyncQuery Session::QueryAsync(const std::string& sql,
                               CancelToken control) const {
  // Snapshot options and arm the token on the *calling* thread: whatever
  // the caller does to the session afterwards, this query's behaviour is
  // sealed here.
  core::ExecutionOptions snapshot = options_;
  if (control == nullptr) control = std::make_shared<CancelState>();
  if (snapshot.query_deadline_ms > 0) {
    // As in Query: arm a private chained token, never the caller's.
    auto armed = std::make_shared<CancelState>(std::move(control));
    armed->ArmDeadline(snapshot.query_deadline_ms);
    control = std::move(armed);
  }
  snapshot.control = control;

  AsyncQuery pending;
  pending.control = control;
  // The phase pool hosts the query task; nested fan-out (table tasks,
  // phase flushes) is deadlock-free by TaskHandle's claim-on-join, so
  // arbitrarily many queries may be in flight against a bounded pool.
  pending.handle = TaskHandle<Result<QueryResult>>::Launch(
      ThreadPool::SharedPhase(),
      [db = db_, snapshot = std::move(snapshot), sql,
       explain = explain_]() mutable {
        return RunSnapshot(db, std::move(snapshot), sql,
                           std::move(explain));
      });
  return pending;
}

}  // namespace galois
