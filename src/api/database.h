#ifndef GALOIS_API_DATABASE_H_
#define GALOIS_API_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster_options.h"
#include "common/cancel.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "core/options.h"
#include "knowledge/workload.h"
#include "llm/http_llm.h"
#include "llm/language_model.h"
#include "llm/model_profile.h"
#include "llm/resilience.h"
#include "store/result_store.h"

namespace galois {

namespace llm {
class ModelRouter;
}

namespace cluster {
class ClusterCoordinator;
}

/// The result of one query, as one self-contained value: the relation
/// plus this query's own measurements. Nothing here aliases shared
/// state, so results from concurrent sessions never interfere — the
/// replacement for the old per-executor `last_cost()/last_trace()/
/// last_table_cache_*` side-channels, which allowed one in-flight query
/// per executor and no safe sharing.
struct QueryResult {
  Relation relation;

  /// Exactly this query's LLM spend (per-backend breakdown included),
  /// attributed per round trip — correct under any number of concurrent
  /// queries against the same Database.
  llm::CostMeter cost;

  /// Per-cell provenance; populated only when the session's options set
  /// record_provenance.
  core::ExecutionTrace trace;

  /// Materialisation-cache traffic of this query (0/0 when the Database
  /// has no cache). Hits split by kind: exact hits matched the cached
  /// (base key, predicate descriptor) byte-for-byte; subsumption hits
  /// were served from an entry cached under a weaker filter with the
  /// residual conjuncts re-checked in memory — still zero LLM round
  /// trips. `table_cache_store_hits` counts the hits served by entries
  /// warm-started from the persistent store — tables this process never
  /// paid an LLM round trip for; prompt-level store hits are in
  /// cost.store_hits.
  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;

  /// Speculative key-scan paging (ExecutionOptions::prefetch_pages):
  /// pages whose round trip was in flight before the previous page had
  /// been consumed, and the subset bought past the terminating page
  /// (paid for, parked in the prompt cache). Both 0 with prefetch off.
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;

  /// Rendering of the executed physical operator DAG with per-operator
  /// rows / round trips / cost (the shell's `.explain` output).
  std::string physical_plan;

  /// Measured wall-clock time of the query.
  double wall_ms = 0.0;
};

/// A query dispatched with Session::QueryAsync: a joinable handle plus
/// the query's cancellation token. Join at most once; an abandoned
/// handle is safe (the query still runs to completion, its result is
/// dropped). Cancel() requests cooperative cancellation — the scheduler
/// stops issuing LLM round trips at the next dispatch boundary and Join
/// returns StatusCode::kCancelled.
struct AsyncQuery {
  CancelToken control;
  TaskHandle<Result<QueryResult>> handle;

  Result<QueryResult> Join() { return handle.Join(); }
  void Cancel() {
    if (control != nullptr) control->RequestCancel();
  }
};

/// One named model backend of a Database. Exactly one of `simulated`,
/// `http` or `external` must be set:
///  * simulated — the Database owns a SimulatedLlm with this profile over
///    its workload's world (requires the Database to have a workload);
///  * http      — the Database owns an HttpLlm transport;
///  * external  — a caller-owned LanguageModel (or stack) registered
///    as-is; it must outlive the Database.
/// The optional decorators wrap the transport in the recommended order
/// (resilience outside, prompt cache inside — the router, when routing
/// is configured, sits above all backends):
///   router -> resilience -> prompt cache -> transport.
struct BackendSpec {
  std::string name;
  std::optional<llm::ModelProfile> simulated;
  std::optional<llm::HttpLlmOptions> http;
  llm::LanguageModel* external = nullptr;

  /// Wrap the transport in a ResilientLlm with these knobs.
  std::optional<llm::ResilienceOptions> resilience;
  /// Wrap in a PromptCache (memoised completions shared by every query
  /// routed to this backend).
  bool prompt_cache = false;
};

/// Everything needed to open a Database — the one place that subsumes
/// the wiring every consumer used to hand-roll (model + catalog + caches
/// + router).
struct DatabaseOptions {
  /// The world + catalog + ground-truth instances. Borrowed when set
  /// (must outlive the Database); when null, the Database creates and
  /// owns the builtin SpiderLikeWorkload.
  const knowledge::SpiderLikeWorkload* workload = nullptr;

  /// Catalog override (borrowed): queries bind against this catalog
  /// instead of the workload's — e.g. a catalog with extra virtual
  /// tables. Simulated backends still ground on the workload.
  const catalog::Catalog* catalog = nullptr;

  /// Seed shared by every simulated backend.
  uint64_t llm_seed = 7;

  /// The model backends. Empty means one simulated backend with the
  /// ChatGpt profile. The first entry is the default backend unless
  /// `default_backend` names another.
  std::vector<BackendSpec> backends;
  std::string default_backend;

  /// Session defaults; every CreateSession() starts from this snapshot.
  /// `execution.phase_models` configures per-phase routing across the
  /// named backends (a ModelRouter is assembled iff routes exist or more
  /// than one backend is registered).
  core::ExecutionOptions execution;

  /// Cross-query materialisation cache: borrowed when
  /// `materialisation_cache` is set, owned when `enable_materialisation_
  /// cache` is true, absent otherwise. Setting BOTH is rejected by Open
  /// (kInvalidArgument) — the intent is ambiguous, and the old behaviour
  /// of silently preferring the borrowed pointer hid misconfigurations.
  ///
  /// Borrowed-cache contract: the cache must outlive every Database (and
  /// Session) using it. The cache is internally synchronised, so any
  /// number of Databases may share one — but when a persistent store is
  /// configured (`store.path`), this Database attaches its persistence
  /// sink to the borrowed cache for its lifetime, and at most one sink
  /// can be attached at a time: give at most one store-backed Database
  /// to a shared cache.
  core::MaterialisationCache* materialisation_cache = nullptr;
  bool enable_materialisation_cache = false;
  size_t materialisation_cache_entries = 64;

  /// Persistent on-disk result store (store::ResultStore): journals
  /// materialised tables and prompt completions so a process restart
  /// warm-starts both caches instead of re-billing the workload. An
  /// empty `store.path` disables persistence (the default). When set,
  /// Database::Open recovers the journal, preloads the materialisation
  /// cache (when one is configured) and every backend's PromptCache,
  /// and journals their traffic from then on. `store.env` injects a
  /// fault-scheduled filesystem in the crash tests.
  store::StoreOptions store;

  /// Scatter-gather execution across galoisd nodes: when `cluster.nodes`
  /// is non-empty, Open connects a cluster::ClusterCoordinator and every
  /// Session transparently scatters LLM-table materialisation across the
  /// nodes (src/cluster/). The nodes must serve the same catalog,
  /// workload and model configuration as this Database. Provenance-
  /// recording queries and queries with no LLM table still run locally.
  cluster::ClusterOptions cluster;

  /// Whether a backend named `name` is already declared (builders adding
  /// route targets use this to skip duplicates).
  bool HasBackend(const std::string& name) const {
    for (const BackendSpec& spec : backends) {
      if (spec.name == name) return true;
    }
    return false;
  }
};

class Session;

/// The top-level entry point: a process-wide handle that owns (or
/// borrows) the catalog, the LanguageModel stack and the shared caches,
/// and mints Sessions. One Database serves any number of concurrent
/// sessions; everything it exposes is immutable after Open, so no
/// locking is needed above the (internally synchronised) caches and
/// models.
///
/// Ownership/lifetime (see docs/ARCHITECTURE.md, "API layer"):
///
///   Database ──owns──> backends (transport + decorators), router,
///   │                  materialisation cache, workload (when builtin)
///   └─mints──> Session (borrows the Database; must not outlive it)
///        └─returns──> QueryResult (self-contained value, no aliasing)
class Database {
 public:
  /// Validates and wires everything up. kInvalidArgument on misconfigured
  /// backends (duplicate names, simulated backend without a workload,
  /// none-or-several of simulated/http/external set), kNotFound on routes
  /// or default_backend naming an unknown backend.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// A new session with the Database's default execution options, or
  /// with session-specific options.
  Session CreateSession() const;
  Session CreateSession(core::ExecutionOptions options) const;

  /// The catalog queries bind against.
  const catalog::Catalog& catalog() const { return *catalog_; }

  /// The workload backing simulated backends; null for a Database opened
  /// over external backends with a bare catalog.
  const knowledge::SpiderLikeWorkload* workload() const {
    return workload_;
  }

  /// The top of the model stack (the router when one was assembled, else
  /// the single backend chain). Its cost() is the stack-wide meter over
  /// all sessions; per-query meters come from QueryResult::cost. Useful
  /// for the freeform QA baselines and spend dashboards.
  llm::LanguageModel* model() const { return model_; }

  /// The chain registered under `name` (for per-backend spend displays);
  /// null when unknown.
  llm::LanguageModel* backend(const std::string& name) const;
  std::vector<std::string> backend_names() const;

  /// The shared cross-query cache; null when disabled.
  core::MaterialisationCache* materialisation_cache() const {
    return table_cache_;
  }

  /// The persistent result store; null when DatabaseOptions::store.path
  /// was empty. Exposed for stats displays (`.store stats`) and explicit
  /// Vacuum()/Sync() calls; Put/Touch traffic flows through the cache
  /// hooks automatically.
  store::ResultStore* store() const { return store_.get(); }

  const core::ExecutionOptions& default_options() const {
    return execution_defaults_;
  }

  /// The scatter-gather coordinator; null unless DatabaseOptions::cluster
  /// named nodes. Exposed for stats displays (ClusterCoordinator::stats).
  cluster::ClusterCoordinator* cluster() const { return cluster_.get(); }

 private:
  friend class Session;

  Database() = default;

  const knowledge::SpiderLikeWorkload* workload_ = nullptr;
  const catalog::Catalog* catalog_ = nullptr;
  std::unique_ptr<knowledge::SpiderLikeWorkload> owned_workload_;

  /// Transports and decorators, in construction order (inner before
  /// outer, so destruction unwinds outer-first).
  std::vector<std::unique_ptr<llm::LanguageModel>> owned_models_;
  /// name -> top of that backend's decorator chain.
  std::vector<std::pair<std::string, llm::LanguageModel*>> backends_;
  std::unique_ptr<llm::ModelRouter> router_;
  llm::LanguageModel* model_ = nullptr;

  std::unique_ptr<core::MaterialisationCache> owned_table_cache_;
  core::MaterialisationCache* table_cache_ = nullptr;

  /// The persistent store and the sink adapter bridging the cache's
  /// mutation callbacks to it. The ~Database body detaches the sink
  /// (crucial for a *borrowed* cache, which outlives this Database) and
  /// closes the store before any member destructs, so no hook can ever
  /// call into a dead store.
  std::unique_ptr<store::ResultStore> store_;
  std::unique_ptr<core::MaterialisationSink> store_sink_;

  /// Non-null iff DatabaseOptions::cluster named nodes; Sessions route
  /// eligible queries through it (Session::RunSnapshot).
  std::unique_ptr<cluster::ClusterCoordinator> cluster_;

  core::ExecutionOptions execution_defaults_;
};

/// A per-client handle on a Database: a bundle of execution options plus
/// the Query entry points. Sessions are cheap values — create one per
/// client, per tenant, per experiment arm; all of them share the
/// Database's model stack and caches, and each query gets its own
/// exactly-attributed QueryResult.
///
/// Options rule (the `set_options` foot-gun, fixed): a session's options
/// are snapshotted at Query()/QueryAsync() entry, on the calling thread.
/// set_options between queries affects subsequent queries only; a query
/// already dispatched is never affected. A Session itself is not
/// thread-safe (set_options vs Query race on options_) — share the
/// Database across threads and give each thread its own Session, which
/// is the intended shape anyway.
class Session {
 public:
  /// Executes `sql` synchronously. `control` optionally carries a
  /// caller-held cancellation token; options().query_deadline_ms, when
  /// set, arms the deadline on it (or on an internal token).
  Result<QueryResult> Query(const std::string& sql,
                            CancelToken control = nullptr) const;

  /// Dispatches `sql` on the shared phase pool and returns immediately;
  /// many async queries — from one session or many — run concurrently
  /// against the same Database with byte-identical results and exact
  /// per-query cost meters. The options snapshot is taken *now*, on the
  /// calling thread, so a subsequent set_options cannot leak into the
  /// dispatched query.
  AsyncQuery QueryAsync(const std::string& sql,
                        CancelToken control = nullptr) const;

  const core::ExecutionOptions& options() const { return options_; }

  /// Replaces the options used by *subsequent* queries (see class
  /// comment for the snapshot rule).
  void set_options(core::ExecutionOptions options) {
    options_ = std::move(options);
  }

  /// The physical-plan report of this session's most recent successful
  /// query (QueryResult::physical_plan, kept so interactive callers can
  /// ask "what did that query just do?" after the fact — the shell's
  /// bare `.explain`). Empty before the first query. Guarded by a mutex
  /// shared across copies of the session: an async query completing on a
  /// pool thread publishes here safely.
  std::string Explain() const;

  const Database& database() const { return *db_; }

 private:
  friend class Database;

  /// Last-explain slot, shared (and synchronised) across session copies
  /// and async query tasks.
  struct ExplainState {
    std::mutex mu;
    std::string text;
  };

  Session(const Database* db, core::ExecutionOptions options)
      : db_(db),
        options_(std::move(options)),
        explain_(std::make_shared<ExplainState>()) {}

  /// Runs one query under an already-snapshotted options value,
  /// publishing the physical-plan report into `explain` on success.
  static Result<QueryResult> RunSnapshot(
      const Database* db, core::ExecutionOptions snapshot,
      const std::string& sql, std::shared_ptr<ExplainState> explain);

  const Database* db_;
  core::ExecutionOptions options_;
  std::shared_ptr<ExplainState> explain_;
};

}  // namespace galois

#endif  // GALOIS_API_DATABASE_H_
