#include "eval/harness.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/database.h"
#include "engine/executor.h"
#include "qa/qa_baseline.h"
#include "sql/parser.h"

namespace galois::eval {

Result<std::vector<QueryOutcome>> RunExperiment(
    const knowledge::SpiderLikeWorkload& workload,
    const llm::ModelProfile& profile, const ExperimentConfig& config) {
  // The whole wiring — base model, per-phase routed models sharing the
  // run's seed and world, materialisation cache — is the Database
  // builder's job now. Routed profiles are resolved here (backend names
  // in phase_models are model profile names); a route that points at the
  // base profile aliases the base backend, so cost() never double-counts.
  DatabaseOptions db_options;
  db_options.workload = &workload;
  db_options.llm_seed = config.llm_seed;
  db_options.execution = config.options;
  db_options.enable_materialisation_cache = config.use_materialisation_cache;
  // A persistent store needs a PromptCache per backend to capture the
  // completions it journals (and to have something to warm-start into).
  const bool persist = !config.store_path.empty();
  db_options.store.path = config.store_path;

  BackendSpec base;
  base.name = profile.name;
  base.simulated = profile;
  base.prompt_cache = persist;
  db_options.backends.push_back(std::move(base));
  db_options.default_backend = profile.name;
  for (const auto& [phase, target] : config.options.phase_models) {
    (void)phase;
    if (db_options.HasBackend(target)) continue;
    GALOIS_ASSIGN_OR_RETURN(llm::ModelProfile routed,
                            llm::ModelProfile::ByName(target));
    BackendSpec spec;
    spec.name = target;
    spec.simulated = std::move(routed);
    spec.prompt_cache = persist;
    db_options.backends.push_back(std::move(spec));
  }

  GALOIS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(std::move(db_options)));
  Session session = db->CreateSession();

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(workload.queries().size());
  for (const knowledge::QuerySpec& query : workload.queries()) {
    QueryOutcome outcome;
    outcome.query_id = query.id;
    outcome.query_class = query.query_class;

    // Ground truth R_D from the relational engine over the instances.
    GALOIS_ASSIGN_OR_RETURN(
        Relation rd, engine::ExecuteSql(query.sql, workload.catalog()));
    outcome.rd_rows = rd.NumRows();

    if (config.run_galois) {
      GALOIS_ASSIGN_OR_RETURN(QueryResult rm, session.Query(query.sql));
      outcome.galois_wall_ms = rm.wall_ms;
      outcome.rm_rows = rm.relation.NumRows();
      outcome.cardinality_diff_percent =
          CardinalityDiffPercent(rd.NumRows(), rm.relation.NumRows());
      outcome.galois_match = MatchCells(rd, rm.relation);
      outcome.galois_cost = std::move(rm.cost);
      outcome.table_cache_lookups = rm.table_cache_lookups;
      outcome.table_cache_hits = rm.table_cache_hits;
      outcome.table_cache_exact_hits = rm.table_cache_exact_hits;
      outcome.table_cache_subsumption_hits = rm.table_cache_subsumption_hits;
      outcome.table_cache_store_hits = rm.table_cache_store_hits;
      outcome.scan_pages_prefetched = rm.scan_pages_prefetched;
      outcome.scan_pages_overfetched = rm.scan_pages_overfetched;
    }
    if (config.run_nl_qa) {
      GALOIS_ASSIGN_OR_RETURN(
          qa::QaResult nl,
          qa::RunNlQuestion(db->model(), query, rd.schema()));
      outcome.nl_match = MatchCells(rd, nl.relation);
    }
    if (config.run_cot_qa) {
      GALOIS_ASSIGN_OR_RETURN(
          qa::QaResult cot,
          qa::RunChainOfThought(db->model(), query, rd.schema()));
      outcome.cot_match = MatchCells(rd, cot.relation);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

double AverageCardinalityDiff(const std::vector<QueryOutcome>& outcomes) {
  double sum = 0.0;
  size_t count = 0;
  for (const QueryOutcome& o : outcomes) {
    // "averaged over all queries with non-empty results".
    if (o.rd_rows == 0 || !o.cardinality_diff_percent.has_value()) {
      continue;
    }
    sum += *o.cardinality_diff_percent;
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

double Table2Average(const std::vector<QueryOutcome>& outcomes,
                     Method method,
                     std::optional<knowledge::QueryClass> cls) {
  double sum = 0.0;
  size_t count = 0;
  for (const QueryOutcome& o : outcomes) {
    if (cls.has_value() && o.query_class != *cls) continue;
    const std::optional<CellMatchResult>* match = nullptr;
    switch (method) {
      case Method::kGalois:
        match = &o.galois_match;
        break;
      case Method::kNlQa:
        match = &o.nl_match;
        break;
      case Method::kCotQa:
        match = &o.cot_match;
        break;
    }
    if (!match->has_value()) continue;
    sum += (*match)->Percent();
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace galois::eval
