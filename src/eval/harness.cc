#include "eval/harness.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "core/materialisation_cache.h"
#include "engine/executor.h"
#include "llm/model_router.h"
#include "llm/simulated_llm.h"
#include "qa/qa_baseline.h"
#include "sql/parser.h"

namespace galois::eval {

Result<std::vector<QueryOutcome>> RunExperiment(
    const knowledge::SpiderLikeWorkload& workload,
    const llm::ModelProfile& profile, const ExperimentConfig& config) {
  llm::SimulatedLlm base_model(&workload.kb(), profile, &workload.catalog(),
                               config.llm_seed);
  // Per-phase routing: options.phase_models names model profiles per
  // retrieval phase ("verify" -> "chatgpt"); the run's own profile stays
  // the default backend for unrouted phases. Routed profiles share the
  // run's seed and world, so a route that points every phase at the base
  // profile reproduces the single-model run exactly.
  llm::ModelRouter router;
  std::vector<std::unique_ptr<llm::SimulatedLlm>> routed_models;
  llm::LanguageModel* model = &base_model;
  if (!config.options.phase_models.empty()) {
    GALOIS_RETURN_IF_ERROR(router.AddBackend(profile.name, &base_model));
    for (const auto& [phase, target] : config.options.phase_models) {
      (void)phase;
      std::vector<std::string> names = router.backend_names();
      if (std::find(names.begin(), names.end(), target) != names.end()) {
        continue;  // already registered
      }
      GALOIS_ASSIGN_OR_RETURN(llm::ModelProfile routed,
                              llm::ModelProfile::ByName(target));
      if (routed.name == profile.name) {
        // Alias of the base profile; share the instance so cost() never
        // double-counts.
        GALOIS_RETURN_IF_ERROR(router.AddBackend(target, &base_model));
      } else {
        routed_models.push_back(std::make_unique<llm::SimulatedLlm>(
            &workload.kb(), routed, &workload.catalog(), config.llm_seed));
        GALOIS_RETURN_IF_ERROR(
            router.AddBackend(target, routed_models.back().get()));
      }
    }
    GALOIS_RETURN_IF_ERROR(
        router.ConfigureRoutes(config.options.phase_models));
    model = &router;
  }
  core::GaloisExecutor galois(model, &workload.catalog(), config.options);
  core::MaterialisationCache table_cache;
  if (config.use_materialisation_cache) {
    galois.set_materialisation_cache(&table_cache);
  }

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(workload.queries().size());
  for (const knowledge::QuerySpec& query : workload.queries()) {
    QueryOutcome outcome;
    outcome.query_id = query.id;
    outcome.query_class = query.query_class;

    // Ground truth R_D from the relational engine over the instances.
    GALOIS_ASSIGN_OR_RETURN(
        Relation rd, engine::ExecuteSql(query.sql, workload.catalog()));
    outcome.rd_rows = rd.NumRows();

    if (config.run_galois) {
      auto start = std::chrono::steady_clock::now();
      GALOIS_ASSIGN_OR_RETURN(Relation rm, galois.ExecuteSql(query.sql));
      outcome.galois_wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      outcome.rm_rows = rm.NumRows();
      outcome.cardinality_diff_percent =
          CardinalityDiffPercent(rd.NumRows(), rm.NumRows());
      outcome.galois_match = MatchCells(rd, rm);
      outcome.galois_cost = galois.last_cost();
      outcome.table_cache_lookups = galois.last_table_cache_lookups();
      outcome.table_cache_hits = galois.last_table_cache_hits();
    }
    if (config.run_nl_qa) {
      GALOIS_ASSIGN_OR_RETURN(
          qa::QaResult nl, qa::RunNlQuestion(model, query, rd.schema()));
      outcome.nl_match = MatchCells(rd, nl.relation);
    }
    if (config.run_cot_qa) {
      GALOIS_ASSIGN_OR_RETURN(
          qa::QaResult cot,
          qa::RunChainOfThought(model, query, rd.schema()));
      outcome.cot_match = MatchCells(rd, cot.relation);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

double AverageCardinalityDiff(const std::vector<QueryOutcome>& outcomes) {
  double sum = 0.0;
  size_t count = 0;
  for (const QueryOutcome& o : outcomes) {
    // "averaged over all queries with non-empty results".
    if (o.rd_rows == 0 || !o.cardinality_diff_percent.has_value()) {
      continue;
    }
    sum += *o.cardinality_diff_percent;
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

double Table2Average(const std::vector<QueryOutcome>& outcomes,
                     Method method,
                     std::optional<knowledge::QueryClass> cls) {
  double sum = 0.0;
  size_t count = 0;
  for (const QueryOutcome& o : outcomes) {
    if (cls.has_value() && o.query_class != *cls) continue;
    const std::optional<CellMatchResult>* match = nullptr;
    switch (method) {
      case Method::kGalois:
        match = &o.galois_match;
        break;
      case Method::kNlQa:
        match = &o.nl_match;
        break;
      case Method::kCotQa:
        match = &o.cot_match;
        break;
    }
    if (!match->has_value()) continue;
    sum += (*match)->Percent();
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace galois::eval
