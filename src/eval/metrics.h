#ifndef GALOIS_EVAL_METRICS_H_
#define GALOIS_EVAL_METRICS_H_

#include <cstddef>

#include "llm/language_model.h"
#include "types/relation.h"

namespace galois::eval {

/// The paper's cardinality ratio f = |2*R_D| / (|R_D| + |R_M|), in [0, 2];
/// f == 1 when the cardinalities match (Section 5, Evaluation 1).
double CardinalityRatio(size_t rd_rows, size_t rm_rows);

/// Table 1's reported quantity: (1 - f) as a percentage. Negative when the
/// method returns fewer rows than the ground truth, positive when it
/// over-generates.
double CardinalityDiffPercent(size_t rd_rows, size_t rm_rows);

/// Relative numeric tolerance of the content analysis: "a numerical value
/// is correct if the relative error w.r.t. R_D is less than 5%".
inline constexpr double kNumericTolerance = 0.05;

/// Lenient string comparison standing in for the paper's *manual* tuple
/// mapping: case-insensitive, ignores a leading article, a disambiguating
/// ", ..." suffix ("Rome, Italy" == "Rome") and abbreviated given names
/// ("J. Smith" == "James Smith"). Note the relational engine's joins stay
/// byte-strict — that asymmetry is exactly why joins fail in Table 2 while
/// human content-grading still credits readable answers.
bool LenientStringMatch(const std::string& truth,
                        const std::string& predicted);

/// Whether a predicted cell matches a ground-truth cell: numerics within
/// 5% relative error, strings via LenientStringMatch, dates by value,
/// NULL never matches.
bool CellMatches(const Value& truth, const Value& predicted);

/// Result of aligning a predicted relation against the ground truth.
struct CellMatchResult {
  size_t matched_cells = 0;
  size_t total_cells = 0;  // rows(R_D) x columns(R_D)

  double Percent() const {
    if (total_cells == 0) return 100.0;
    return 100.0 * static_cast<double>(matched_cells) /
           static_cast<double>(total_cells);
  }
};

/// Greedy tuple mapping + cell comparison (Section 5, Evaluation 2): each
/// ground-truth row is matched to the not-yet-used predicted row with the
/// most matching cells; matched cells are counted against the total number
/// of ground-truth cells. This mechanises the paper's manual mapping.
CellMatchResult MatchCells(const Relation& truth,
                           const Relation& predicted);

/// Prompt-efficiency view of a CostMeter (Section 5's "~110 *batched*
/// prompts per query"): how many round trips the batching layer actually
/// paid and how much the prompt cache absorbed.
struct BatchStats {
  int64_t num_prompts = 0;
  int64_t num_batches = 0;
  int64_t cache_hits = 0;

  /// Average prompts per batched round trip; 0 when nothing was batched.
  double PromptsPerBatch() const;

  /// Fraction of prompts answered from the cache, in [0, 1].
  double CacheHitRate() const;
};

BatchStats SummarizeBatching(const llm::CostMeter& cost);

/// Element-wise sum of per-query cost meters (for whole-workload totals).
llm::CostMeter TotalCost(const std::vector<llm::CostMeter>& costs);

}  // namespace galois::eval

#endif  // GALOIS_EVAL_METRICS_H_
