#ifndef GALOIS_EVAL_REPORT_H_
#define GALOIS_EVAL_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "store/result_store.h"

namespace galois::eval {

/// Renders Table 1 ("Average difference in the cardinality of Galois's
/// output relations w.r.t. the ground truth") from per-model outcomes.
/// `per_model` maps the model display name -> its outcomes, in insertion
/// order.
std::string FormatTable1(
    const std::vector<std::pair<std::string, std::vector<QueryOutcome>>>&
        per_model);

/// Renders Table 2 ("Cell value matches (%) between the result returned by
/// a method and the same query executed on the ground truth data") for one
/// model's outcomes (the paper uses ChatGPT).
std::string FormatTable2(const std::vector<QueryOutcome>& outcomes);

/// Renders the Section 5 in-text cost statistics: prompts per query,
/// latency per query (mean plus distribution hints). Runs with a
/// persistent store add a "Persistent store:" line (table + prompt hits
/// recovered from disk) next to the cache lines.
std::string FormatCostStats(const std::vector<QueryOutcome>& outcomes);

/// Renders a store::ResultStore stats snapshot (the shell's
/// `.store stats`): live shape, recovery outcome, journal traffic.
std::string FormatStoreStats(const store::StoreStats& stats);

}  // namespace galois::eval

#endif  // GALOIS_EVAL_REPORT_H_
