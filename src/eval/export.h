#ifndef GALOIS_EVAL_EXPORT_H_
#define GALOIS_EVAL_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "eval/harness.h"

namespace galois::eval {

/// CSV with one row per query outcome: id, class, |R_D|, |R_M|,
/// cardinality diff, per-method match percentages, prompt/latency costs.
/// Empty optionals render as empty fields.
std::string OutcomesToCsv(const std::vector<QueryOutcome>& outcomes);

/// CSV of Table 1: model, avg cardinality diff.
std::string Table1Csv(
    const std::vector<std::pair<std::string, std::vector<QueryOutcome>>>&
        per_model);

/// CSV of Table 2: method x query-class match matrix for one model run.
std::string Table2Csv(const std::vector<QueryOutcome>& outcomes);

/// Writes `content` to `path` (error on I/O failure).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace galois::eval

#endif  // GALOIS_EVAL_EXPORT_H_
