#include "eval/export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace galois::eval {

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string OutcomesToCsv(const std::vector<QueryOutcome>& outcomes) {
  std::ostringstream os;
  os << "query_id,class,rd_rows,rm_rows,cardinality_diff_pct,"
        "galois_match_pct,nl_match_pct,cot_match_pct,prompts,"
        "latency_ms\n";
  for (const QueryOutcome& o : outcomes) {
    os << o.query_id << ","
       << knowledge::QueryClassName(o.query_class) << "," << o.rd_rows
       << ",";
    if (o.rm_rows.has_value()) os << *o.rm_rows;
    os << ",";
    if (o.cardinality_diff_percent.has_value()) {
      os << Fmt(*o.cardinality_diff_percent);
    }
    os << ",";
    if (o.galois_match.has_value()) os << Fmt(o.galois_match->Percent());
    os << ",";
    if (o.nl_match.has_value()) os << Fmt(o.nl_match->Percent());
    os << ",";
    if (o.cot_match.has_value()) os << Fmt(o.cot_match->Percent());
    os << "," << o.galois_cost.num_prompts << ","
       << Fmt(o.galois_cost.simulated_latency_ms) << "\n";
  }
  return os.str();
}

std::string Table1Csv(
    const std::vector<std::pair<std::string, std::vector<QueryOutcome>>>&
        per_model) {
  std::ostringstream os;
  os << "model,cardinality_diff_pct\n";
  for (const auto& [name, outcomes] : per_model) {
    os << name << "," << Fmt(AverageCardinalityDiff(outcomes)) << "\n";
  }
  return os.str();
}

std::string Table2Csv(const std::vector<QueryOutcome>& outcomes) {
  using knowledge::QueryClass;
  std::ostringstream os;
  os << "method,all,selections,aggregates,joins_only\n";
  struct Row {
    const char* label;
    Method method;
  };
  for (const Row& row : {Row{"galois", Method::kGalois},
                         Row{"nl_qa", Method::kNlQa},
                         Row{"cot_qa", Method::kCotQa}}) {
    os << row.label << ","
       << Fmt(Table2Average(outcomes, row.method, std::nullopt)) << ","
       << Fmt(Table2Average(outcomes, row.method, QueryClass::kSelection))
       << ","
       << Fmt(Table2Average(outcomes, row.method, QueryClass::kAggregate))
       << ","
       << Fmt(Table2Average(outcomes, row.method, QueryClass::kJoin))
       << "\n";
  }
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << content;
  out.close();
  if (!out.good()) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace galois::eval
