#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace galois::eval {

namespace {

std::string Fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f", v);
  return buf;
}

std::string Fixed0(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace

std::string FormatTable1(
    const std::vector<std::pair<std::string, std::vector<QueryOutcome>>>&
        per_model) {
  std::ostringstream os;
  os << "Table 1: Average cardinality difference of R_M vs |R_D| "
        "(closer to 0 is better)\n";
  os << "  Model                       Diff as % of |R_D|\n";
  for (const auto& [name, outcomes] : per_model) {
    os << "  " << name << std::string(28 - std::min<size_t>(28, name.size()), ' ')
       << Fixed1(AverageCardinalityDiff(outcomes)) << "\n";
  }
  return os.str();
}

std::string FormatTable2(const std::vector<QueryOutcome>& outcomes) {
  using knowledge::QueryClass;
  std::ostringstream os;
  os << "Table 2: Cell value matches (%) vs ground truth R_D\n";
  os << "  Method                All   Selections  Aggregates  Joins only\n";
  auto row = [&](const char* label, Method m) {
    os << "  " << label
       << Fixed0(Table2Average(outcomes, m, std::nullopt)) << "    "
       << Fixed0(Table2Average(outcomes, m, QueryClass::kSelection))
       << "          "
       << Fixed0(Table2Average(outcomes, m, QueryClass::kAggregate))
       << "          "
       << Fixed0(Table2Average(outcomes, m, QueryClass::kJoin)) << "\n";
  };
  row("R_M  (SQL Queries)    ", Method::kGalois);
  row("T_M  (NL Questions)   ", Method::kNlQa);
  row("T_C_M (NL Quest.+CoT) ", Method::kCotQa);
  return os.str();
}

std::string FormatCostStats(const std::vector<QueryOutcome>& outcomes) {
  std::ostringstream os;
  double total_prompts = 0.0;
  double total_latency_ms = 0.0;
  double total_wall_ms = 0.0;
  std::vector<llm::CostMeter> costs;
  costs.reserve(outcomes.size());
  std::vector<double> latencies;
  size_t count = 0;
  for (const QueryOutcome& o : outcomes) {
    costs.push_back(o.galois_cost);
    // Queries answered entirely from cache issue zero prompts; they stay
    // out of the per-query prompt/latency averages but keep their batch
    // and cache-hit attribution in the batching summary below.
    if (o.galois_cost.num_prompts == 0) continue;
    total_prompts += static_cast<double>(o.galois_cost.num_prompts);
    total_latency_ms += o.galois_cost.simulated_latency_ms;
    total_wall_ms += o.galois_wall_ms;
    latencies.push_back(o.galois_cost.simulated_latency_ms);
    ++count;
  }
  const llm::CostMeter totals = TotalCost(costs);
  if (count == 0 && totals.num_batches == 0 && totals.cache_hits == 0) {
    return "No cost data collected\n";
  }
  char buf[256];
  if (count == 0) {
    os << "No prompt-issuing queries (all served from cache)\n";
  }
  if (count > 0) {
    std::sort(latencies.begin(), latencies.end());
    double mean_prompts = total_prompts / static_cast<double>(count);
    double mean_latency_s = total_latency_ms / 1000.0 /
                            static_cast<double>(count);
    double median_s = latencies[latencies.size() / 2] / 1000.0;
    double p95_s =
        latencies[static_cast<size_t>(
            static_cast<double>(latencies.size() - 1) * 0.95)] /
        1000.0;
    std::snprintf(buf, sizeof(buf),
                  "Cost stats over %zu queries: avg %.0f prompts/query, "
                  "avg %.1f s/query (simulated), median %.1f s, p95 "
                  "%.1f s\n",
                  count, mean_prompts, mean_latency_s, median_s, p95_s);
    os << buf;
    if (total_wall_ms > 0.0) {
      // Measured wall clock shrinks under parallel_batches while the
      // simulated per-trip latency above stays invariant.
      std::snprintf(buf, sizeof(buf),
                    "Measured wall clock: avg %.1f ms/query\n",
                    total_wall_ms / static_cast<double>(count));
      os << buf;
    }
  }
  BatchStats batching = SummarizeBatching(totals);
  std::snprintf(buf, sizeof(buf),
                "Batching: avg %.1f batches/query (%.1f prompts/batch), "
                "cache hits %lld (%.0f%% of prompts)\n",
                static_cast<double>(batching.num_batches) /
                    static_cast<double>(outcomes.size()),
                batching.PromptsPerBatch(),
                static_cast<long long>(batching.cache_hits),
                100.0 * batching.CacheHitRate());
  os << buf;
  int64_t table_lookups = 0;
  int64_t table_hits = 0;
  int64_t table_exact_hits = 0;
  int64_t table_subsumption_hits = 0;
  int64_t pages_prefetched = 0;
  int64_t pages_overfetched = 0;
  for (const QueryOutcome& o : outcomes) {
    table_lookups += o.table_cache_lookups;
    table_hits += o.table_cache_hits;
    table_exact_hits += o.table_cache_exact_hits;
    table_subsumption_hits += o.table_cache_subsumption_hits;
    pages_prefetched += o.scan_pages_prefetched;
    pages_overfetched += o.scan_pages_overfetched;
  }
  if (table_lookups > 0) {
    // Table-level reuse: whole materialisations served without any LLM
    // round trip (cross-query MaterialisationCache), split into exact
    // descriptor matches and predicate-subsumption serves.
    std::snprintf(buf, sizeof(buf),
                  "Materialisation cache: %lld table hits / %lld lookups "
                  "(%.0f%%), %lld exact + %lld by subsumption\n",
                  static_cast<long long>(table_hits),
                  static_cast<long long>(table_lookups),
                  100.0 * static_cast<double>(table_hits) /
                      static_cast<double>(table_lookups),
                  static_cast<long long>(table_exact_hits),
                  static_cast<long long>(table_subsumption_hits));
    os << buf;
  }
  if (pages_prefetched > 0) {
    // Speculative paging: pages bought ahead of consumption, and the
    // subset bought past the page that terminated its scan.
    std::snprintf(buf, sizeof(buf),
                  "Key-scan prefetch: %lld pages prefetched, %lld "
                  "overfetched\n",
                  static_cast<long long>(pages_prefetched),
                  static_cast<long long>(pages_overfetched));
    os << buf;
  }
  int64_t store_table_hits = 0;
  for (const QueryOutcome& o : outcomes) {
    store_table_hits += o.table_cache_store_hits;
  }
  if (store_table_hits > 0 || totals.store_hits > 0) {
    // Cross-process reuse: work recovered from the persistent store —
    // this run never paid an LLM round trip for any of it.
    std::snprintf(buf, sizeof(buf),
                  "Persistent store: %lld table hits, %lld prompt hits\n",
                  static_cast<long long>(store_table_hits),
                  static_cast<long long>(totals.store_hits));
    os << buf;
  }
  // Per-backend spend. One line per model keeps single-backend reports
  // unchanged in shape while a cascade (critic on the strong model, bulk
  // retrieval on the cheap one) shows where the tokens actually went.
  if (totals.by_model.size() > 1) {
    os << "Per-backend spend:\n";
    for (const auto& [name, usage] : totals.by_model) {
      double share =
          totals.num_prompts > 0
              ? 100.0 * static_cast<double>(usage.num_prompts) /
                    static_cast<double>(totals.num_prompts)
              : 0.0;
      std::snprintf(buf, sizeof(buf),
                    "  %-24s %6lld prompts (%3.0f%%), %8lld prompt tok, "
                    "%8lld completion tok, %lld batches\n",
                    name.c_str(),
                    static_cast<long long>(usage.num_prompts), share,
                    static_cast<long long>(usage.prompt_tokens),
                    static_cast<long long>(usage.completion_tokens),
                    static_cast<long long>(usage.num_batches));
      os << buf;
    }
  }
  return os.str();
}

std::string FormatStoreStats(const store::StoreStats& stats) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Persistent store: %lld materialisations + %lld prompts "
                "live (%lld/%lld bytes live/file)\n",
                static_cast<long long>(stats.live_materialisations),
                static_cast<long long>(stats.live_prompts),
                static_cast<long long>(stats.live_bytes),
                static_cast<long long>(stats.file_bytes));
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "  recovered %lld+%lld records (%lld dropped) in %.1f ms; "
                "%lld appends (%lld errors); %lld vacuums, %lld evictions\n",
                static_cast<long long>(stats.materialisations_recovered),
                static_cast<long long>(stats.prompts_recovered),
                static_cast<long long>(stats.records_dropped),
                static_cast<double>(stats.recovery_micros) / 1000.0,
                static_cast<long long>(stats.appends),
                static_cast<long long>(stats.append_errors),
                static_cast<long long>(stats.vacuums),
                static_cast<long long>(stats.evictions));
  os << buf;
  return os.str();
}

}  // namespace galois::eval
