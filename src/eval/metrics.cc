#include "eval/metrics.h"

#include <cmath>
#include <vector>

#include "common/strings.h"

namespace galois::eval {

double CardinalityRatio(size_t rd_rows, size_t rm_rows) {
  if (rd_rows + rm_rows == 0) return 1.0;
  return 2.0 * static_cast<double>(rd_rows) /
         static_cast<double>(rd_rows + rm_rows);
}

double CardinalityDiffPercent(size_t rd_rows, size_t rm_rows) {
  return (1.0 - CardinalityRatio(rd_rows, rm_rows)) * 100.0;
}

namespace {

/// Canonical form for the lenient comparison: lower-cased, trimmed,
/// leading article and disambiguating ", ..." suffix removed.
std::string CanonicalString(const std::string& s) {
  std::string t = ToLower(Trim(s));
  if (StartsWith(t, "the ")) t = t.substr(4);
  size_t comma = t.find(", ");
  if (comma != std::string::npos) t = t.substr(0, comma);
  const std::string kLangSuffix = " language";
  if (EndsWith(t, kLangSuffix)) {
    t = t.substr(0, t.size() - kLangSuffix.size());
  }
  return Trim(t);
}

/// "j. smith" vs "james smith": abbreviated given name.
bool AbbreviatedNameMatch(const std::string& a, const std::string& b) {
  std::vector<std::string> ta = Split(a, ' ', true, true);
  std::vector<std::string> tb = Split(b, ' ', true, true);
  if (ta.size() < 2 || tb.size() < 2) return false;
  if (ta.back() != tb.back()) return false;
  const std::string& fa = ta.front();
  const std::string& fb = tb.front();
  auto is_initial = [](const std::string& s) {
    return s.size() == 2 && s[1] == '.';
  };
  if (is_initial(fa) && !fb.empty()) return fa[0] == fb[0];
  if (is_initial(fb) && !fa.empty()) return fb[0] == fa[0];
  return false;
}

}  // namespace

bool LenientStringMatch(const std::string& truth,
                        const std::string& predicted) {
  std::string a = CanonicalString(truth);
  std::string b = CanonicalString(predicted);
  if (a == b) return true;
  return AbbreviatedNameMatch(a, b);
}

bool CellMatches(const Value& truth, const Value& predicted) {
  if (truth.is_null() || predicted.is_null()) return false;
  // Numeric comparison with 5% relative tolerance.
  auto td = truth.AsDouble();
  auto pd = predicted.AsDouble();
  if (td.ok() && pd.ok()) {
    double t = td.value();
    double p = pd.value();
    if (t == 0.0) return std::fabs(p) < 1e-9;
    return std::fabs(p - t) / std::fabs(t) < kNumericTolerance;
  }
  if (truth.type() == DataType::kDate &&
      predicted.type() == DataType::kDate) {
    return truth.date_packed() == predicted.date_packed();
  }
  if (truth.type() == DataType::kString &&
      predicted.type() == DataType::kString) {
    return LenientStringMatch(truth.string_value(),
                              predicted.string_value());
  }
  // Mixed types (e.g. the model produced a string for a numeric column and
  // cleaning was off): compare rendered forms leniently.
  return EqualsIgnoreCase(truth.ToString(), predicted.ToString());
}

CellMatchResult MatchCells(const Relation& truth,
                           const Relation& predicted) {
  CellMatchResult result;
  const size_t cols = truth.NumColumns();
  result.total_cells = truth.NumRows() * cols;
  if (result.total_cells == 0) return result;

  std::vector<bool> used(predicted.NumRows(), false);
  for (size_t t = 0; t < truth.NumRows(); ++t) {
    // Greedy: best unused predicted row by matched-cell count.
    size_t best_row = predicted.NumRows();
    size_t best_score = 0;
    for (size_t p = 0; p < predicted.NumRows(); ++p) {
      if (used[p]) continue;
      const size_t compare_cols =
          std::min(cols, predicted.NumColumns());
      size_t score = 0;
      for (size_t c = 0; c < compare_cols; ++c) {
        if (CellMatches(truth.At(t, c), predicted.At(p, c))) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best_row = p;
      }
    }
    if (best_row < predicted.NumRows() && best_score > 0) {
      used[best_row] = true;
      result.matched_cells += best_score;
    }
  }
  return result;
}

double BatchStats::PromptsPerBatch() const {
  if (num_batches == 0) return 0.0;
  return static_cast<double>(num_prompts) /
         static_cast<double>(num_batches);
}

double BatchStats::CacheHitRate() const {
  // cache_hits counts answers served without a model round trip; those
  // prompts are not in num_prompts (the inner meter never saw them), so
  // the denominator is everything the caller asked for.
  const int64_t asked = num_prompts + cache_hits;
  if (asked == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(asked);
}

BatchStats SummarizeBatching(const llm::CostMeter& cost) {
  BatchStats stats;
  stats.num_prompts = cost.num_prompts;
  stats.num_batches = cost.num_batches;
  stats.cache_hits = cost.cache_hits;
  return stats;
}

llm::CostMeter TotalCost(const std::vector<llm::CostMeter>& costs) {
  llm::CostMeter total;
  for (const llm::CostMeter& c : costs) {
    total.num_prompts += c.num_prompts;
    total.prompt_tokens += c.prompt_tokens;
    total.completion_tokens += c.completion_tokens;
    total.simulated_latency_ms += c.simulated_latency_ms;
    total.cache_hits += c.cache_hits;
    total.num_batches += c.num_batches;
    for (const auto& [name, usage] : c.by_model) {
      total.by_model[name] += usage;
    }
  }
  return total;
}

}  // namespace galois::eval
