#ifndef GALOIS_EVAL_HARNESS_H_
#define GALOIS_EVAL_HARNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/galois_executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/model_profile.h"

namespace galois::eval {

/// What to run for each query.
struct ExperimentConfig {
  bool run_galois = true;        // R_M
  bool run_nl_qa = false;        // T_M
  bool run_cot_qa = false;       // T^C_M
  core::ExecutionOptions options;
  uint64_t llm_seed = 7;

  /// Share one core::MaterialisationCache across the workload's queries:
  /// a table materialisation computed for one query serves every later
  /// query with the same fingerprint (incl. narrower column sets), with
  /// zero LLM round trips. Per-query traffic lands in
  /// QueryOutcome::table_cache_{lookups,hits}.
  bool use_materialisation_cache = false;

  /// Directory of a persistent result store (store::ResultStore). When
  /// non-empty, the run journals its materialisations and prompt
  /// completions there (every backend gets a PromptCache so completions
  /// are captured), and a later run pointed at the same path warm-starts
  /// from it — the cross-*process* version of use_materialisation_cache.
  std::string store_path;
};

/// Per-query measurements.
struct QueryOutcome {
  int query_id = 0;
  knowledge::QueryClass query_class = knowledge::QueryClass::kSelection;
  size_t rd_rows = 0;

  // Galois (R_M).
  std::optional<size_t> rm_rows;
  std::optional<double> cardinality_diff_percent;
  std::optional<CellMatchResult> galois_match;
  llm::CostMeter galois_cost;
  /// Measured wall-clock time of the Galois run. Unlike
  /// galois_cost.simulated_latency_ms (the modelled API latency, which is
  /// invariant under parallel_batches), this shrinks when round trips
  /// overlap — the pair shows how much of the simulated budget
  /// concurrency actually recovers.
  double galois_wall_ms = 0.0;
  /// Materialisation-cache traffic of this query (0/0 when the cache is
  /// disabled): LLM tables looked up, and tables served without any LLM
  /// round trip — split into exact-descriptor hits and predicate-
  /// subsumption hits (served from an entry cached under a weaker
  /// filter). `table_cache_store_hits` counts the hits served by
  /// entries recovered from the persistent store (store_path).
  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;
  /// Speculative key-scan paging: pages bought ahead of consumption, and
  /// the subset bought past the terminating page.
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;

  // Baselines.
  std::optional<CellMatchResult> nl_match;
  std::optional<CellMatchResult> cot_match;
};

/// Runs the workload for one model profile and collects the measurements
/// that Tables 1 and 2 aggregate.
Result<std::vector<QueryOutcome>> RunExperiment(
    const knowledge::SpiderLikeWorkload& workload,
    const llm::ModelProfile& profile, const ExperimentConfig& config);

/// Table 1 aggregate: average cardinality-difference percent over queries
/// with non-empty ground truth.
double AverageCardinalityDiff(const std::vector<QueryOutcome>& outcomes);

/// Which accessor to average in Table2Average.
enum class Method { kGalois, kNlQa, kCotQa };

/// Table 2 aggregate: mean cell-match percent for a method over one query
/// class ("All" = std::nullopt).
double Table2Average(const std::vector<QueryOutcome>& outcomes,
                     Method method,
                     std::optional<knowledge::QueryClass> cls);

}  // namespace galois::eval

#endif  // GALOIS_EVAL_HARNESS_H_
