#ifndef GALOIS_CLUSTER_CLUSTER_COORDINATOR_H_
#define GALOIS_CLUSTER_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/database.h"
#include "cluster/cluster_options.h"
#include "common/result.h"
#include "net/galois_client.h"
#include "net/protocol.h"

namespace galois::cluster {

/// Health and traffic of one cluster node, as reported by
/// ClusterCoordinator::stats().
struct ClusterNodeStats {
  std::string endpoint;  // "host:port"
  /// Breaker state name ("closed" / "open" / "half-open",
  /// llm::CircuitStateName): consecutive shard faults past
  /// ClusterOptions::failure_threshold open the breaker, cooldown_ms
  /// later it half-opens for a probe dispatch.
  std::string breaker;
  bool breaker_open = false;
  int64_t shards_dispatched = 0;
  int64_t shards_ok = 0;
  /// Transport faults + retryable server errors attributed to the node.
  int64_t faults = 0;
  /// Pooled-client auto-reconnect counters (summed over idle clients;
  /// clients checked out at snapshot time are not included).
  int64_t reconnects = 0;
  int64_t reconnect_failures = 0;
};

/// Aggregate scatter-gather statistics.
struct ClusterStats {
  /// Queries routed through the cluster (at least one LLM shard).
  int64_t queries = 0;
  /// Queries executed locally on the coordinator (no LLM table).
  int64_t queries_local = 0;
  /// Shard dispatches attempted, including failover re-dispatches.
  int64_t shards_dispatched = 0;
  /// Failover re-dispatches: attempts made after a previous node failed
  /// the same shard mid-query.
  int64_t redispatches = 0;
  std::vector<ClusterNodeStats> nodes;

  /// Human-readable one-per-line rendering (ServerStats::ToString's
  /// sibling).
  std::string ToString() const;
};

/// Scatter-gather execution across N galoisd nodes, behind the
/// Database/Session facade (Database::Open constructs one when
/// DatabaseOptions::cluster.nodes is non-empty; Session routes through
/// it transparently).
///
/// Per query: the coordinator compiles the query locally and lists its
/// LLM tables as shard specs (GaloisExecutor::PlanShards); each shard is
/// dispatched as a kPartialQuery frame to a node chosen by stable table
/// affinity (FNV-1a of the table name — so a table's materialisation
/// cache history lives on one node, and per-query meters stay
/// byte-identical to the single-Database facade); partial relations come
/// back with per-shard CostMeter slices, are injected as table overlays
/// into a local merge run (zero LLM spend — every prompt was billed on
/// the nodes), and the shard meters sum into the query's meter in FROM
/// order. Queries with no LLM table, and provenance-recording queries
/// (traces do not travel; see net/protocol.h), run locally.
///
/// Failover: a transport fault or retryable server error (admission
/// rejection, drain) re-dispatches the lost shard to the next healthy
/// node — the re-run's round trips are re-billed, relations stay
/// byte-identical (the shard either never executed or its result was
/// lost with the node). Deterministic errors (plan errors, version-skew
/// shard mismatches) propagate immediately, first-in-FROM-order, exactly
/// like the facade. Consecutive faults past failure_threshold open a
/// node-level breaker: the node is skipped at dispatch until cooldown_ms
/// passes, then probed half-open.
///
/// Thread-safe: Query may be called from any number of sessions
/// concurrently. Connections are pooled per node (GaloisClient is
/// single-threaded; a client is checked out per dispatch).
class ClusterCoordinator {
 public:
  /// Verifies at least one node answers a ping (unreachable nodes start
  /// with one recorded fault), then returns the coordinator. `db` is
  /// borrowed and must outlive it.
  static Result<std::unique_ptr<ClusterCoordinator>> Connect(
      const Database* db, ClusterOptions options);

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Executes `sql` under the session's options snapshot. The snapshot
  /// must match the nodes' default execution options — shards execute
  /// remotely under node defaults, and the partial-query protocol
  /// rejects descriptor mismatches as version skew.
  Result<QueryResult> Query(const std::string& sql,
                            const core::ExecutionOptions& snapshot) const;

  /// Consistent snapshot of per-node health and aggregate counters.
  ClusterStats stats() const;

 private:
  /// One node: its endpoint, a checkout pool of single-threaded clients,
  /// and breaker health. Pool under its own mutex; health and counters
  /// under the coordinator-wide mu_.
  struct NodeState {
    NodeSpec spec;
    std::mutex pool_mu;
    std::vector<std::unique_ptr<net::GaloisClient>> pool;  // idle clients
    // Guarded by ClusterCoordinator::mu_:
    int64_t consecutive_faults = 0;
    int64_t last_fault_ms = 0;
    int64_t dispatches = 0;
    int64_t ok = 0;
    int64_t faults = 0;
  };

  ClusterCoordinator(const Database* db, ClusterOptions options);

  /// Stable shard-to-node affinity (FNV-1a of the table name).
  size_t PreferredNode(const std::string& table) const;
  /// Breaker gate: closed, or open with the cooldown expired (half-open
  /// probe). Caller holds mu_.
  bool BreakerAllowsLocked(const NodeState& node, int64_t now_ms) const;

  Result<std::unique_ptr<net::GaloisClient>> AcquireClient(
      NodeState* node) const;
  void ReleaseClient(NodeState* node,
                     std::unique_ptr<net::GaloisClient> client) const;

  /// Dispatches one shard starting at `preferred`, re-dispatching to the
  /// next healthy node on node faults; deterministic errors return
  /// immediately.
  Result<net::PartialQueryResponse> DispatchShard(
      const net::PartialQueryRequest& request, size_t preferred) const;

  /// The facade-identical local path for queries with no LLM shard.
  Result<QueryResult> RunLocal(const std::string& sql,
                               const core::ExecutionOptions& snapshot) const;

  const Database* db_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  mutable std::mutex mu_;  // health + aggregate counters
  mutable int64_t queries_ = 0;
  mutable int64_t queries_local_ = 0;
  mutable int64_t shards_dispatched_ = 0;
  mutable int64_t redispatches_ = 0;
};

}  // namespace galois::cluster

#endif  // GALOIS_CLUSTER_CLUSTER_COORDINATOR_H_
