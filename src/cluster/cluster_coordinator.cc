#include "cluster/cluster_coordinator.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/galois_executor.h"
#include "llm/http_llm.h"
#include "llm/resilience.h"
#include "net/socket.h"

namespace galois::cluster {

namespace {

std::string EndpointName(const NodeSpec& spec) {
  return spec.host + ":" + std::to_string(spec.port);
}

/// Concatenates slice relations in slice order. Slices partition the
/// table's global key-scan order, so concatenation reproduces the
/// unsharded materialisation row-for-row.
Relation ConcatSlices(std::vector<Relation> slices) {
  Relation out = std::move(slices.front());
  for (size_t i = 1; i < slices.size(); ++i) {
    for (const Tuple& row : slices[i].rows()) {
      out.AddRowUnchecked(row);
    }
  }
  return out;
}

}  // namespace

std::string ClusterStats::ToString() const {
  std::string out;
  out += "queries            " + std::to_string(queries) + "\n";
  out += "queries_local      " + std::to_string(queries_local) + "\n";
  out += "shards_dispatched  " + std::to_string(shards_dispatched) + "\n";
  out += "redispatches       " + std::to_string(redispatches) + "\n";
  for (const ClusterNodeStats& n : nodes) {
    out += "node " + n.endpoint + ": breaker=" + n.breaker +
           " dispatched=" + std::to_string(n.shards_dispatched) +
           " ok=" + std::to_string(n.shards_ok) +
           " faults=" + std::to_string(n.faults) +
           " reconnects=" + std::to_string(n.reconnects) +
           " reconnect_failures=" + std::to_string(n.reconnect_failures) +
           "\n";
  }
  return out;
}

ClusterCoordinator::ClusterCoordinator(const Database* db,
                                       ClusterOptions options)
    : db_(db), options_(std::move(options)) {
  nodes_.reserve(options_.nodes.size());
  for (const NodeSpec& spec : options_.nodes) {
    auto node = std::make_unique<NodeState>();
    node->spec = spec;
    nodes_.push_back(std::move(node));
  }
}

Result<std::unique_ptr<ClusterCoordinator>> ClusterCoordinator::Connect(
    const Database* db, ClusterOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("cluster: null database");
  }
  if (options.nodes.empty()) {
    return Status::InvalidArgument("cluster: no nodes configured");
  }
  std::unique_ptr<ClusterCoordinator> coord(
      new ClusterCoordinator(db, std::move(options)));
  int reachable = 0;
  std::string last_error;
  for (size_t i = 0; i < coord->nodes_.size(); ++i) {
    NodeState* node = coord->nodes_[i].get();
    Result<std::unique_ptr<net::GaloisClient>> client =
        coord->AcquireClient(node);
    Status ping = client.ok() ? client.value()->Ping() : client.status();
    if (ping.ok()) {
      ++reachable;
      std::lock_guard<std::mutex> lock(coord->mu_);
      node->consecutive_faults = 0;
      coord->ReleaseClient(node, std::move(client).value());
    } else {
      // The node starts with one recorded fault; dispatch will probe it
      // again (well short of opening its breaker).
      last_error = EndpointName(node->spec) + ": " + ping.message();
      std::lock_guard<std::mutex> lock(coord->mu_);
      ++node->faults;
      ++node->consecutive_faults;
      node->last_fault_ms = net::NowMs();
    }
  }
  if (reachable == 0) {
    return Status::IoError("cluster: no node reachable (last: " + last_error +
                           ")");
  }
  return coord;
}

size_t ClusterCoordinator::PreferredNode(const std::string& table) const {
  // FNV-1a: stable across runs and processes, so a table's shards always
  // land on the same node and that node's materialisation-cache history
  // for the table matches what a single local Database would have built.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : table) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % nodes_.size());
}

bool ClusterCoordinator::BreakerAllowsLocked(const NodeState& node,
                                             int64_t now_ms) const {
  if (options_.failure_threshold <= 0) return true;  // breaker disabled
  if (node.consecutive_faults < options_.failure_threshold) return true;
  // Open; allow one probe dispatch once the cooldown has passed
  // (half-open). A failed probe refreshes last_fault_ms.
  return now_ms - node.last_fault_ms >= options_.cooldown_ms;
}

Result<std::unique_ptr<net::GaloisClient>> ClusterCoordinator::AcquireClient(
    NodeState* node) const {
  {
    std::lock_guard<std::mutex> lock(node->pool_mu);
    if (!node->pool.empty()) {
      std::unique_ptr<net::GaloisClient> client = std::move(node->pool.back());
      node->pool.pop_back();
      return client;
    }
  }
  net::ClientOptions copts;
  copts.host = node->spec.host;
  copts.port = node->spec.port;
  copts.connect_timeout_ms = options_.connect_timeout_ms;
  copts.io_timeout_ms = options_.io_timeout_ms;
  copts.reconnect_attempts = options_.reconnect_attempts;
  copts.reconnect_backoff_ms = options_.reconnect_backoff_ms;
  GALOIS_ASSIGN_OR_RETURN(net::GaloisClient client,
                          net::GaloisClient::Connect(std::move(copts)));
  return std::make_unique<net::GaloisClient>(std::move(client));
}

void ClusterCoordinator::ReleaseClient(
    NodeState* node, std::unique_ptr<net::GaloisClient> client) const {
  std::lock_guard<std::mutex> lock(node->pool_mu);
  node->pool.push_back(std::move(client));
}

Result<net::PartialQueryResponse> ClusterCoordinator::DispatchShard(
    const net::PartialQueryRequest& request, size_t preferred) const {
  Status last =
      Status::IoError("cluster: every node's breaker is open for shard '" +
                      request.alias + "'");
  bool attempted = false;
  for (size_t k = 0; k < nodes_.size(); ++k) {
    const size_t idx = (preferred + k) % nodes_.size();
    NodeState* node = nodes_[idx].get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!BreakerAllowsLocked(*node, net::NowMs())) continue;
      ++node->dispatches;
      ++shards_dispatched_;
      if (attempted) ++redispatches_;
    }
    attempted = true;
    Result<std::unique_ptr<net::GaloisClient>> client = AcquireClient(node);
    Result<net::PartialQueryResponse> response =
        client.ok() ? client.value()->PartialQuery(request)
                    : Result<net::PartialQueryResponse>(client.status());
    if (response.ok()) {
      ReleaseClient(node, std::move(client).value());
      if (response.value().table != request.table ||
          response.value().alias != request.alias ||
          response.value().slice_index != request.slice_index ||
          response.value().slice_count != request.slice_count) {
        // Deterministic: the node answered a different shard than asked.
        return Status::ParseError("cluster: node " + EndpointName(node->spec) +
                                  " answered the wrong shard");
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++node->ok;
      node->consecutive_faults = 0;
      return response;
    }
    if (client.ok()) ReleaseClient(node, std::move(client).value());
    const Status& s = response.status();
    const bool node_fault = s.code() == StatusCode::kIoError ||
                            llm::IsRetryableLlmError(s);
    if (!node_fault) {
      // Deterministic failure (plan error, version skew, exceeded
      // deadline): every node would answer the same — propagate, exactly
      // like the facade, and leave the node's health alone.
      return s;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++node->faults;
      ++node->consecutive_faults;
      node->last_fault_ms = net::NowMs();
    }
    last = s;
  }
  return last;
}

Result<QueryResult> ClusterCoordinator::RunLocal(
    const std::string& sql, const core::ExecutionOptions& snapshot) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_local_;
  }
  core::GaloisExecutor executor(db_->model(), &db_->catalog(), snapshot);
  executor.set_materialisation_cache(db_->materialisation_cache());
  GALOIS_ASSIGN_OR_RETURN(core::QueryOutput out, executor.RunSql(sql));
  QueryResult result;
  result.relation = std::move(out.relation);
  result.cost = std::move(out.cost);
  result.trace = std::move(out.trace);
  result.table_cache_lookups = out.table_cache_lookups;
  result.table_cache_hits = out.table_cache_hits;
  result.table_cache_exact_hits = out.table_cache_exact_hits;
  result.table_cache_subsumption_hits = out.table_cache_subsumption_hits;
  result.table_cache_store_hits = out.table_cache_store_hits;
  result.scan_pages_prefetched = out.scan_pages_prefetched;
  result.scan_pages_overfetched = out.scan_pages_overfetched;
  result.physical_plan = std::move(out.physical_plan);
  return result;
}

Result<QueryResult> ClusterCoordinator::Query(
    const std::string& sql, const core::ExecutionOptions& snapshot) const {
  const auto started = std::chrono::steady_clock::now();
  auto finish = [&started](QueryResult result) {
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    return result;
  };

  // Scatter plan: parse/plan errors surface here, facade-identically,
  // before anything touches the network.
  core::GaloisExecutor planner(db_->model(), &db_->catalog(), snapshot);
  GALOIS_ASSIGN_OR_RETURN(std::vector<core::ShardSpec> shards,
                          planner.PlanShards(sql));
  if (shards.empty()) {
    GALOIS_ASSIGN_OR_RETURN(QueryResult local, RunLocal(sql, snapshot));
    return finish(std::move(local));
  }

  int healthy = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_;
    const int64_t now = net::NowMs();
    for (const auto& node : nodes_) {
      if (BreakerAllowsLocked(*node, now)) ++healthy;
    }
  }
  if (healthy == 0) {
    return Status::IoError("cluster: every node's breaker is open");
  }

  const int64_t deadline_ms = snapshot.query_deadline_ms > 0
                                  ? snapshot.query_deadline_ms
                                  : options_.shard_deadline_ms;
  const int64_t slices_per_shard =
      (options_.split_key_ranges && healthy > 1) ? healthy : 1;

  // One dispatch per (shard, slice). Shard order is FROM order; slices
  // are contiguous key ranges in global key order.
  struct Dispatch {
    net::PartialQueryRequest request;
    size_t preferred = 0;
  };
  std::vector<Dispatch> dispatches;
  for (const core::ShardSpec& shard : shards) {
    const size_t preferred = PreferredNode(shard.table);
    for (int64_t s = 0; s < slices_per_shard; ++s) {
      Dispatch d;
      d.request.sql = sql;
      d.request.table = shard.table;
      d.request.alias = shard.alias;
      d.request.columns = shard.columns;
      d.request.descriptor = shard.descriptor;
      d.request.slice_index = s;
      d.request.slice_count = slices_per_shard;
      d.request.deadline_ms = deadline_ms;
      // Whole-table shards stick to their affinity node (cache-history
      // parity with the facade); key-range slices fan out from it.
      d.preferred = (preferred + static_cast<size_t>(s)) % nodes_.size();
      dispatches.push_back(std::move(d));
    }
  }

  // Scatter on dedicated threads — NOT the shared phase pool: in-process
  // deployments (the e2e suite) run the node servers on that pool, and
  // parking coordinator dispatches on it while they wait for node work
  // scheduled behind them would deadlock.
  std::vector<Result<net::PartialQueryResponse>> responses(
      dispatches.size(), Status::Internal("cluster: shard not dispatched"));
  {
    std::vector<std::thread> threads;
    threads.reserve(dispatches.size());
    for (size_t i = 0; i < dispatches.size(); ++i) {
      threads.emplace_back([this, &dispatches, &responses, i]() {
        responses[i] =
            DispatchShard(dispatches[i].request, dispatches[i].preferred);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // First failure in FROM order wins — the order the facade's sequential
  // executor would have hit it.
  for (const Result<net::PartialQueryResponse>& r : responses) {
    if (!r.ok()) return r.status();
  }

  // Gather: merge slices per shard, sum the shard meters in FROM order,
  // overlay the partial relations into a local merge run (which spends
  // zero prompts — every materialisation was billed on the nodes).
  llm::CostMeter cost;
  int64_t lookups = 0, hits = 0, exact = 0, subsumption = 0, store = 0;
  int64_t prefetched = 0, overfetched = 0;
  std::vector<core::TableOverlay> overlays;
  overlays.reserve(shards.size());
  size_t next = 0;
  for (const core::ShardSpec& shard : shards) {
    std::vector<Relation> slices;
    slices.reserve(static_cast<size_t>(slices_per_shard));
    for (int64_t s = 0; s < slices_per_shard; ++s) {
      net::PartialQueryResponse& r = responses[next++].value();
      cost += r.cost;
      lookups += r.table_cache_lookups;
      hits += r.table_cache_hits;
      exact += r.table_cache_exact_hits;
      subsumption += r.table_cache_subsumption_hits;
      store += r.table_cache_store_hits;
      prefetched += r.scan_pages_prefetched;
      overfetched += r.scan_pages_overfetched;
      slices.push_back(std::move(r.relation));
    }
    core::TableOverlay overlay;
    overlay.alias = shard.alias;
    overlay.relation = ConcatSlices(std::move(slices));
    overlays.push_back(std::move(overlay));
  }

  core::GaloisExecutor merger(db_->model(), &db_->catalog(), snapshot);
  GALOIS_ASSIGN_OR_RETURN(core::QueryOutput out,
                          merger.RunSqlWithOverlays(sql, std::move(overlays)));
  cost += out.cost;  // non-LLM residue of the merge run (normally zero)

  QueryResult result;
  result.relation = std::move(out.relation);
  result.cost = std::move(cost);
  result.trace = std::move(out.trace);
  result.table_cache_lookups = lookups + out.table_cache_lookups;
  result.table_cache_hits = hits + out.table_cache_hits;
  result.table_cache_exact_hits = exact + out.table_cache_exact_hits;
  result.table_cache_subsumption_hits =
      subsumption + out.table_cache_subsumption_hits;
  result.table_cache_store_hits = store + out.table_cache_store_hits;
  result.scan_pages_prefetched = prefetched + out.scan_pages_prefetched;
  result.scan_pages_overfetched = overfetched + out.scan_pages_overfetched;
  result.physical_plan = std::move(out.physical_plan);
  return finish(std::move(result));
}

ClusterStats ClusterCoordinator::stats() const {
  ClusterStats s;
  std::vector<ClusterNodeStats> nodes(nodes_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queries = queries_;
    s.queries_local = queries_local_;
    s.shards_dispatched = shards_dispatched_;
    s.redispatches = redispatches_;
    const int64_t now = net::NowMs();
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const NodeState& node = *nodes_[i];
      ClusterNodeStats& n = nodes[i];
      n.endpoint = EndpointName(node.spec);
      llm::CircuitState state = llm::CircuitState::kClosed;
      if (options_.failure_threshold > 0 &&
          node.consecutive_faults >= options_.failure_threshold) {
        state = (now - node.last_fault_ms >= options_.cooldown_ms)
                    ? llm::CircuitState::kHalfOpen
                    : llm::CircuitState::kOpen;
      }
      n.breaker = llm::CircuitStateName(state);
      n.breaker_open = state != llm::CircuitState::kClosed;
      n.shards_dispatched = node.dispatches;
      n.shards_ok = node.ok;
      n.faults = node.faults;
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeState* node = nodes_[i].get();
    std::lock_guard<std::mutex> lock(node->pool_mu);
    for (const std::unique_ptr<net::GaloisClient>& client : node->pool) {
      nodes[i].reconnects += client->client_stats().reconnects;
      nodes[i].reconnect_failures += client->client_stats().reconnect_failures;
    }
  }
  s.nodes = std::move(nodes);
  return s;
}

}  // namespace galois::cluster
