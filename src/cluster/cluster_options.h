#ifndef GALOIS_CLUSTER_CLUSTER_OPTIONS_H_
#define GALOIS_CLUSTER_CLUSTER_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace galois::cluster {

/// One galoisd endpoint the coordinator scatters shards to.
struct NodeSpec {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Configuration of a ClusterCoordinator, embedded in DatabaseOptions
/// (dependency-free on purpose: api/database.h includes this header, and
/// the coordinator proper includes api/database.h).
///
/// Every node must serve the same catalog, workload and model
/// configuration (same seed for simulated backends) as the coordinator's
/// own Database — the coordinator plans locally and dispatches shards on
/// the assumption that a node re-planning the same SQL lands on the same
/// shard, which the partial-query protocol verifies per dispatch
/// (descriptor match) but cannot repair.
struct ClusterOptions {
  /// Empty = no cluster; Database::Open runs everything locally.
  std::vector<NodeSpec> nodes;

  /// Transport knobs for the per-node GaloisClient pools.
  int64_t connect_timeout_ms = 2000;
  int64_t io_timeout_ms = 10000;
  /// Per-shard deadline sent to nodes (0 = none).
  int64_t shard_deadline_ms = 0;
  /// Bounded auto-reconnect of a pooled client whose connection was
  /// poisoned by an earlier fault (GaloisClient's entry-only reconnect).
  int reconnect_attempts = 2;
  int64_t reconnect_backoff_ms = 50;

  /// Node-level circuit breaker: this many consecutive shard faults
  /// (transport faults or retryable server errors) open the breaker —
  /// the node is skipped at dispatch until cooldown_ms has passed, then
  /// probed again half-open.
  int failure_threshold = 3;
  int64_t cooldown_ms = 2000;

  /// Opt-in key-range sharding: split each LLM table's per-key work into
  /// one contiguous key-range slice per healthy node. Slices partition
  /// the scan order, so merged relations are byte-identical to an
  /// *uncached* single-node run of the same query. Caching and cost
  /// attribution are NOT facade-identical though — every slice re-runs
  /// the key scan, and sliced tables bypass the nodes' materialisation
  /// caches (a slice cached under the full-table descriptor would
  /// poison later queries), so a facade serving the query by cache
  /// subsumption can legitimately answer differently. This trades cache
  /// reuse and exact meter parity for intra-query parallelism.
  bool split_key_ranges = false;
};

}  // namespace galois::cluster

#endif  // GALOIS_CLUSTER_CLUSTER_OPTIONS_H_
