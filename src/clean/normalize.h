#ifndef GALOIS_CLEAN_NORMALIZE_H_
#define GALOIS_CLEAN_NORMALIZE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace galois::clean {

/// Simple per-column domain constraint. Values outside the range are
/// treated as hallucinations and rejected (Section 4: "The enforcing of
/// type and domain constraints is a simple but crucial step to limit the
/// incorrect output due to model hallucinations").
struct DomainConstraint {
  std::optional<double> min;
  std::optional<double> max;

  bool Admits(double v) const {
    if (min.has_value() && v < *min) return false;
    if (max.has_value() && v > *max) return false;
    return true;
  }
};

/// True when the completion is the model's "don't know" marker.
bool IsUnknown(const std::string& text);

/// True when a key-scan page signals exhaustion ("No more results").
bool IsNoMoreResults(const std::string& text);

/// Strips a verbose sentence wrapper: "The population of Rome is 2.8
/// million." -> "2.8 million". Returns the input unchanged when no wrapper
/// is detected.
std::string StripVerbosity(const std::string& text);

/// Splits a list completion ("Rome, Paris, Berlin" or bulleted lines) into
/// trimmed items, dropping empties and "No more results" markers.
std::vector<std::string> SplitList(const std::string& completion);

/// Parses a noisily-formatted number: "1,234,567", "1.2k", "3M", "2
/// million", "about 120", "~45", "$300". Returns an error when no numeric
/// reading exists.
Result<double> ParseNumber(const std::string& text);

/// Parses a date in any of the formats the models emit: "1962-08-04",
/// "August 4, 1962", "4 August 1962", "04/08/1962" (day/month/year).
Result<Value> ParseDate(const std::string& text);

/// Parses yes/no/true/false (case-insensitive, optional punctuation).
Result<bool> ParseBool(const std::string& text);

/// Converts a raw model answer into a typed cell value (workflow step 3:
/// "Convert the string of answers from the LLM to a set of CELL values").
///
///  * "Unknown" -> NULL;
///  * expected numeric types run ParseNumber and the domain check,
///    returning NULL when the value is rejected;
///  * dates run ParseDate; booleans ParseBool;
///  * strings are trimmed with trailing punctuation removed.
Result<Value> NormalizeCell(const std::string& raw, DataType expected,
                            const DomainConstraint* domain = nullptr);

/// Default domain for a column, inferred from its name: years within
/// [1000, 2100], populations/counts/capacities non-negative, ages within
/// [0, 130]. Returns an unconstrained domain otherwise.
DomainConstraint DefaultDomainForColumn(const std::string& column_name);

}  // namespace galois::clean

#endif  // GALOIS_CLEAN_NORMALIZE_H_
