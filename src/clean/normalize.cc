#include "clean/normalize.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace galois::clean {

namespace {

const char* kMonthNames[] = {"january",   "february", "march",    "april",
                             "may",       "june",     "july",     "august",
                             "september", "october",  "november", "december"};

int MonthFromName(const std::string& word) {
  std::string w = ToLower(word);
  for (int i = 0; i < 12; ++i) {
    if (w == kMonthNames[i]) return i + 1;
  }
  return 0;
}

std::string StripTrailingPunct(std::string s) {
  while (!s.empty() && (s.back() == '.' || s.back() == ',' ||
                        s.back() == ';' || s.back() == '!' ||
                        s.back() == '"' || s.back() == '\'')) {
    s.pop_back();
  }
  return s;
}

std::string StripLeadingNoise(std::string s) {
  // "about", "approximately", "~", "$", "around".
  std::string lower = ToLower(s);
  for (const char* prefix : {"about ", "approximately ", "around ",
                             "roughly ", "circa "}) {
    if (StartsWith(lower, prefix)) {
      return Trim(s.substr(std::string(prefix).size()));
    }
  }
  while (!s.empty() && (s.front() == '~' || s.front() == '$' ||
                        s.front() == '"' || s.front() == '\'')) {
    s.erase(s.begin());
  }
  return Trim(s);
}

}  // namespace

bool IsUnknown(const std::string& text) {
  std::string t = ToLower(Trim(StripTrailingPunct(Trim(text))));
  return t == "unknown" || t == "i don't know" || t == "n/a" || t.empty();
}

bool IsNoMoreResults(const std::string& text) {
  std::string t = ToLower(Trim(text));
  return StartsWith(t, "no more results") || StartsWith(t, "no more") ||
         StartsWith(t, "that is all") || StartsWith(t, "none");
}

std::string StripVerbosity(const std::string& text) {
  // "The <attr> of <key> is <value>." -> "<value>".
  std::string t = Trim(text);
  std::string lower = ToLower(t);
  if (StartsWith(lower, "the ") || StartsWith(lower, "its ")) {
    size_t pos = lower.rfind(" is ");
    if (pos != std::string::npos && pos + 4 < t.size()) {
      return Trim(StripTrailingPunct(Trim(t.substr(pos + 4))));
    }
  }
  // "<key> has <value> <attr>."? Not emitted by our models; keep as-is.
  return t;
}

std::vector<std::string> SplitList(const std::string& completion) {
  std::vector<std::string> items;
  // First split lines, then commas within lines; strip "-"/"*" bullets.
  for (std::string& line : Split(completion, '\n', /*trim=*/true,
                                 /*skip_empty=*/true)) {
    if (IsNoMoreResults(line)) continue;
    std::string body = line;
    if (StartsWith(body, "- ") || StartsWith(body, "* ")) {
      body = body.substr(2);
    }
    for (std::string& piece : Split(body, ',', /*trim=*/true,
                                    /*skip_empty=*/true)) {
      std::string item = Trim(StripTrailingPunct(piece));
      if (item.empty() || IsUnknown(item)) continue;
      items.push_back(std::move(item));
    }
  }
  return items;
}

Result<double> ParseNumber(const std::string& text) {
  std::string t =
      StripLeadingNoise(Trim(StripTrailingPunct(Trim(text))));
  if (t.empty()) return Status::TypeError("empty numeric answer");
  // Remove thousands separators.
  std::string cleaned = ReplaceAll(t, ",", "");
  std::string lower = ToLower(cleaned);

  // Word multipliers: "2 million", "450 thousand", "1.1 billion".
  double multiplier = 1.0;
  for (const auto& [word, mult] :
       std::vector<std::pair<std::string, double>>{
           {" billion", 1e9}, {" million", 1e6}, {" thousand", 1e3}}) {
    if (EndsWith(lower, word)) {
      multiplier = mult;
      cleaned = Trim(cleaned.substr(0, cleaned.size() - word.size()));
      lower = ToLower(cleaned);
      break;
    }
  }
  // Suffix multipliers: 1.2k / 3M / 0.5B.
  if (multiplier == 1.0 && !cleaned.empty()) {
    char suffix = lower.back();
    if (suffix == 'k' || suffix == 'm' || suffix == 'b') {
      // Only when the rest parses as a number (avoid eating words).
      std::string head = cleaned.substr(0, cleaned.size() - 1);
      char* end = nullptr;
      std::strtod(head.c_str(), &end);
      if (end != nullptr && *end == '\0' && !head.empty()) {
        multiplier = suffix == 'k' ? 1e3 : (suffix == 'm' ? 1e6 : 1e9);
        cleaned = head;
      }
    }
  }
  char* end = nullptr;
  double v = std::strtod(cleaned.c_str(), &end);
  if (end == nullptr || end == cleaned.c_str() || *end != '\0') {
    return Status::TypeError("cannot parse number from '" + text + "'");
  }
  return v * multiplier;
}

Result<Value> ParseDate(const std::string& text) {
  std::string t = Trim(StripTrailingPunct(Trim(text)));
  if (t.empty()) return Status::TypeError("empty date answer");
  // ISO yyyy-mm-dd.
  {
    int y = 0, m = 0, d = 0;
    if (std::sscanf(t.c_str(), "%d-%d-%d", &y, &m, &d) == 3 && y > 999 &&
        m >= 1 && m <= 12 && d >= 1 && d <= 31) {
      return Value::Date(y, m, d);
    }
  }
  // dd/mm/yyyy.
  {
    int d = 0, m = 0, y = 0;
    if (std::sscanf(t.c_str(), "%d/%d/%d", &d, &m, &y) == 3 && y > 999 &&
        m >= 1 && m <= 12 && d >= 1 && d <= 31) {
      return Value::Date(y, m, d);
    }
  }
  // "August 4, 1962" or "4 August 1962".
  {
    std::vector<std::string> words =
        Split(ReplaceAll(t, ",", " "), ' ', /*trim=*/true,
              /*skip_empty=*/true);
    if (words.size() == 3) {
      int m = MonthFromName(words[0]);
      if (m > 0) {
        int d = std::atoi(words[1].c_str());
        int y = std::atoi(words[2].c_str());
        if (d >= 1 && d <= 31 && y > 999) return Value::Date(y, m, d);
      }
      m = MonthFromName(words[1]);
      if (m > 0) {
        int d = std::atoi(words[0].c_str());
        int y = std::atoi(words[2].c_str());
        if (d >= 1 && d <= 31 && y > 999) return Value::Date(y, m, d);
      }
    }
  }
  return Status::TypeError("cannot parse date from '" + text + "'");
}

Result<bool> ParseBool(const std::string& text) {
  std::string t = ToLower(Trim(StripTrailingPunct(Trim(text))));
  if (t == "yes" || t == "true" || t == "y") return true;
  if (t == "no" || t == "false" || t == "n") return false;
  return Status::TypeError("cannot parse boolean from '" + text + "'");
}

Result<Value> NormalizeCell(const std::string& raw, DataType expected,
                            const DomainConstraint* domain) {
  std::string t = StripVerbosity(raw);
  if (IsUnknown(t)) return Value::Null();
  switch (expected) {
    case DataType::kInt64: {
      auto n = ParseNumber(t);
      if (!n.ok()) return Value::Null();  // unparseable -> reject cell
      double v = n.value();
      if (domain != nullptr && !domain->Admits(v)) return Value::Null();
      return Value::Int(static_cast<int64_t>(std::llround(v)));
    }
    case DataType::kDouble: {
      auto n = ParseNumber(t);
      if (!n.ok()) return Value::Null();
      double v = n.value();
      if (domain != nullptr && !domain->Admits(v)) return Value::Null();
      return Value::Double(v);
    }
    case DataType::kDate: {
      auto d = ParseDate(t);
      if (!d.ok()) return Value::Null();
      return d.value();
    }
    case DataType::kBool: {
      auto b = ParseBool(t);
      if (!b.ok()) return Value::Null();
      return Value::Bool(b.value());
    }
    case DataType::kString:
      return Value::String(Trim(StripTrailingPunct(t)));
    case DataType::kNull:
      return Value::Null();
  }
  return Status::Internal("unhandled expected type");
}

DomainConstraint DefaultDomainForColumn(const std::string& column_name) {
  std::string n = ToLower(column_name);
  DomainConstraint d;
  if (ContainsIgnoreCase(n, "year")) {
    d.min = 1000.0;
    d.max = 2100.0;
    return d;
  }
  if (ContainsIgnoreCase(n, "age")) {
    d.min = 0.0;
    d.max = 130.0;
    return d;
  }
  // Elevation can legitimately be negative (e.g. below sea level).
  if (ContainsIgnoreCase(n, "elevation")) return d;
  for (const char* kw :
       {"population", "capacity", "attendance", "speakers", "passengers",
        "count", "runways", "fleet", "area", "salary", "gdp", "networth",
        "destinations"}) {
    if (ContainsIgnoreCase(n, kw)) {
      d.min = 0.0;  // non-negative magnitude
      break;
    }
  }
  return d;
}

}  // namespace galois::clean
