#include "engine/relational_stages.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/strings.h"
#include "engine/expr_eval.h"

namespace galois::engine {

namespace {

using sql::Expr;
using sql::ExprKind;

/// Collects the distinct aggregate calls appearing in `e` (deduplicated by
/// canonical rendering) into `out`.
void CollectAggregates(const Expr& e,
                       std::map<std::string, const Expr*>* out) {
  sql::VisitExpr(e, [out](const Expr& node) {
    if (node.kind == ExprKind::kFunction) {
      out->emplace(node.ToString(), &node);
    }
  });
}

/// Collects column refs that appear outside aggregate calls (used for the
/// MySQL-style loose GROUP BY: such refs become implicit group columns).
void CollectNonAggregateRefs(const Expr& e,
                             std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction) return;  // don't descend into aggs
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  for (const auto& child : e.children) {
    CollectNonAggregateRefs(*child, out);
  }
}

/// Output column name for a select item: alias if given, bare column name
/// for plain refs, canonical rendering otherwise.
std::string OutputName(const SelectItemView& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

TailSpec TailSpecFromStatement(const sql::SelectStatement& stmt) {
  TailSpec spec;
  spec.select.reserve(stmt.select_list.size());
  for (const auto& item : stmt.select_list) {
    spec.select.push_back({item.expr.get(), item.alias});
  }
  spec.having = stmt.having.get();
  spec.order_by.reserve(stmt.order_by.size());
  for (const auto& o : stmt.order_by) {
    spec.order_by.push_back({o.expr.get(), o.descending});
  }
  spec.group_by.reserve(stmt.group_by.size());
  for (const auto& g : stmt.group_by) spec.group_by.push_back(g.get());
  return spec;
}

bool NeedsAggregation(const TailSpec& spec) {
  if (!spec.group_by.empty() || spec.having != nullptr) return true;
  for (const auto& item : spec.select) {
    if (sql::ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

const Expr* ResolveOrderAlias(const Expr* e, const TailSpec& spec) {
  if (e->kind != ExprKind::kColumnRef || !e->table.empty()) return e;
  for (const auto& item : spec.select) {
    if (!item.alias.empty() && EqualsIgnoreCase(item.alias, e->column)) {
      return item.expr;
    }
  }
  return e;
}

AggregationPlan PlanAggregation(const TailSpec& spec) {
  AggregationPlan plan;
  std::map<std::string, const Expr*> agg_map;
  for (const auto& item : spec.select) {
    CollectAggregates(*item.expr, &agg_map);
  }
  if (spec.having != nullptr) CollectAggregates(*spec.having, &agg_map);
  for (const auto& item : spec.order_by) {
    CollectAggregates(*ResolveOrderAlias(item.expr, spec), &agg_map);
  }
  plan.group_exprs = spec.group_by;
  // Loose GROUP BY (the paper's intro query selects c.GDP while grouping
  // by c.name): non-aggregate column refs in the select list become
  // implicit group columns, i.e. representative-row semantics under the
  // functional dependency.
  if (!plan.group_exprs.empty()) {
    std::vector<const Expr*> loose;
    for (const auto& item : spec.select) {
      CollectNonAggregateRefs(*item.expr, &loose);
    }
    for (const Expr* ref : loose) {
      bool already = false;
      for (const Expr* g : plan.group_exprs) {
        if (g->ToString() == ref->ToString()) {
          already = true;
          break;
        }
      }
      if (!already) plan.group_exprs.push_back(ref);
    }
  }
  for (const auto& [key, call] : agg_map) {
    plan.specs.push_back(AggregateSpec{call});
    plan.agg_keys.push_back(key);
  }
  return plan;
}

ProjectionExprs ExpandSelect(const TailSpec& spec, const Schema& schema) {
  ProjectionExprs proj;
  for (const auto& item : spec.select) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& scope = item.expr->table;
      for (const Column& c : schema.columns()) {
        if (!scope.empty() && !EqualsIgnoreCase(c.table, scope)) continue;
        proj.storage.push_back(Expr::MakeColumnRef(c.table, c.name));
        proj.exprs.push_back(proj.storage.back().get());
        proj.names.push_back(c.name);
      }
      continue;
    }
    proj.exprs.push_back(item.expr);
    proj.names.push_back(OutputName(item));
  }
  return proj;
}

Result<ProjectedRows> ProjectAndFilter(
    const Relation& source, const ProjectionExprs& proj,
    const TailSpec& spec, bool use_agg_env,
    const std::vector<std::string>& agg_keys, size_t num_group_cols) {
  ProjectedRows out;
  out.values.reserve(source.NumRows());
  out.order_keys.reserve(source.NumRows());
  std::vector<const Expr*> order_exprs;
  for (const auto& item : spec.order_by) {
    order_exprs.push_back(ResolveOrderAlias(item.expr, spec));
  }
  for (const Tuple& row : source.rows()) {
    AggregateEnv env;
    const AggregateEnv* env_ptr = nullptr;
    if (use_agg_env) {
      for (size_t a = 0; a < agg_keys.size(); ++a) {
        env[agg_keys[a]] = row[num_group_cols + a];
      }
      env_ptr = &env;
    }
    // HAVING filter (aggregate context), fused with the projection so
    // expression errors surface in the original per-row order.
    if (spec.having != nullptr) {
      GALOIS_ASSIGN_OR_RETURN(
          bool keep,
          EvalPredicate(*spec.having, source.schema(), row, env_ptr));
      if (!keep) continue;
    }
    Tuple values;
    values.reserve(proj.exprs.size());
    for (const Expr* e : proj.exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*e, source.schema(), row, env_ptr));
      values.push_back(std::move(v));
    }
    Tuple order_key;
    order_key.reserve(order_exprs.size());
    for (const Expr* e : order_exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*e, source.schema(), row, env_ptr));
      order_key.push_back(std::move(v));
    }
    out.values.push_back(std::move(values));
    out.order_keys.push_back(std::move(order_key));
  }
  return out;
}

void SortProjected(ProjectedRows* rows, const TailSpec& spec) {
  if (spec.order_by.empty()) return;
  // Sort an index permutation (stable), then apply it to both vectors.
  std::vector<size_t> order(rows->values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) {
                     const Tuple& ka = rows->order_keys[a];
                     const Tuple& kb = rows->order_keys[b];
                     for (size_t k = 0; k < spec.order_by.size(); ++k) {
                       int c = ka[k].Compare(kb[k]);
                       if (c != 0) {
                         return spec.order_by[k].descending ? c > 0 : c < 0;
                       }
                     }
                     return false;
                   });
  std::vector<Tuple> values(rows->values.size());
  std::vector<Tuple> keys(rows->order_keys.size());
  for (size_t i = 0; i < order.size(); ++i) {
    values[i] = std::move(rows->values[order[i]]);
    keys[i] = std::move(rows->order_keys[order[i]]);
  }
  rows->values = std::move(values);
  rows->order_keys = std::move(keys);
}

Relation FinishProjection(const Schema& source_schema,
                          const ProjectionExprs& proj, ProjectedRows rows) {
  Schema out_schema;
  for (size_t i = 0; i < proj.exprs.size(); ++i) {
    DataType type = DataType::kString;
    const Expr* e = proj.exprs[i];
    if (e->kind == ExprKind::kColumnRef) {
      auto idx = source_schema.ResolveQualified(e->table, e->column);
      if (idx.ok()) type = source_schema.column(idx.value()).type;
    } else if (e->kind == ExprKind::kLiteral) {
      type = e->literal.type();
    } else if (e->kind == ExprKind::kFunction) {
      type = e->function_name == "COUNT" ? DataType::kInt64
                                         : DataType::kDouble;
    } else {
      type = DataType::kDouble;
    }
    out_schema.AddColumn(Column(proj.names[i], type));
  }
  Relation out(out_schema);
  for (auto& r : rows.values) out.AddRowUnchecked(std::move(r));
  return out;
}

}  // namespace galois::engine
