#include "engine/expr_eval.h"

#include <cmath>

namespace galois::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::UnaryOp;

/// Tri-state boolean for SQL three-valued logic.
enum class Tri { kFalse, kTrue, kNull };

Tri ValueToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.type() == DataType::kBool) {
    return v.bool_value() ? Tri::kTrue : Tri::kFalse;
  }
  auto d = v.AsDouble();
  if (d.ok()) return d.value() != 0.0 ? Tri::kTrue : Tri::kFalse;
  // Non-empty strings are truthy (lenient, matches the cleaning layer).
  if (v.type() == DataType::kString) {
    return v.string_value().empty() ? Tri::kFalse : Tri::kTrue;
  }
  return Tri::kNull;
}

Result<Value> EvalComparison(BinaryOp op, const Value& lhs,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  int cmp = lhs.Compare(rhs);
  bool out = false;
  switch (op) {
    case BinaryOp::kEq:
      out = cmp == 0;
      break;
    case BinaryOp::kNotEq:
      out = cmp != 0;
      break;
    case BinaryOp::kLt:
      out = cmp < 0;
      break;
    case BinaryOp::kLtEq:
      out = cmp <= 0;
      break;
    case BinaryOp::kGt:
      out = cmp > 0;
      break;
    case BinaryOp::kGtEq:
      out = cmp >= 0;
      break;
    default:
      return Status::Internal("EvalComparison called with non-comparison op");
  }
  return Value::Bool(out);
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& lhs,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  GALOIS_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
  GALOIS_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
  bool both_int = lhs.type() == DataType::kInt64 &&
                  rhs.type() == DataType::kInt64;
  switch (op) {
    case BinaryOp::kPlus:
      return both_int ? Value::Int(lhs.int_value() + rhs.int_value())
                      : Value::Double(a + b);
    case BinaryOp::kMinus:
      return both_int ? Value::Int(lhs.int_value() - rhs.int_value())
                      : Value::Double(a - b);
    case BinaryOp::kMul:
      return both_int ? Value::Int(lhs.int_value() * rhs.int_value())
                      : Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Value::Null();
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (!both_int || rhs.int_value() == 0) return Value::Null();
      return Value::Int(lhs.int_value() % rhs.int_value());
    default:
      return Status::Internal("EvalArithmetic called with non-arith op");
  }
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Classic two-pointer wildcard match: % = any run, _ = one char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalExpr(const Expr& expr, const Schema& schema,
                       const Tuple& tuple, const AggregateEnv* agg_env) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kStar:
      return Status::ExecutionError(
          "'*' is only valid inside COUNT(*) or as the whole select list");
    case ExprKind::kColumnRef: {
      GALOIS_ASSIGN_OR_RETURN(
          size_t idx, schema.ResolveQualified(expr.table, expr.column));
      if (idx >= tuple.size()) {
        return Status::Internal("tuple narrower than schema");
      }
      return tuple[idx];
    }
    case ExprKind::kUnary: {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*expr.children[0], schema, tuple, agg_env));
      if (expr.unary_op == UnaryOp::kNot) {
        Tri t = ValueToTri(v);
        if (t == Tri::kNull) return Value::Null();
        return Value::Bool(t == Tri::kFalse);
      }
      // negate
      if (v.is_null()) return Value::Null();
      if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
      GALOIS_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value::Double(-d);
    }
    case ExprKind::kBinary: {
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        GALOIS_ASSIGN_OR_RETURN(
            Value lv, EvalExpr(*expr.children[0], schema, tuple, agg_env));
        Tri lt = ValueToTri(lv);
        if (expr.binary_op == BinaryOp::kAnd && lt == Tri::kFalse) {
          return Value::Bool(false);
        }
        if (expr.binary_op == BinaryOp::kOr && lt == Tri::kTrue) {
          return Value::Bool(true);
        }
        GALOIS_ASSIGN_OR_RETURN(
            Value rv, EvalExpr(*expr.children[1], schema, tuple, agg_env));
        Tri rt = ValueToTri(rv);
        if (expr.binary_op == BinaryOp::kAnd) {
          if (rt == Tri::kFalse) return Value::Bool(false);
          if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
          return Value::Bool(true);
        }
        if (rt == Tri::kTrue) return Value::Bool(true);
        if (lt == Tri::kNull || rt == Tri::kNull) return Value::Null();
        return Value::Bool(false);
      }
      GALOIS_ASSIGN_OR_RETURN(
          Value lhs, EvalExpr(*expr.children[0], schema, tuple, agg_env));
      GALOIS_ASSIGN_OR_RETURN(
          Value rhs, EvalExpr(*expr.children[1], schema, tuple, agg_env));
      switch (expr.binary_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
          return EvalComparison(expr.binary_op, lhs, rhs);
        case BinaryOp::kPlus:
        case BinaryOp::kMinus:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(expr.binary_op, lhs, rhs);
        case BinaryOp::kLike: {
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          if (lhs.type() != DataType::kString ||
              rhs.type() != DataType::kString) {
            return Status::TypeError("LIKE requires string operands");
          }
          return Value::Bool(
              LikeMatch(lhs.string_value(), rhs.string_value()));
        }
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case ExprKind::kFunction: {
      if (agg_env != nullptr) {
        auto it = agg_env->find(expr.ToString());
        if (it != agg_env->end()) return it->second;
      }
      return Status::ExecutionError(
          "aggregate '" + expr.ToString() +
          "' evaluated outside an aggregation context");
    }
    case ExprKind::kBetween: {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*expr.children[0], schema, tuple, agg_env));
      GALOIS_ASSIGN_OR_RETURN(
          Value lo, EvalExpr(*expr.children[1], schema, tuple, agg_env));
      GALOIS_ASSIGN_OR_RETURN(
          Value hi, EvalExpr(*expr.children[2], schema, tuple, agg_env));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case ExprKind::kInList: {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*expr.children[0], schema, tuple, agg_env));
      if (v.is_null()) return Value::Null();
      bool found = false;
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        GALOIS_ASSIGN_OR_RETURN(
            Value item, EvalExpr(*expr.children[i], schema, tuple, agg_env));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (v.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      if (!found && saw_null) return Value::Null();
      return Value::Bool(expr.negated ? !found : found);
    }
    case ExprKind::kIsNull: {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*expr.children[0], schema, tuple, agg_env));
      bool is_null = v.is_null();
      return Value::Bool(expr.negated ? !is_null : is_null);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Schema& schema,
                           const Tuple& tuple, const AggregateEnv* agg_env) {
  GALOIS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, schema, tuple, agg_env));
  return ValueToTri(v) == Tri::kTrue;
}

}  // namespace galois::engine
