#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.h"
#include "engine/expr_eval.h"
#include "engine/operators.h"
#include "sql/parser.h"

namespace galois::engine {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

/// Collects the distinct aggregate calls appearing in `e` (deduplicated by
/// canonical rendering) into `out`.
void CollectAggregates(const Expr& e,
                       std::map<std::string, const Expr*>* out) {
  sql::VisitExpr(e, [out](const Expr& node) {
    if (node.kind == ExprKind::kFunction) {
      out->emplace(node.ToString(), &node);
    }
  });
}

/// Collects column refs that appear outside aggregate calls (used for the
/// MySQL-style loose GROUP BY: such refs become implicit group columns).
void CollectNonAggregateRefs(const Expr& e,
                             std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction) return;  // don't descend into aggs
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  for (const auto& child : e.children) {
    CollectNonAggregateRefs(*child, out);
  }
}

/// True when the query requires an aggregation stage.
bool NeedsAggregation(const SelectStatement& stmt) {
  if (!stmt.group_by.empty() || stmt.having) return true;
  for (const auto& item : stmt.select_list) {
    if (sql::ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

/// Output column name for a select item: alias if given, bare column name
/// for plain refs, canonical rendering otherwise.
std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

/// If `e` is a bare unqualified column ref naming a select alias,
/// returns that select item's expression; otherwise returns `e`.
const Expr* ResolveAlias(const Expr* e, const SelectStatement& stmt) {
  if (e->kind != ExprKind::kColumnRef || !e->table.empty()) return e;
  for (const auto& item : stmt.select_list) {
    if (!item.alias.empty() && EqualsIgnoreCase(item.alias, e->column)) {
      return item.expr.get();
    }
  }
  return e;
}

}  // namespace

Result<Relation> ExecuteOnRelations(const SelectStatement& stmt,
                                    const std::vector<BoundRelation>& bases) {
  size_t expected = stmt.from.size() + stmt.joins.size();
  if (bases.size() != expected) {
    return Status::InvalidArgument(
        "ExecuteOnRelations: got " + std::to_string(bases.size()) +
        " base relations, query references " + std::to_string(expected));
  }
  // 1. FROM: cross join the comma-separated relations.
  Relation working = bases[0].second;
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    GALOIS_ASSIGN_OR_RETURN(working, CrossJoin(working, bases[i].second));
  }
  // 2. Explicit JOIN ... ON clauses, left to right.
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const sql::JoinClause& clause = stmt.joins[j];
    const Relation& right = bases[stmt.from.size() + j].second;
    if (!clause.condition) {
      GALOIS_ASSIGN_OR_RETURN(working, CrossJoin(working, right));
    } else if (clause.type == sql::JoinType::kLeft) {
      GALOIS_ASSIGN_OR_RETURN(
          working, LeftOuterJoin(working, right, *clause.condition));
    } else {
      GALOIS_ASSIGN_OR_RETURN(
          working, NestedLoopJoin(working, right, *clause.condition));
    }
  }
  // 3. WHERE.
  if (stmt.where) {
    GALOIS_ASSIGN_OR_RETURN(working, Filter(working, *stmt.where));
  }

  // 4. Aggregation or plain projection, with ORDER BY keys computed in the
  // same row environment as the projection so aliases and aggregates sort
  // correctly.
  std::vector<const Expr*> select_exprs;
  std::vector<std::string> select_names;
  // Expand SELECT * / alias.* .
  std::vector<sql::ExprPtr> expanded_storage;
  for (const auto& item : stmt.select_list) {
    if (item.expr->kind == ExprKind::kStar) {
      const std::string& scope = item.expr->table;
      for (const Column& c : working.schema().columns()) {
        if (!scope.empty() && !EqualsIgnoreCase(c.table, scope)) continue;
        expanded_storage.push_back(Expr::MakeColumnRef(c.table, c.name));
        select_exprs.push_back(expanded_storage.back().get());
        select_names.push_back(c.name);
      }
      continue;
    }
    select_exprs.push_back(item.expr.get());
    select_names.push_back(OutputName(item));
  }

  Relation source;           // rows to project from
  bool use_agg_env = false;  // whether rows carry aggregate values
  std::vector<std::string> agg_keys;  // rendering of each aggregate call
  size_t num_group_cols = 0;

  if (NeedsAggregation(stmt)) {
    std::map<std::string, const Expr*> agg_map;
    for (const auto& item : stmt.select_list) {
      CollectAggregates(*item.expr, &agg_map);
    }
    if (stmt.having) CollectAggregates(*stmt.having, &agg_map);
    for (const auto& item : stmt.order_by) {
      CollectAggregates(*ResolveAlias(item.expr.get(), stmt), &agg_map);
    }
    std::vector<const Expr*> group_exprs;
    group_exprs.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) group_exprs.push_back(g.get());
    // Loose GROUP BY (the paper's intro query selects c.GDP while grouping
    // by c.name): non-aggregate column refs in the select list become
    // implicit group columns, i.e. representative-row semantics under the
    // functional dependency.
    if (!group_exprs.empty()) {
      std::vector<const Expr*> loose;
      for (const auto& item : stmt.select_list) {
        CollectNonAggregateRefs(*item.expr, &loose);
      }
      for (const Expr* ref : loose) {
        bool already = false;
        for (const Expr* g : group_exprs) {
          if (g->ToString() == ref->ToString()) {
            already = true;
            break;
          }
        }
        if (!already) group_exprs.push_back(ref);
      }
    }
    std::vector<AggregateSpec> specs;
    for (const auto& [key, call] : agg_map) {
      specs.push_back(AggregateSpec{call});
      agg_keys.push_back(key);
    }
    GALOIS_ASSIGN_OR_RETURN(source,
                            HashAggregate(working, group_exprs, specs));
    use_agg_env = true;
    num_group_cols = group_exprs.size();
  } else {
    source = std::move(working);
  }

  // Build the output rows + order keys.
  struct ProjectedRow {
    Tuple values;
    Tuple order_key;
  };
  std::vector<ProjectedRow> rows;
  rows.reserve(source.NumRows());
  std::vector<const Expr*> order_exprs;
  for (const auto& item : stmt.order_by) {
    order_exprs.push_back(ResolveAlias(item.expr.get(), stmt));
  }
  for (const Tuple& row : source.rows()) {
    AggregateEnv env;
    const AggregateEnv* env_ptr = nullptr;
    if (use_agg_env) {
      for (size_t a = 0; a < agg_keys.size(); ++a) {
        env[agg_keys[a]] = row[num_group_cols + a];
      }
      env_ptr = &env;
    }
    // HAVING filter (aggregate context).
    if (stmt.having) {
      GALOIS_ASSIGN_OR_RETURN(
          bool keep,
          EvalPredicate(*stmt.having, source.schema(), row, env_ptr));
      if (!keep) continue;
    }
    ProjectedRow out;
    out.values.reserve(select_exprs.size());
    for (const Expr* e : select_exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*e, source.schema(), row, env_ptr));
      out.values.push_back(std::move(v));
    }
    out.order_key.reserve(order_exprs.size());
    for (const Expr* e : order_exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v,
                              EvalExpr(*e, source.schema(), row, env_ptr));
      out.order_key.push_back(std::move(v));
    }
    rows.push_back(std::move(out));
  }

  // 5. ORDER BY.
  if (!stmt.order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&stmt](const ProjectedRow& a, const ProjectedRow& b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int c = a.order_key[k].Compare(b.order_key[k]);
                         if (c != 0) {
                           return stmt.order_by[k].descending ? c > 0
                                                              : c < 0;
                         }
                       }
                       return false;
                     });
  }

  // Output schema: infer types from the source schema where possible.
  Schema out_schema;
  for (size_t i = 0; i < select_exprs.size(); ++i) {
    DataType type = DataType::kString;
    const Expr* e = select_exprs[i];
    if (e->kind == ExprKind::kColumnRef) {
      auto idx = source.schema().ResolveQualified(e->table, e->column);
      if (idx.ok()) type = source.schema().column(idx.value()).type;
    } else if (e->kind == ExprKind::kLiteral) {
      type = e->literal.type();
    } else if (e->kind == ExprKind::kFunction) {
      type = e->function_name == "COUNT" ? DataType::kInt64
                                         : DataType::kDouble;
    } else {
      type = DataType::kDouble;
    }
    out_schema.AddColumn(Column(select_names[i], type));
  }
  Relation out(out_schema);
  for (auto& r : rows) out.AddRowUnchecked(std::move(r.values));

  // 6. DISTINCT / LIMIT.
  if (stmt.distinct) out = Distinct(out);
  if (stmt.limit.has_value() && *stmt.limit >= 0) {
    out = Limit(out, static_cast<size_t>(*stmt.limit));
  }
  return out;
}

Result<Relation> ExecuteSelect(const SelectStatement& stmt,
                               const catalog::Catalog& catalog) {
  std::vector<BoundRelation> bases;
  auto materialise = [&](const sql::TableRef& ref) -> Status {
    GALOIS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                            catalog.GetTable(ref.table));
    GALOIS_ASSIGN_OR_RETURN(const Relation* instance,
                            catalog.GetInstance(ref.table));
    // Re-qualify the schema with the query alias.
    Relation bound(def->ToSchema(ref.EffectiveAlias()), instance->rows());
    bases.emplace_back(ref.EffectiveAlias(), std::move(bound));
    return Status::OK();
  };
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_RETURN_IF_ERROR(materialise(ref));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_RETURN_IF_ERROR(materialise(j.table));
  }
  return ExecuteOnRelations(stmt, bases);
}

Result<Relation> ExecuteSql(const std::string& query,
                            const catalog::Catalog& catalog) {
  GALOIS_ASSIGN_OR_RETURN(SelectStatement stmt, sql::ParseSelect(query));
  return ExecuteSelect(stmt, catalog);
}

}  // namespace galois::engine
