#include "engine/executor.h"

#include <utility>

#include "engine/operators.h"
#include "engine/relational_stages.h"
#include "sql/parser.h"

namespace galois::engine {

using sql::SelectStatement;

Result<Relation> ExecuteOnRelations(const SelectStatement& stmt,
                                    const std::vector<BoundRelation>& bases) {
  size_t expected = stmt.from.size() + stmt.joins.size();
  if (bases.size() != expected) {
    return Status::InvalidArgument(
        "ExecuteOnRelations: got " + std::to_string(bases.size()) +
        " base relations, query references " + std::to_string(expected));
  }
  // 1. FROM: cross join the comma-separated relations.
  Relation working = bases[0].second;
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    GALOIS_ASSIGN_OR_RETURN(working, CrossJoin(working, bases[i].second));
  }
  // 2. Explicit JOIN ... ON clauses, left to right.
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const sql::JoinClause& clause = stmt.joins[j];
    const Relation& right = bases[stmt.from.size() + j].second;
    if (!clause.condition) {
      GALOIS_ASSIGN_OR_RETURN(working, CrossJoin(working, right));
    } else if (clause.type == sql::JoinType::kLeft) {
      GALOIS_ASSIGN_OR_RETURN(
          working, LeftOuterJoin(working, right, *clause.condition));
    } else {
      GALOIS_ASSIGN_OR_RETURN(
          working, NestedLoopJoin(working, right, *clause.condition));
    }
  }
  // 3. WHERE.
  if (stmt.where) {
    GALOIS_ASSIGN_OR_RETURN(working, Filter(working, *stmt.where));
  }

  // 4-6. Relational tail — the exact stages the plan-driven physical
  // executor runs (engine/relational_stages.h), so the two paths share one
  // implementation: star expansion against the pre-aggregation schema,
  // optional aggregation with loose GROUP BY, fused HAVING + projection +
  // order keys, stable sort, schema inference, DISTINCT, LIMIT.
  TailSpec spec = TailSpecFromStatement(stmt);
  ProjectionExprs proj = ExpandSelect(spec, working.schema());

  Relation source;
  bool use_agg_env = false;
  AggregationPlan aplan;
  if (NeedsAggregation(spec)) {
    aplan = PlanAggregation(spec);
    GALOIS_ASSIGN_OR_RETURN(
        source, HashAggregate(working, aplan.group_exprs, aplan.specs));
    use_agg_env = true;
  } else {
    source = std::move(working);
  }

  GALOIS_ASSIGN_OR_RETURN(
      ProjectedRows rows,
      ProjectAndFilter(source, proj, spec, use_agg_env, aplan.agg_keys,
                       aplan.group_exprs.size()));
  SortProjected(&rows, spec);
  Relation out = FinishProjection(source.schema(), proj, std::move(rows));

  if (stmt.distinct) out = Distinct(out);
  if (stmt.limit.has_value() && *stmt.limit >= 0) {
    out = Limit(out, static_cast<size_t>(*stmt.limit));
  }
  return out;
}

Result<Relation> ExecuteSelect(const SelectStatement& stmt,
                               const catalog::Catalog& catalog) {
  std::vector<BoundRelation> bases;
  auto materialise = [&](const sql::TableRef& ref) -> Status {
    GALOIS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                            catalog.GetTable(ref.table));
    GALOIS_ASSIGN_OR_RETURN(const Relation* instance,
                            catalog.GetInstance(ref.table));
    // Re-qualify the schema with the query alias.
    Relation bound(def->ToSchema(ref.EffectiveAlias()), instance->rows());
    bases.emplace_back(ref.EffectiveAlias(), std::move(bound));
    return Status::OK();
  };
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_RETURN_IF_ERROR(materialise(ref));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_RETURN_IF_ERROR(materialise(j.table));
  }
  return ExecuteOnRelations(stmt, bases);
}

Result<Relation> ExecuteSql(const std::string& query,
                            const catalog::Catalog& catalog) {
  GALOIS_ASSIGN_OR_RETURN(SelectStatement stmt, sql::ParseSelect(query));
  return ExecuteSelect(stmt, catalog);
}

}  // namespace galois::engine
