#ifndef GALOIS_ENGINE_RELATIONAL_STAGES_H_
#define GALOIS_ENGINE_RELATIONAL_STAGES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/operators.h"
#include "sql/ast.h"
#include "types/relation.h"

namespace galois::engine {

/// The relational tail of a query — aggregation, HAVING, projection,
/// ORDER BY — decomposed into reusable stages. ExecuteOnRelations and the
/// physical operator DAG (core/physical_plan) both run EXACTLY these
/// functions in the same order, so the statement-driven and plan-driven
/// paths cannot diverge: there is one implementation of loose GROUP BY,
/// alias resolution, star expansion, output-schema inference and sort
/// semantics, not two.
///
/// The views below borrow expressions from their owner (a parsed
/// SelectStatement or a logical plan); the owner must outlive the stages.

struct SelectItemView {
  const sql::Expr* expr = nullptr;
  std::string alias;  // empty when none
};

struct OrderItemView {
  const sql::Expr* expr = nullptr;
  bool descending = false;
};

/// Everything the tail stages need to know about the query, independent of
/// whether it came from a SelectStatement or a logical plan.
struct TailSpec {
  std::vector<SelectItemView> select;
  const sql::Expr* having = nullptr;  // null when absent
  std::vector<OrderItemView> order_by;
  std::vector<const sql::Expr*> group_by;
};

/// Borrowing view over a parsed statement.
TailSpec TailSpecFromStatement(const sql::SelectStatement& stmt);

/// True when the query requires an aggregation stage (explicit GROUP BY,
/// HAVING, or an aggregate call in the select list).
bool NeedsAggregation(const TailSpec& spec);

/// If `e` is a bare unqualified column ref naming a select alias, returns
/// that select item's expression; otherwise returns `e`.
const sql::Expr* ResolveOrderAlias(const sql::Expr* e, const TailSpec& spec);

/// The aggregation stage's inputs, derived once from the spec: explicit
/// group expressions plus loose (MySQL-style) implicit group columns, and
/// the distinct aggregate calls collected from select / HAVING / ORDER BY.
struct AggregationPlan {
  std::vector<const sql::Expr*> group_exprs;
  std::vector<AggregateSpec> specs;
  std::vector<std::string> agg_keys;  // canonical rendering per aggregate
};
AggregationPlan PlanAggregation(const TailSpec& spec);

/// The projection's expression list after SELECT * / alias.* expansion
/// against the pre-aggregation working schema (expansion happens BEFORE
/// aggregation — star columns are the join-output columns).
struct ProjectionExprs {
  std::vector<const sql::Expr*> exprs;
  std::vector<std::string> names;
  std::vector<sql::ExprPtr> storage;  // owns the expanded star refs
};
ProjectionExprs ExpandSelect(const TailSpec& spec, const Schema& schema);

/// Projected output rows plus their ORDER BY keys (evaluated in the same
/// row environment, so aliases and aggregates sort correctly).
struct ProjectedRows {
  std::vector<Tuple> values;
  std::vector<Tuple> order_keys;
};

/// HAVING + projection + order-key computation over the (possibly
/// aggregated) source rows. The HAVING check and the projection run fused
/// per row — identical evaluation order to the original executor loop.
/// `agg_keys`/`num_group_cols` describe the aggregate row layout when
/// `use_agg_env` is set (see AggregationPlan).
Result<ProjectedRows> ProjectAndFilter(const Relation& source,
                                       const ProjectionExprs& proj,
                                       const TailSpec& spec,
                                       bool use_agg_env,
                                       const std::vector<std::string>& agg_keys,
                                       size_t num_group_cols);

/// ORDER BY: stable sort of the projected rows on their order keys.
void SortProjected(ProjectedRows* rows, const TailSpec& spec);

/// Builds the output relation: schema inference against the source schema
/// (column refs keep their source type, literals theirs, COUNT is int64,
/// other functions double) and row materialisation.
Relation FinishProjection(const Schema& source_schema,
                          const ProjectionExprs& proj, ProjectedRows rows);

}  // namespace galois::engine

#endif  // GALOIS_ENGINE_RELATIONAL_STAGES_H_
