#ifndef GALOIS_ENGINE_EXECUTOR_H_
#define GALOIS_ENGINE_EXECUTOR_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"
#include "types/relation.h"

namespace galois::engine {

/// A materialised base relation bound to its FROM-clause alias. The
/// relation's schema must already be qualified with the alias.
using BoundRelation = std::pair<std::string, Relation>;

/// Executes the SPJA pipeline of `stmt` over already-materialised base
/// relations (one per FROM/JOIN entry, in order). This is the shared
/// back-half of both executors: the ground-truth executor materialises the
/// bases from catalog instances, the Galois executor materialises them by
/// prompting the LLM (Section 4: "Once the tuples are completed, regular
/// operators ... are executed on those").
Result<Relation> ExecuteOnRelations(const sql::SelectStatement& stmt,
                                    const std::vector<BoundRelation>& bases);

/// Ground-truth executor: resolves every FROM/JOIN table to its catalog
/// instance and runs the query; this produces the paper's R_D.
Result<Relation> ExecuteSelect(const sql::SelectStatement& stmt,
                               const catalog::Catalog& catalog);

/// Convenience: parse + execute.
Result<Relation> ExecuteSql(const std::string& query,
                            const catalog::Catalog& catalog);

}  // namespace galois::engine

#endif  // GALOIS_ENGINE_EXECUTOR_H_
