#include "engine/operators.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "engine/expr_eval.h"

namespace galois::engine {

namespace {

/// Key wrapper so Tuples can index std::map (Value has a total order).
struct TupleKeyLess {
  bool operator()(const Tuple& a, const Tuple& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Incremental state for one aggregate over one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool any_numeric = false;
  Value min;  // running MIN/MAX on Value::Compare
  Value max;
  std::vector<Value> distinct_seen;  // small-data linear distinct

  void Accumulate(const Value& v, bool distinct) {
    if (v.is_null()) return;
    if (distinct) {
      for (const Value& seen : distinct_seen) {
        if (seen == v) return;
      }
      distinct_seen.push_back(v);
    }
    ++count;
    auto d = v.AsDouble();
    if (d.ok()) {
      sum += d.value();
      any_numeric = true;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Result<Value> Finish(const std::string& function) const {
    if (function == "COUNT") return Value::Int(count);
    if (count == 0) return Value::Null();
    if (function == "SUM") {
      if (!any_numeric) return Status::TypeError("SUM over non-numeric");
      return Value::Double(sum);
    }
    if (function == "AVG") {
      if (!any_numeric) return Status::TypeError("AVG over non-numeric");
      return Value::Double(sum / static_cast<double>(count));
    }
    if (function == "MIN") return min;
    if (function == "MAX") return max;
    return Status::Unimplemented("aggregate function " + function);
  }
};

}  // namespace

Result<Relation> Filter(const Relation& input, const sql::Expr& predicate) {
  Relation out(input.schema());
  for (const Tuple& row : input.rows()) {
    GALOIS_ASSIGN_OR_RETURN(bool keep,
                            EvalPredicate(predicate, input.schema(), row));
    if (keep) out.AddRowUnchecked(row);
  }
  return out;
}

Result<Relation> CrossJoin(const Relation& left, const Relation& right) {
  Relation out(Schema::Concat(left.schema(), right.schema()));
  for (const Tuple& l : left.rows()) {
    for (const Tuple& r : right.rows()) {
      out.AddRowUnchecked(ConcatTuples(l, r));
    }
  }
  return out;
}

Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          size_t left_col, size_t right_col) {
  if (left_col >= left.schema().size() ||
      right_col >= right.schema().size()) {
    return Status::InvalidArgument("join column index out of range");
  }
  Relation out(Schema::Concat(left.schema(), right.schema()));
  // Build on the smaller side conceptually; rows are small here so build
  // on the right for simplicity.
  std::unordered_multimap<size_t, size_t> build;  // hash -> right row idx
  build.reserve(right.NumRows());
  for (size_t i = 0; i < right.NumRows(); ++i) {
    const Value& key = right.At(i, right_col);
    if (key.is_null()) continue;
    build.emplace(key.Hash(), i);
  }
  for (const Tuple& l : left.rows()) {
    const Value& key = l[left_col];
    if (key.is_null()) continue;
    auto [lo, hi] = build.equal_range(key.Hash());
    for (auto it = lo; it != hi; ++it) {
      const Tuple& r = right.row(it->second);
      if (key.Compare(r[right_col]) == 0) {
        out.AddRowUnchecked(ConcatTuples(l, r));
      }
    }
  }
  return out;
}

Result<Relation> NestedLoopJoin(const Relation& left, const Relation& right,
                                const sql::Expr& predicate) {
  Schema joined = Schema::Concat(left.schema(), right.schema());
  Relation out(joined);
  for (const Tuple& l : left.rows()) {
    for (const Tuple& r : right.rows()) {
      Tuple combined = ConcatTuples(l, r);
      GALOIS_ASSIGN_OR_RETURN(bool keep,
                              EvalPredicate(predicate, joined, combined));
      if (keep) out.AddRowUnchecked(std::move(combined));
    }
  }
  return out;
}

Result<Relation> LeftOuterJoin(const Relation& left, const Relation& right,
                               const sql::Expr& predicate) {
  Schema joined = Schema::Concat(left.schema(), right.schema());
  Relation out(joined);
  for (const Tuple& l : left.rows()) {
    bool matched = false;
    for (const Tuple& r : right.rows()) {
      Tuple combined = ConcatTuples(l, r);
      GALOIS_ASSIGN_OR_RETURN(bool keep,
                              EvalPredicate(predicate, joined, combined));
      if (keep) {
        matched = true;
        out.AddRowUnchecked(std::move(combined));
      }
    }
    if (!matched) {
      Tuple padded = l;
      padded.resize(joined.size(), Value::Null());
      out.AddRowUnchecked(std::move(padded));
    }
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<const sql::Expr*>& exprs,
                         const std::vector<std::string>& names) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("Project: exprs/names arity mismatch");
  }
  Schema out_schema;
  for (size_t i = 0; i < exprs.size(); ++i) {
    // Column type: preserve source column type when the expr is a bare ref.
    DataType type = DataType::kString;
    if (exprs[i]->kind == sql::ExprKind::kColumnRef) {
      auto idx = input.schema().ResolveQualified(exprs[i]->table,
                                                 exprs[i]->column);
      if (idx.ok()) type = input.schema().column(idx.value()).type;
    } else if (exprs[i]->kind == sql::ExprKind::kLiteral) {
      type = exprs[i]->literal.type();
    } else {
      type = DataType::kDouble;  // computed expressions default numeric
    }
    out_schema.AddColumn(Column(names[i], type));
  }
  Relation out(out_schema);
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(exprs.size());
    for (const sql::Expr* e : exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, input.schema(), row));
      projected.push_back(std::move(v));
    }
    out.AddRowUnchecked(std::move(projected));
  }
  return out;
}

Result<Relation> Sort(const Relation& input,
                      const std::vector<sql::OrderItem>& items) {
  // Precompute sort keys so evaluation errors surface before sorting.
  std::vector<std::pair<Tuple, size_t>> keyed;
  keyed.reserve(input.NumRows());
  for (size_t i = 0; i < input.NumRows(); ++i) {
    Tuple key;
    key.reserve(items.size());
    for (const sql::OrderItem& item : items) {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*item.expr, input.schema(), input.row(i)));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&items](const auto& a, const auto& b) {
                     for (size_t k = 0; k < items.size(); ++k) {
                       int c = a.first[k].Compare(b.first[k]);
                       if (c != 0) {
                         return items[k].descending ? c > 0 : c < 0;
                       }
                     }
                     return false;
                   });
  Relation out(input.schema());
  for (const auto& [key, idx] : keyed) out.AddRowUnchecked(input.row(idx));
  return out;
}

Relation Limit(const Relation& input, size_t n) {
  Relation out(input.schema());
  for (size_t i = 0; i < std::min(n, input.NumRows()); ++i) {
    out.AddRowUnchecked(input.row(i));
  }
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out = input;
  out.DedupRows();
  return out;
}

Result<Relation> HashAggregate(
    const Relation& input,
    const std::vector<const sql::Expr*>& group_exprs,
    const std::vector<AggregateSpec>& aggregates) {
  // group key -> (representative input row idx, per-aggregate state)
  std::map<Tuple, std::pair<size_t, std::vector<AggState>>, TupleKeyLess>
      groups;
  for (size_t r = 0; r < input.NumRows(); ++r) {
    const Tuple& row = input.row(r);
    Tuple key;
    key.reserve(group_exprs.size());
    for (const sql::Expr* g : group_exprs) {
      GALOIS_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, input.schema(), row));
      key.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(
        std::move(key), r, std::vector<AggState>(aggregates.size()));
    auto& [rep, states] = it->second;
    (void)rep;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const sql::Expr& call = *aggregates[a].call;
      bool is_count_star = call.function_name == "COUNT" &&
                           !call.children.empty() &&
                           call.children[0]->kind == sql::ExprKind::kStar;
      if (is_count_star) {
        states[a].Accumulate(Value::Int(1), /*distinct=*/false);
        continue;
      }
      GALOIS_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*call.children[0], input.schema(), row));
      states[a].Accumulate(v, call.distinct);
    }
  }
  // Output schema: group columns then aggregate columns.
  Schema out_schema;
  for (const sql::Expr* g : group_exprs) {
    DataType type = DataType::kString;
    if (g->kind == sql::ExprKind::kColumnRef) {
      auto idx = input.schema().ResolveQualified(g->table, g->column);
      if (idx.ok()) type = input.schema().column(idx.value()).type;
      // Keep the qualified name resolvable for the projection stage.
      out_schema.AddColumn(Column(g->column, type, g->table));
    } else {
      out_schema.AddColumn(Column(g->ToString(), type));
    }
  }
  for (const AggregateSpec& spec : aggregates) {
    DataType type = spec.call->function_name == "COUNT" ? DataType::kInt64
                                                        : DataType::kDouble;
    out_schema.AddColumn(Column(spec.call->ToString(), type));
  }
  Relation out(out_schema);
  if (groups.empty() && group_exprs.empty()) {
    // Scalar aggregation over empty input: one row, COUNT=0, rest NULL.
    Tuple row;
    for (const AggregateSpec& spec : aggregates) {
      AggState empty;
      GALOIS_ASSIGN_OR_RETURN(Value v,
                              empty.Finish(spec.call->function_name));
      row.push_back(std::move(v));
    }
    out.AddRowUnchecked(std::move(row));
    return out;
  }
  for (const auto& [key, value] : groups) {
    const auto& [rep, states] = value;
    (void)rep;
    Tuple row = key;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      GALOIS_ASSIGN_OR_RETURN(
          Value v, states[a].Finish(aggregates[a].call->function_name));
      row.push_back(std::move(v));
    }
    out.AddRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace galois::engine
