#ifndef GALOIS_ENGINE_EXPR_EVAL_H_
#define GALOIS_ENGINE_EXPR_EVAL_H_

#include <map>
#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace galois::engine {

/// Values of already-computed aggregate expressions, keyed by the
/// canonical rendering of the aggregate call (e.g. "AVG(e.salary)").
/// Used when evaluating SELECT/HAVING expressions over grouped data.
using AggregateEnv = std::map<std::string, Value>;

/// Evaluates `expr` against one tuple of `schema`. Column references are
/// resolved by (optionally qualified) name. Aggregate calls are looked up
/// in `agg_env` if provided, and are an error otherwise.
///
/// SQL NULL semantics: any arithmetic/comparison with a NULL operand yields
/// NULL; AND/OR use null-as-unknown collapsed conservatively (NULL AND x ->
/// NULL unless x is false; NULL OR x -> NULL unless x is true).
Result<Value> EvalExpr(const sql::Expr& expr, const Schema& schema,
                       const Tuple& tuple,
                       const AggregateEnv* agg_env = nullptr);

/// Evaluates `expr` as a predicate: NULL and non-boolean non-numeric
/// results count as false; numeric results count as (value != 0).
Result<bool> EvalPredicate(const sql::Expr& expr, const Schema& schema,
                           const Tuple& tuple,
                           const AggregateEnv* agg_env = nullptr);

/// SQL LIKE matching with % (any run) and _ (single char) wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace galois::engine

#endif  // GALOIS_ENGINE_EXPR_EVAL_H_
