#ifndef GALOIS_ENGINE_OPERATORS_H_
#define GALOIS_ENGINE_OPERATORS_H_

#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "types/relation.h"

namespace galois::engine {

/// Classic physical operators over materialised Relations. These implement
/// the "traditional algorithms" side of Galois (Section 4, workflow step 4):
/// once tuples have been retrieved — from the LLM or from a DB instance —
/// joins, aggregates, sorts etc. are executed with ordinary DB operators.

/// sigma: keeps rows satisfying `predicate`.
Result<Relation> Filter(const Relation& input, const sql::Expr& predicate);

/// Cartesian product with concatenated schemas.
Result<Relation> CrossJoin(const Relation& left, const Relation& right);

/// Equi-join via build/probe hash table on `left_col` = `right_col`
/// (column indices into the respective schemas). NULL keys never match.
Result<Relation> HashJoin(const Relation& left, const Relation& right,
                          size_t left_col, size_t right_col);

/// Theta join: nested loop with an arbitrary predicate over the
/// concatenated schema.
Result<Relation> NestedLoopJoin(const Relation& left, const Relation& right,
                                const sql::Expr& predicate);

/// Left outer variant of NestedLoopJoin (unmatched left rows padded with
/// NULLs).
Result<Relation> LeftOuterJoin(const Relation& left, const Relation& right,
                               const sql::Expr& predicate);

/// pi: evaluates one expression per output column against each row.
/// `names` provides the output column labels (same arity as `exprs`).
Result<Relation> Project(const Relation& input,
                         const std::vector<const sql::Expr*>& exprs,
                         const std::vector<std::string>& names);

/// ORDER BY: stable sort on the given items.
Result<Relation> Sort(const Relation& input,
                      const std::vector<sql::OrderItem>& items);

/// LIMIT n.
Relation Limit(const Relation& input, size_t n);

/// DISTINCT over whole rows.
Relation Distinct(const Relation& input);

/// One computed aggregate column specification.
struct AggregateSpec {
  const sql::Expr* call = nullptr;  // the kFunction node (COUNT/AVG/...)
};

/// gamma: groups `input` by `group_exprs` and computes `aggregates` per
/// group. Output schema: one column per group expression (named by its
/// rendering) followed by one per aggregate (named by its rendering).
/// With no group expressions the whole input is a single group (scalar
/// aggregation), producing exactly one row even for empty input (per SQL,
/// COUNT=0, other aggregates NULL).
Result<Relation> HashAggregate(
    const Relation& input,
    const std::vector<const sql::Expr*>& group_exprs,
    const std::vector<AggregateSpec>& aggregates);

}  // namespace galois::engine

#endif  // GALOIS_ENGINE_OPERATORS_H_
