#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace galois {

namespace {

const Json& NullSentinel() {
  static const Json* kNull = new Json();
  return *kNull;
}

}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::String(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json& Json::at(size_t i) const {
  if (i >= array_.size()) return NullSentinel();
  return array_[i];
}

std::vector<std::string> Json::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(object_.size());
  for (const auto& [k, v] : object_) {
    keys.push_back(k);
  }
  return keys;
}

bool Json::Has(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::operator[](const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return NullSentinel();
}

void Json::Set(const std::string& key, Json v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.string_value() : fallback;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.number_value() : fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? static_cast<int64_t>(std::llround(v.number_value()))
                       : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json& v = (*this)[key];
  return v.is_bool() ? v.bool_value() : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      // Integral doubles print without a fraction so token counts and
      // indices round-trip textually ("42", not "42.000000").
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      }
      break;
    }
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) *out += ',';
        first = false;
        v.DumpTo(out);
      }
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(k);
        *out += "\":";
        v.DumpTo(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over a bounded view. Depth is capped so a
/// hostile payload ("[[[[…") cannot blow the stack.
class Parser {
 public:
  Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    GALOIS_ASSIGN_OR_RETURN(Json v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::ParseError("json: trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& what) {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      GALOIS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return Json::Bool(true);
    if (ConsumeLiteral("false")) return Json::Bool(false);
    if (ConsumeLiteral("null")) return Json::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Err(std::string("unexpected character '") + c + "'");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      return Err("malformed number '" + token + "'");
    }
    return Json::Number(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad \\u escape digit");
            }
            // UTF-8 encode the code point (BMP only; surrogate pairs are
            // not produced by our own writer, which escapes bytes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Result<Json> ParseArray(int depth) {
    if (!Consume('[')) return Err("expected '['");
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      GALOIS_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject(int depth) {
    if (!Consume('{')) return Err("expected '{'");
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      GALOIS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      GALOIS_ASSIGN_OR_RETURN(Json v, ParseValue(depth + 1));
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace galois
