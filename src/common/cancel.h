#ifndef GALOIS_COMMON_CANCEL_H_
#define GALOIS_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace galois {

/// Shared cancellation + deadline token for one logical operation (one
/// query, in practice). The owner hands copies of the shared_ptr to
/// whoever executes on its behalf; any holder may RequestCancel(), and
/// the executing layers poll Check() at natural stopping points — the
/// batch scheduler checks before every LLM round trip, the executor
/// between phases. Work already in flight when the token fires still
/// completes (and bills); nothing new is started.
///
/// Thread-safe: the flag is atomic and the deadline is immutable after
/// Arm(), so Check() may be called from any number of threads while
/// another cancels.
class CancelState {
 public:
  CancelState() = default;

  /// A token chained onto `parent`: it fires when the parent fires OR
  /// when its own flag/deadline fires. Used to arm a per-query deadline
  /// on a private token without mutating a caller-supplied one (which
  /// may already be shared with other in-flight queries).
  explicit CancelState(std::shared_ptr<const CancelState> parent)
      : parent_(std::move(parent)) {}

  /// Requests cooperative cancellation; idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

  /// Arms a deadline `budget_ms` from now. Call once, before sharing the
  /// token (the deadline is not synchronised against concurrent Check).
  void ArmDeadline(int64_t budget_ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budget_ms);
    has_deadline_ = true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// OK while the operation may proceed; Cancelled / DeadlineExceeded
  /// once it must stop.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    if (parent_ != nullptr) return parent_->Check();
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::shared_ptr<const CancelState> parent_;
};

/// The shared handle form in which tokens travel (options snapshots,
/// scheduler policies, async query handles). A null token means
/// "never cancelled, no deadline".
using CancelToken = std::shared_ptr<CancelState>;

/// Check() that treats a null token as always-OK.
inline Status CheckCancel(const CancelToken& token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace galois

#endif  // GALOIS_COMMON_CANCEL_H_
