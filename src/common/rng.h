#ifndef GALOIS_COMMON_RNG_H_
#define GALOIS_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace galois {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component in the project (simulated LLM noise, workload
/// generation) consumes an explicit Rng so that runs are reproducible given
/// a seed. We do not use std::mt19937 so the stream is stable across
/// standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Gaussian (Box-Muller) with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives a child RNG whose stream is a pure function of this seed and
  /// `label`; used to give independent deterministic streams to components.
  Rng Fork(std::string_view label) const;

  /// Stable 64-bit FNV-1a hash of a string (used for per-key noise that
  /// does not depend on evaluation order).
  static uint64_t HashString(std::string_view s);

 private:
  uint64_t state_;
};

}  // namespace galois

#endif  // GALOIS_COMMON_RNG_H_
