#ifndef GALOIS_COMMON_RESULT_H_
#define GALOIS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace galois {

/// Result<T> holds either a value of type T or a non-OK Status.
///
/// This is the value-returning counterpart of Status (the Arrow
/// `arrow::Result` / abseil `StatusOr` idiom). Accessing the value of an
/// errored Result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK if this holds a value, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
///   GALOIS_ASSIGN_OR_RETURN(auto plan, BuildPlan(q));
#define GALOIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define GALOIS_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define GALOIS_ASSIGN_OR_RETURN_CONCAT(a, b) \
  GALOIS_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define GALOIS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  GALOIS_ASSIGN_OR_RETURN_IMPL(                                             \
      GALOIS_ASSIGN_OR_RETURN_CONCAT(_result_tmp_, __LINE__), lhs, expr)

}  // namespace galois

#endif  // GALOIS_COMMON_RESULT_H_
