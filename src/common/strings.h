#ifndef GALOIS_COMMON_STRINGS_H_
#define GALOIS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace galois {

/// Returns `s` lower-cased (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits `s` on `sep`, optionally trimming each piece and dropping empties.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool trim = false, bool skip_empty = false);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Case-insensitive substring test.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Splits a camelCase / snake_case identifier into lower-cased words, e.g.
/// "cityMayor" -> {"city", "mayor"}, "birth_date" -> {"birth", "date"}.
/// Used to turn schema labels into natural-language prompt fragments.
std::vector<std::string> SplitIdentifierWords(std::string_view ident);

/// "cityMayor" -> "city mayor"; convenience over SplitIdentifierWords.
std::string HumanizeIdentifier(std::string_view ident);

/// Levenshtein edit distance (for fuzzy entity matching in eval).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalised similarity in [0,1]: 1 - dist/max_len.
double StringSimilarity(std::string_view a, std::string_view b);

}  // namespace galois

#endif  // GALOIS_COMMON_STRINGS_H_
