#ifndef GALOIS_COMMON_THREAD_POOL_H_
#define GALOIS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace galois {

/// A small fixed-size thread pool for overlapping I/O-bound work —
/// primarily the concurrent `CompleteBatch` round trips issued by
/// `llm::BatchScheduler` when `parallel_batches > 1`.
///
/// Tasks are plain `std::function<void()>` thunks executed FIFO by a fixed
/// set of worker threads created in the constructor. The pool never grows
/// or shrinks; excess submissions queue until a worker frees up. Because
/// the intended workload is round-trip latency (network waits, simulated
/// sleeps) rather than CPU, the pool size is deliberately independent of
/// `std::thread::hardware_concurrency()`.
///
/// Thread safety: `Submit` may be called from any thread, including
/// concurrently. Tasks must not block on the completion of *other* pool
/// tasks (a task that waits for a queued task can deadlock when every
/// worker is occupied); callers that need to wait — like
/// `BatchScheduler::Flush` — must do so from a non-pool thread via the
/// returned future.
///
/// Error behavior: a task that throws has the exception captured in its
/// future (rethrown by `future::get`); the worker thread survives. Project
/// code reports failures through `Status`, so in practice futures only
/// carry completion, not errors.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: queued-but-unstarted tasks are abandoned (their
  /// futures become broken promises). Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution and returns a future that becomes ready
  /// when it finishes.
  std::future<void> Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide shared pool used by the batch scheduler for
  /// CompleteBatch round trips. Created lazily on first use with
  /// kSharedThreads workers and intentionally never destroyed (avoids
  /// static-destruction-order races with worker threads at exit).
  static ThreadPool& Shared();

  /// Size of the shared pool. Sized for overlapped round-trip latency,
  /// not CPU parallelism; a `parallel_batches` above this still works but
  /// keeps at most this many round trips in flight.
  static constexpr size_t kSharedThreads = 16;

  /// The process-wide pool for *phase-level* tasks: whole scheduler
  /// flushes dispatched via BatchScheduler::FlushAsync and the per-table
  /// materialisation tasks of the pipelined Galois executor. Kept
  /// separate from Shared() because a phase task blocks on round-trip
  /// futures: the two-tier split guarantees a waiting phase can never
  /// occupy a worker the round trips underneath it need. Same lifetime
  /// rules as Shared().
  static ThreadPool& SharedPhase();

  /// Size of the phase pool: bounds how many phases (table tasks, column
  /// retrievals, critic passes) overlap. TaskHandle's claim-on-join makes
  /// saturation safe — a joiner runs unstarted work inline — so this is a
  /// throughput knob, not a correctness bound.
  static constexpr size_t kSharedPhaseThreads = 8;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// A joinable handle to one task launched on a ThreadPool, with
/// claim-on-join semantics: the task body runs exactly once, either on a
/// pool worker or — when no worker has picked it up by the time the owner
/// joins — inline on the joining thread. This makes nested fan-out
/// (a pool task launching and joining further tasks on the same pool)
/// deadlock-free: a saturated pool degrades to inline execution instead
/// of a cyclic wait.
///
/// A handle is a move-only-in-spirit shared wrapper: copying shares the
/// underlying task, but Join must be called at most once across all
/// copies. A handle abandoned without Join is safe — the pool still runs
/// the task (it owns all captured state by value), the result is simply
/// dropped.
template <typename T>
class TaskHandle {
 public:
  TaskHandle() = default;

  /// Launches `fn` on `pool` and returns the joinable handle.
  static TaskHandle Launch(ThreadPool& pool, std::function<T()> fn) {
    auto state = std::make_shared<State>();
    state->run = std::move(fn);
    state->result = state->promise.get_future();
    pool.Submit([state] {
      if (!state->claimed.exchange(true)) {
        state->promise.set_value(state->run());
      }
    });
    TaskHandle handle;
    handle.state_ = std::move(state);
    return handle;
  }

  bool valid() const { return state_ != nullptr; }

  /// Returns the task's result, running it inline first when no pool
  /// worker has claimed it yet. Blocks when a worker is mid-run. Resets
  /// the handle to invalid.
  T Join() {
    auto state = std::move(state_);
    if (!state->claimed.exchange(true)) {
      state->promise.set_value(state->run());
    }
    return state->result.get();
  }

 private:
  struct State {
    std::function<T()> run;
    std::atomic<bool> claimed{false};
    std::promise<T> promise;
    std::future<T> result;
  };
  std::shared_ptr<State> state_;
};

}  // namespace galois

#endif  // GALOIS_COMMON_THREAD_POOL_H_
