#ifndef GALOIS_COMMON_THREAD_POOL_H_
#define GALOIS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace galois {

/// A small fixed-size thread pool for overlapping I/O-bound work —
/// primarily the concurrent `CompleteBatch` round trips issued by
/// `llm::BatchScheduler` when `parallel_batches > 1`.
///
/// Tasks are plain `std::function<void()>` thunks executed FIFO by a fixed
/// set of worker threads created in the constructor. The pool never grows
/// or shrinks; excess submissions queue until a worker frees up. Because
/// the intended workload is round-trip latency (network waits, simulated
/// sleeps) rather than CPU, the pool size is deliberately independent of
/// `std::thread::hardware_concurrency()`.
///
/// Thread safety: `Submit` may be called from any thread, including
/// concurrently. Tasks must not block on the completion of *other* pool
/// tasks (a task that waits for a queued task can deadlock when every
/// worker is occupied); callers that need to wait — like
/// `BatchScheduler::Flush` — must do so from a non-pool thread via the
/// returned future.
///
/// Error behavior: a task that throws has the exception captured in its
/// future (rethrown by `future::get`); the worker thread survives. Project
/// code reports failures through `Status`, so in practice futures only
/// carry completion, not errors.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: queued-but-unstarted tasks are abandoned (their
  /// futures become broken promises). Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution and returns a future that becomes ready
  /// when it finishes.
  std::future<void> Submit(std::function<void()> fn);

  size_t num_threads() const { return threads_.size(); }

  /// The process-wide shared pool used by the batch scheduler. Created
  /// lazily on first use with kSharedThreads workers and intentionally
  /// never destroyed (avoids static-destruction-order races with worker
  /// threads at exit).
  static ThreadPool& Shared();

  /// Size of the shared pool. Sized for overlapped round-trip latency,
  /// not CPU parallelism; a `parallel_batches` above this still works but
  /// keeps at most this many round trips in flight.
  static constexpr size_t kSharedThreads = 16;

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace galois

#endif  // GALOIS_COMMON_THREAD_POOL_H_
