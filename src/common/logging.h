#ifndef GALOIS_COMMON_LOGGING_H_
#define GALOIS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace galois {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity that is actually emitted (default: Warning,
/// so library internals stay quiet in tests and benches).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr if `level` >= the configured level.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log sink; flushes on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GALOIS_LOG(level) \
  ::galois::internal::LogStream(::galois::LogLevel::k##level)

}  // namespace galois

#endif  // GALOIS_COMMON_LOGGING_H_
