#include "common/rng.h"

#include <cmath>

namespace galois {

uint64_t Rng::Next() {
  // SplitMix64 step.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller transform; one draw per call keeps the stream simple.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::Fork(std::string_view label) const {
  return Rng(state_ ^ HashString(label));
}

uint64_t Rng::HashString(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace galois
