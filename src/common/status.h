#ifndef GALOIS_COMMON_STATUS_H_
#define GALOIS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace galois {

/// Error category for a failed operation. Mirrors the Arrow/RocksDB idiom of
/// returning rich status objects instead of throwing exceptions across
/// library boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kTypeError,
  kExecutionError,
  kLlmError,
  kCancelled,
  kDeadlineExceeded,
  kIoError,
};

/// Returns a stable human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// A Status carries either success ("OK") or an error code plus message.
///
/// All fallible public APIs in this project return `Status` or
/// `Result<T>` (see result.h). Statuses are cheap to copy in the OK case
/// (no allocation) and must be checked by the caller.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status LlmError(std::string msg) {
    return Status(StatusCode::kLlmError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly discards the status — for fire-and-forget calls whose
  /// failure is fully handled at the callee (the result store marks
  /// itself read-only on the first append error, so cache hooks have
  /// nothing left to do with the returned status).
  void IgnoreError() const {}

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usage:
///   GALOIS_RETURN_IF_ERROR(DoThing());
#define GALOIS_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::galois::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace galois

#endif  // GALOIS_COMMON_STATUS_H_
