#include "common/thread_pool.h"

#include <utility>

namespace galois {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(kSharedThreads);
  return *pool;
}

ThreadPool& ThreadPool::SharedPhase() {
  static ThreadPool* pool = new ThreadPool(kSharedPhaseThreads);
  return *pool;
}

}  // namespace galois
