#include "common/status.h"

namespace galois {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kLlmError:
      return "LlmError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace galois
