#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace galois {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep, bool trim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    if (trim) piece = TrimView(piece);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::vector<std::string> SplitIdentifierWords(std::string_view ident) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      words.push_back(ToLower(current));
      current.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    char c = ident[i];
    if (c == '_' || c == '-' || c == ' ' || c == '.') {
      flush();
      continue;
    }
    if (std::isupper(static_cast<unsigned char>(c)) && !current.empty() &&
        !std::isupper(static_cast<unsigned char>(current.back()))) {
      flush();
    }
    current.push_back(c);
  }
  flush();
  return words;
}

std::string HumanizeIdentifier(std::string_view ident) {
  return Join(SplitIdentifierWords(ident), " ");
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double StringSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(max_len);
}

}  // namespace galois
