#ifndef GALOIS_COMMON_JSON_H_
#define GALOIS_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace galois {

/// A minimal JSON document model for the LLM wire protocol (requests,
/// completions, usage accounting). Hand-rolled because the build bakes in
/// no third-party JSON dependency; the subset implemented — null, bool,
/// double, string, array, object, with full string escaping — is exactly
/// what an OpenAI-style chat-completions payload needs. Numbers are stored
/// as double; int64 values that must survive the wire losslessly (packed
/// dates, populations) are transmitted as strings by the prompt codec.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Number(int64_t v) { return Number(static_cast<double>(v)); }
  static Json String(std::string v);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Typed accessors; wrong-type access returns a neutral default (0,
  /// false, "") so callers validate with the predicates above.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const;
  void Append(Json v) { array_.push_back(std::move(v)); }

  /// Object access. `Get` returns a shared null sentinel on absent keys,
  /// so lookups chain without null checks: j["a"]["b"].is_string().
  bool Has(const std::string& key) const;
  const Json& operator[](const std::string& key) const;
  void Set(const std::string& key, Json v);

  /// Keys of an object, in insertion order; empty for non-objects. Lets
  /// decoders walk maps with dynamic keys (per-backend spend slices in
  /// the galoisd wire protocol) without a parallel key list.
  std::vector<std::string> Keys() const;

  /// Convenience typed getters with defaults, for tolerant decoding.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Serialises to compact JSON text (no insignificant whitespace).
  /// Object keys are emitted in insertion order.
  std::string Dump() const;

  /// Parses `text`; trailing non-whitespace is an error, as is any syntax
  /// violation (kParseError) — the transport maps that to kLlmError with
  /// no partial completions.
  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  // Insertion-ordered object representation: lookup is linear, which is
  // fine at wire-payload sizes (a handful of keys per object).
  std::vector<std::pair<std::string, Json>> object_;

  void DumpTo(std::string* out) const;
};

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string JsonEscape(const std::string& s);

}  // namespace galois

#endif  // GALOIS_COMMON_JSON_H_
