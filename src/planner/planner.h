#ifndef GALOIS_PLANNER_PLANNER_H_
#define GALOIS_PLANNER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace galois::planner {

/// Logical operator kinds. The plan mirrors Figure 3 of the paper: leaf
/// scans over LLM-backed relations are annotated as prompt-driven key
/// retrievals; filters over LLM relations are annotated as per-key prompt
/// checks; attribute-completion nodes are injected before operators that
/// need not-yet-retrieved attributes.
enum class PlanOp {
  kScan,        // base relation access (DB instance or LLM key scan)
  kFilter,      // sigma
  kRetrieve,    // LLM attribute completion (injected node)
  kJoin,        // theta join
  kAggregate,   // gamma
  kProject,     // pi
  kSort,        // ORDER BY
  kLimit,       // LIMIT
  kDistinct,    // DISTINCT
};

const char* PlanOpName(PlanOp op);

/// A node of the logical plan tree.
struct PlanNode {
  PlanOp op;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kScan
  std::string table;
  std::string alias;
  bool from_llm = false;
  std::string key_column;

  // kFilter / kJoin
  sql::ExprPtr predicate;
  /// True when the filter executes as per-key LLM prompts rather than on
  /// the engine (set by the optimizer for simple predicates on LLM scans).
  bool via_llm = false;
  /// True when the filter was merged into the scan prompt (pushdown).
  bool pushed_into_scan = false;

  // kRetrieve / kProject / kAggregate: column or expression lists.
  std::vector<std::string> columns;
  std::vector<sql::ExprPtr> exprs;

  // kLimit
  int64_t limit = 0;

  /// One-line description ("Scan[LLM] city (keys via prompts)").
  std::string Describe() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Builds the canonical logical plan for `stmt`: scans (with retrieve
/// nodes for every needed non-key attribute), filters, joins, aggregate,
/// project, sort, limit, distinct — bottom-up, unoptimised.
Result<PlanNodePtr> BuildLogicalPlan(const sql::SelectStatement& stmt,
                                     const catalog::Catalog& catalog);

/// Rewrite: marks simple comparisons over LLM scans as LLM-executed filter
/// checks (via_llm) and, when `merge_into_scan` is set, pushes the first
/// such filter into the scan prompt (Section 6's prompt-combining
/// optimisation). Returns the number of filters rewritten.
int OptimizeLlmFilters(PlanNode* root, bool merge_into_scan);

/// Rewrite: removes Retrieve columns that no ancestor consumes
/// (projection pruning; each pruned column saves |keys| prompts).
/// Returns the number of pruned columns.
int PruneRetrievedColumns(PlanNode* root);

/// Pretty-prints the plan as an indented tree (Figure 3 rendering).
std::string Explain(const PlanNode& root);

/// Estimated number of prompts the plan will issue, assuming `num_keys`
/// rows per LLM scan and `page_size` keys per scan page. Used by the
/// optimizer ablations to reason about prompt budgets without running a
/// model.
int64_t EstimatePromptCount(const PlanNode& root, int64_t num_keys,
                            int64_t page_size);

}  // namespace galois::planner

#endif  // GALOIS_PLANNER_PLANNER_H_
