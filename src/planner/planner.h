#ifndef GALOIS_PLANNER_PLANNER_H_
#define GALOIS_PLANNER_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace galois::planner {

/// Logical operator kinds. The plan mirrors Figure 3 of the paper: leaf
/// scans over LLM-backed relations are annotated as prompt-driven key
/// retrievals; filters over LLM relations are annotated as per-key prompt
/// checks; attribute-completion nodes are injected before operators that
/// need not-yet-retrieved attributes.
enum class PlanOp {
  kScan,        // base relation access (DB instance or LLM key scan)
  kFilter,      // sigma
  kRetrieve,    // LLM attribute completion (injected node)
  kJoin,        // theta join
  kAggregate,   // gamma
  kProject,     // pi
  kSort,        // ORDER BY
  kLimit,       // LIMIT
  kDistinct,    // DISTINCT
};

const char* PlanOpName(PlanOp op);

/// One WHERE conjunct bound to an LLM scan as a per-key check prompt (or,
/// for the first one under pushdown, merged into the scan prompt). Set by
/// BindPhysicalAnnotations; the plan compiler turns each into an
/// llm::PromptFilter without re-deriving the decision.
struct ScanFilter {
  std::string column;              // catalog column name (validated)
  std::string column_description;  // catalog description, for the prompt
  std::string op;                  // =, !=, <, <=, >, >=, LIKE
  Value value;                     // literal, mirrored onto `col op value`
  const sql::Expr* conjunct = nullptr;  // the consumed WHERE conjunct
  /// Subsumption legality: true when the engine could re-evaluate this
  /// conjunct over materialised cell values (plain comparison operators
  /// whose verdict is Value::Compare-reproducible). LIKE is not — the
  /// model's pattern matching has no engine-side mirror — so a LIKE
  /// conjunct can serve from cache only as part of an identical filter.
  bool residually_checkable = false;
};

/// A node of the logical plan tree.
struct PlanNode {
  PlanOp op;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kScan
  std::string table;
  std::string alias;
  bool from_llm = false;
  std::string key_column;
  /// WHERE conjuncts this scan executes through the LLM, in conjunct
  /// order (BindPhysicalAnnotations).
  std::vector<ScanFilter> scan_filters;
  /// True when scan_filters[0] is merged into the scan prompt instead of
  /// issuing per-key checks (pushdown policy, decided per scan).
  bool merge_first_filter = false;
  /// Stop key-scan paging once this many keys have been scanned; -1 means
  /// unbounded. Set only when a LIMIT provably bounds the scan (no WHERE,
  /// no joins, no sort/distinct/aggregate, no critic key rejection).
  int64_t scan_key_limit = -1;

  // kFilter / kJoin
  sql::ExprPtr predicate;
  /// True when the filter executes as per-key LLM prompts rather than on
  /// the engine (set by the optimizer for simple predicates on LLM scans).
  bool via_llm = false;
  /// True when the filter was merged into the scan prompt (pushdown).
  bool pushed_into_scan = false;
  /// The engine-side residue of a WHERE filter after
  /// BindPhysicalAnnotations moved conjuncts into scan_filters: the AND of
  /// the unconsumed conjuncts, null when everything was consumed. Only
  /// meaningful when `annotated` is set.
  sql::ExprPtr residual;
  bool annotated = false;

  // kJoin: how the engine executes it (CrossJoin when predicate is null,
  // LeftOuterJoin for kLeft, NestedLoopJoin otherwise).
  sql::JoinType join_type = sql::JoinType::kInner;

  // kRetrieve / kProject / kAggregate: column or expression lists. For
  // kProject, `columns` carries the select-item aliases ("" when none),
  // parallel to exprs.
  std::vector<std::string> columns;
  std::vector<sql::ExprPtr> exprs;

  // kAggregate: the first group_expr_count entries of `exprs` are the
  // explicit GROUP BY expressions; the rest are aggregate-bearing select
  // items.
  size_t group_expr_count = 0;

  // kSort: per-expression direction, parallel to exprs.
  std::vector<bool> descending;

  // kLimit
  int64_t limit = 0;

  /// One-line description ("Scan[LLM] city (keys via prompts)").
  std::string Describe() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Builds the canonical logical plan for `stmt`: scans (with retrieve
/// nodes for every needed non-key attribute), filters, joins, aggregate,
/// project, sort, limit, distinct — bottom-up, unoptimised.
Result<PlanNodePtr> BuildLogicalPlan(const sql::SelectStatement& stmt,
                                     const catalog::Catalog& catalog);

/// Rewrite: marks simple comparisons over LLM scans as LLM-executed filter
/// checks (via_llm) and, when `merge_into_scan` is set, pushes the first
/// such filter into the scan prompt (Section 6's prompt-combining
/// optimisation). Returns the number of filters rewritten.
int OptimizeLlmFilters(PlanNode* root, bool merge_into_scan);

/// Knobs of BindPhysicalAnnotations, mirroring the ExecutionOptions the
/// executor will run under. Plain parameters: the planner stays below
/// core/ in the layering and must not include its options header.
struct BindingOptions {
  /// Execute simple WHERE comparisons on LLM scans as per-key check
  /// prompts (ExecutionOptions::llm_filter_checks).
  bool llm_filter_checks = true;
  /// PushdownPolicy::kAlways — always merge the first scan filter into
  /// the scan prompt.
  bool merge_filter_into_scan = false;
  /// PushdownPolicy::kAuto — merge only when the table's expected
  /// cardinality reaches auto_pushdown_min_rows.
  bool merge_filter_auto = false;
  size_t auto_pushdown_min_rows = 60;
  /// ExecutionOptions::verify_cells: the critic pass may reject scanned
  /// keys, so the first-N-keys prefix of the scan is not the first N
  /// output rows and LIMIT cannot bound paging.
  bool scan_rows_may_drop = false;
  /// Master switch for the LIMIT paging bound (on by default).
  bool bound_scan_paging_by_limit = true;
};

/// The authoritative physical-binding pass: validates every column against
/// the catalog and annotates the plan with everything the plan compiler
/// needs, so planner and executor can never disagree about pushdown or
/// consumed conjuncts (the drift the hardwired ladder had).
///
///   - splits the WHERE filter's conjuncts into per-scan ScanFilters
///     (simple `col op literal` comparisons on LLM scans, conjunct order
///     preserved) and the engine-side `residual`;
///   - decides per scan whether the first filter merges into the scan
///     prompt (merge_first_filter);
///   - recomputes every Retrieve node's columns with the executor's exact
///     resolution rules — catalog-validated, key excluded, consumed filter
///     columns excluded, unqualified ambiguous refs unresolved, `*`
///     anywhere in an expression materialises all columns — emitted in
///     definition order (inserting or removing Retrieve nodes as needed);
///   - derives scan_key_limit when the plan is exactly
///     Limit -> Project -> [Retrieve] -> Scan with nothing that could drop
///     or reorder rows in between (see PlanNode::scan_key_limit).
///
/// Returns the number of WHERE conjuncts consumed as scan filters.
Result<int> BindPhysicalAnnotations(PlanNode* root,
                                    const catalog::Catalog& catalog,
                                    const BindingOptions& options);

/// Rewrite: removes Retrieve columns that no ancestor consumes
/// (projection pruning; each pruned column saves |keys| prompts).
/// Returns the number of pruned columns.
int PruneRetrievedColumns(PlanNode* root);

/// Pretty-prints the plan as an indented tree (Figure 3 rendering).
std::string Explain(const PlanNode& root);

/// Estimated number of prompts the plan will issue, assuming `num_keys`
/// rows per LLM scan and `page_size` keys per scan page. Used by the
/// optimizer ablations to reason about prompt budgets without running a
/// model.
int64_t EstimatePromptCount(const PlanNode& root, int64_t num_keys,
                            int64_t page_size);

}  // namespace galois::planner

#endif  // GALOIS_PLANNER_PLANNER_H_
