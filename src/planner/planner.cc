#include "planner/planner.h"

#include <set>
#include <sstream>

#include "common/strings.h"

namespace galois::planner {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// Collects column names referenced with the given alias (or unqualified).
void CollectColumns(const Expr& e, const std::string& alias,
                    const catalog::TableDef& def,
                    std::set<std::string>* out) {
  sql::VisitExpr(e, [&](const Expr& node) {
    if (node.kind != ExprKind::kColumnRef) return;
    if (!node.table.empty() && !EqualsIgnoreCase(node.table, alias)) {
      return;
    }
    if (def.FindColumn(node.column).ok()) out->insert(node.column);
  });
}

PlanNodePtr MakeNode(PlanOp op) {
  auto node = std::make_unique<PlanNode>();
  node->op = op;
  return node;
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kRetrieve:
      return "Retrieve";
    case PlanOp::kJoin:
      return "Join";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kLimit:
      return "Limit";
    case PlanOp::kDistinct:
      return "Distinct";
  }
  return "?";
}

std::string PlanNode::Describe() const {
  std::ostringstream os;
  os << PlanOpName(op);
  switch (op) {
    case PlanOp::kScan:
      os << "[" << (from_llm ? "LLM" : "DB") << "] " << table;
      if (!alias.empty() && alias != table) os << " AS " << alias;
      if (from_llm) {
        os << " (retrieve key '" << key_column << "' via prompts";
        if (predicate) {
          os << ", filter merged into scan prompt: "
             << predicate->ToString();
        }
        os << ")";
      }
      break;
    case PlanOp::kFilter:
      os << " " << (predicate ? predicate->ToString() : "?");
      if (pushed_into_scan) {
        os << " (merged into scan prompt)";
      } else if (via_llm) {
        os << " (one check prompt per key)";
      }
      break;
    case PlanOp::kRetrieve:
      os << " " << alias << ".{" << Join(columns, ", ")
         << "} (one prompt per key per attribute)";
      break;
    case PlanOp::kJoin:
      if (predicate) os << " ON " << predicate->ToString();
      break;
    case PlanOp::kAggregate:
    case PlanOp::kProject: {
      std::vector<std::string> parts;
      for (const auto& e : exprs) parts.push_back(e->ToString());
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case PlanOp::kSort: {
      std::vector<std::string> parts;
      for (const auto& e : exprs) parts.push_back(e->ToString());
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case PlanOp::kLimit:
      os << " " << limit;
      break;
    case PlanOp::kDistinct:
      break;
  }
  return os.str();
}

Result<PlanNodePtr> BuildLogicalPlan(const sql::SelectStatement& stmt,
                                     const catalog::Catalog& catalog) {
  // 1. One scan (+ retrieve) subtree per base relation.
  struct BaseInfo {
    const sql::TableRef* ref;
    const catalog::TableDef* def;
  };
  std::vector<BaseInfo> bases;
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                            catalog.GetTable(ref.table));
    bases.push_back({&ref, def});
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                            catalog.GetTable(j.table.table));
    bases.push_back({&j.table, def});
  }

  // Build scans; LLM scans only yield keys, so inject a Retrieve node for
  // every other column the statement references.
  std::vector<PlanNodePtr> subtrees;
  for (const BaseInfo& info : bases) {
    PlanNodePtr scan = MakeNode(PlanOp::kScan);
    scan->table = info.def->name;
    scan->alias = info.ref->EffectiveAlias();
    scan->key_column = info.def->key_column;
    if (info.ref->source == "LLM") {
      scan->from_llm = true;
    } else if (info.ref->source == "DB") {
      scan->from_llm = false;
    } else {
      scan->from_llm =
          info.def->default_source == catalog::SourceKind::kLlm;
    }
    if (!scan->from_llm) {
      subtrees.push_back(std::move(scan));
      continue;
    }
    std::set<std::string> needed;
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& c : info.def->columns) needed.insert(c.name);
        continue;
      }
      CollectColumns(*item.expr, scan->alias, *info.def, &needed);
    }
    if (stmt.where) {
      CollectColumns(*stmt.where, scan->alias, *info.def, &needed);
    }
    for (const auto& j : stmt.joins) {
      if (j.condition) {
        CollectColumns(*j.condition, scan->alias, *info.def, &needed);
      }
    }
    for (const auto& g : stmt.group_by) {
      CollectColumns(*g, scan->alias, *info.def, &needed);
    }
    if (stmt.having) {
      CollectColumns(*stmt.having, scan->alias, *info.def, &needed);
    }
    for (const auto& o : stmt.order_by) {
      CollectColumns(*o.expr, scan->alias, *info.def, &needed);
    }
    needed.erase(info.def->key_column);
    std::string alias = scan->alias;
    PlanNodePtr subtree = std::move(scan);
    if (!needed.empty()) {
      PlanNodePtr retrieve = MakeNode(PlanOp::kRetrieve);
      retrieve->alias = alias;
      retrieve->columns.assign(needed.begin(), needed.end());
      retrieve->children.push_back(std::move(subtree));
      subtree = std::move(retrieve);
    }
    subtrees.push_back(std::move(subtree));
  }

  // 2. Join tree, left-deep in FROM/JOIN order.
  PlanNodePtr root = std::move(subtrees[0]);
  for (size_t i = 1; i < subtrees.size(); ++i) {
    PlanNodePtr join = MakeNode(PlanOp::kJoin);
    size_t join_idx = i - stmt.from.size();
    if (i >= stmt.from.size() && stmt.joins[join_idx].condition) {
      join->predicate = stmt.joins[join_idx].condition->Clone();
    }
    join->children.push_back(std::move(root));
    join->children.push_back(std::move(subtrees[i]));
    root = std::move(join);
  }

  // 3. WHERE.
  if (stmt.where) {
    PlanNodePtr filter = MakeNode(PlanOp::kFilter);
    filter->predicate = stmt.where->Clone();
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }

  // 4. Aggregate.
  bool has_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : stmt.select_list) {
    if (sql::ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (has_agg) {
    PlanNodePtr agg = MakeNode(PlanOp::kAggregate);
    for (const auto& g : stmt.group_by) agg->exprs.push_back(g->Clone());
    for (const auto& item : stmt.select_list) {
      if (sql::ContainsAggregate(*item.expr)) {
        agg->exprs.push_back(item.expr->Clone());
      }
    }
    agg->children.push_back(std::move(root));
    root = std::move(agg);
    if (stmt.having) {
      PlanNodePtr having = MakeNode(PlanOp::kFilter);
      having->predicate = stmt.having->Clone();
      having->children.push_back(std::move(root));
      root = std::move(having);
    }
  }

  // 5. Project.
  PlanNodePtr project = MakeNode(PlanOp::kProject);
  for (const auto& item : stmt.select_list) {
    project->exprs.push_back(item.expr->Clone());
  }
  project->children.push_back(std::move(root));
  root = std::move(project);

  // 6. Sort / Distinct / Limit.
  if (!stmt.order_by.empty()) {
    PlanNodePtr sort = MakeNode(PlanOp::kSort);
    for (const auto& o : stmt.order_by) sort->exprs.push_back(o.expr->Clone());
    sort->children.push_back(std::move(root));
    root = std::move(sort);
  }
  if (stmt.distinct) {
    PlanNodePtr distinct = MakeNode(PlanOp::kDistinct);
    distinct->children.push_back(std::move(root));
    root = std::move(distinct);
  }
  if (stmt.limit.has_value()) {
    PlanNodePtr limit = MakeNode(PlanOp::kLimit);
    limit->limit = *stmt.limit;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }
  return root;
}

namespace {

/// Finds the scan feeding a filter (through Retrieve nodes) for the alias
/// referenced by a predicate; returns nullptr when ambiguous.
PlanNode* FindLlmScan(PlanNode* node) {
  if (node->op == PlanOp::kScan) {
    return node->from_llm ? node : nullptr;
  }
  if (node->op == PlanOp::kRetrieve) {
    return FindLlmScan(node->children[0].get());
  }
  return nullptr;
}

/// Alias referenced by a simple predicate ("" if none/mixed).
std::string PredicateAlias(const Expr& e) {
  std::string alias;
  bool mixed = false;
  sql::VisitExpr(e, [&](const Expr& node) {
    if (node.kind != ExprKind::kColumnRef) return;
    if (alias.empty()) {
      alias = node.table;
    } else if (!EqualsIgnoreCase(alias, node.table)) {
      mixed = true;
    }
  });
  return mixed ? "" : alias;
}

}  // namespace

int OptimizeLlmFilters(PlanNode* root, bool merge_into_scan) {
  int rewritten = 0;
  for (auto& child : root->children) {
    rewritten += OptimizeLlmFilters(child.get(), merge_into_scan);
  }
  if (root->op != PlanOp::kFilter || root->predicate == nullptr ||
      root->via_llm) {
    return rewritten;
  }
  PlanNode* input = root->children[0].get();
  PlanNode* scan = FindLlmScan(input);
  if (scan == nullptr) return rewritten;
  // The filter must be a conjunction of simple comparisons on the scan.
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(root->predicate.get(), &conjuncts);
  // Fake TableDef lookup is not available here; accept column refs whose
  // alias matches the scan (the executor re-validates against the
  // catalog).
  bool all_simple = true;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) {
      all_simple = false;
      break;
    }
    const Expr* lhs = c->children[0].get();
    const Expr* rhs = c->children[1].get();
    bool shape = (lhs->kind == ExprKind::kColumnRef &&
                  rhs->kind == ExprKind::kLiteral) ||
                 (rhs->kind == ExprKind::kColumnRef &&
                  lhs->kind == ExprKind::kLiteral);
    if (!shape) {
      all_simple = false;
      break;
    }
    std::string alias = PredicateAlias(*c);
    if (!alias.empty() && !EqualsIgnoreCase(alias, scan->alias)) {
      all_simple = false;
      break;
    }
  }
  if (!all_simple) return rewritten;
  root->via_llm = true;
  ++rewritten;
  if (merge_into_scan) {
    root->pushed_into_scan = true;
    scan->predicate = root->predicate->Clone();
  }
  return rewritten;
}

int PruneRetrievedColumns(PlanNode* root) {
  // Gather every column name referenced anywhere above each Retrieve.
  // Simple conservative approach: collect all column refs in the whole
  // plan and drop retrieved columns never mentioned.
  std::set<std::string> referenced;
  std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.predicate) {
      sql::VisitExpr(*n.predicate, [&](const Expr& e) {
        if (e.kind == ExprKind::kColumnRef) referenced.insert(
            ToLower(e.column));
      });
    }
    for (const auto& e : n.exprs) {
      sql::VisitExpr(*e, [&](const Expr& node) {
        if (node.kind == ExprKind::kColumnRef) {
          referenced.insert(ToLower(node.column));
        }
      });
    }
    for (const auto& c : n.children) collect(*c);
  };
  collect(*root);
  int pruned = 0;
  std::function<void(PlanNode*)> prune = [&](PlanNode* n) {
    if (n->op == PlanOp::kRetrieve) {
      std::vector<std::string> kept;
      for (const std::string& col : n->columns) {
        if (referenced.count(ToLower(col)) > 0) {
          kept.push_back(col);
        } else {
          ++pruned;
        }
      }
      n->columns = std::move(kept);
    }
    for (auto& c : n->children) prune(c.get());
  };
  prune(root);
  return pruned;
}

namespace {

void ExplainRec(const PlanNode& node, int depth, std::ostringstream* os) {
  *os << std::string(static_cast<size_t>(depth) * 2, ' ')
      << node.Describe() << "\n";
  for (const auto& c : node.children) ExplainRec(*c, depth + 1, os);
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::ostringstream os;
  ExplainRec(root, 0, &os);
  return os.str();
}

int64_t EstimatePromptCount(const PlanNode& root, int64_t num_keys,
                            int64_t page_size) {
  int64_t prompts = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    switch (n.op) {
      case PlanOp::kScan:
        if (n.from_llm) {
          prompts += (num_keys + page_size - 1) / page_size + 1;
        }
        break;
      case PlanOp::kFilter:
        if (n.via_llm && !n.pushed_into_scan) prompts += num_keys;
        break;
      case PlanOp::kRetrieve:
        prompts += num_keys * static_cast<int64_t>(n.columns.size());
        break;
      default:
        break;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(root);
  return prompts;
}

}  // namespace galois::planner
