#include "planner/planner.h"

#include <functional>
#include <set>
#include <sstream>

#include "common/strings.h"

namespace galois::planner {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// Collects column names referenced with the given alias (or unqualified).
void CollectColumns(const Expr& e, const std::string& alias,
                    const catalog::TableDef& def,
                    std::set<std::string>* out) {
  sql::VisitExpr(e, [&](const Expr& node) {
    if (node.kind != ExprKind::kColumnRef) return;
    if (!node.table.empty() && !EqualsIgnoreCase(node.table, alias)) {
      return;
    }
    if (def.FindColumn(node.column).ok()) out->insert(node.column);
  });
}

PlanNodePtr MakeNode(PlanOp op) {
  auto node = std::make_unique<PlanNode>();
  node->op = op;
  return node;
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kRetrieve:
      return "Retrieve";
    case PlanOp::kJoin:
      return "Join";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kLimit:
      return "Limit";
    case PlanOp::kDistinct:
      return "Distinct";
  }
  return "?";
}

std::string PlanNode::Describe() const {
  std::ostringstream os;
  os << PlanOpName(op);
  switch (op) {
    case PlanOp::kScan:
      os << "[" << (from_llm ? "LLM" : "DB") << "] " << table;
      if (!alias.empty() && alias != table) os << " AS " << alias;
      if (from_llm) {
        os << " (retrieve key '" << key_column << "' via prompts";
        if (predicate) {
          os << ", filter merged into scan prompt: "
             << predicate->ToString();
        }
        if (scan_key_limit >= 0) {
          os << ", paging stops at " << scan_key_limit << " keys";
        }
        os << ")";
      }
      break;
    case PlanOp::kFilter:
      os << " " << (predicate ? predicate->ToString() : "?");
      if (pushed_into_scan) {
        os << " (merged into scan prompt)";
      } else if (via_llm) {
        os << " (one check prompt per key)";
      }
      break;
    case PlanOp::kRetrieve:
      os << " " << alias << ".{" << Join(columns, ", ")
         << "} (one prompt per key per attribute)";
      break;
    case PlanOp::kJoin:
      if (predicate) os << " ON " << predicate->ToString();
      break;
    case PlanOp::kAggregate:
    case PlanOp::kProject: {
      std::vector<std::string> parts;
      for (const auto& e : exprs) parts.push_back(e->ToString());
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case PlanOp::kSort: {
      std::vector<std::string> parts;
      for (const auto& e : exprs) parts.push_back(e->ToString());
      os << " [" << Join(parts, ", ") << "]";
      break;
    }
    case PlanOp::kLimit:
      os << " " << limit;
      break;
    case PlanOp::kDistinct:
      break;
  }
  return os.str();
}

Result<PlanNodePtr> BuildLogicalPlan(const sql::SelectStatement& stmt,
                                     const catalog::Catalog& catalog) {
  // 1. One scan (+ retrieve) subtree per base relation.
  struct BaseInfo {
    const sql::TableRef* ref;
    const catalog::TableDef* def;
  };
  std::vector<BaseInfo> bases;
  auto add_base = [&](const sql::TableRef& ref) -> Status {
    GALOIS_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                            catalog.GetTable(ref.table));
    if (!ref.source.empty() && ref.source != "LLM" && ref.source != "DB") {
      return Status::BindError("unknown source qualifier '" + ref.source +
                               "' (expected LLM or DB)");
    }
    bases.push_back({&ref, def});
    return Status::OK();
  };
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_RETURN_IF_ERROR(add_base(ref));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_RETURN_IF_ERROR(add_base(j.table));
  }

  // Build scans; LLM scans only yield keys, so inject a Retrieve node for
  // every other column the statement references.
  std::vector<PlanNodePtr> subtrees;
  for (const BaseInfo& info : bases) {
    PlanNodePtr scan = MakeNode(PlanOp::kScan);
    scan->table = info.def->name;
    scan->alias = info.ref->EffectiveAlias();
    scan->key_column = info.def->key_column;
    if (info.ref->source == "LLM") {
      scan->from_llm = true;
    } else if (info.ref->source == "DB") {
      scan->from_llm = false;
    } else {
      scan->from_llm =
          info.def->default_source == catalog::SourceKind::kLlm;
    }
    if (!scan->from_llm) {
      subtrees.push_back(std::move(scan));
      continue;
    }
    std::set<std::string> needed;
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& c : info.def->columns) needed.insert(c.name);
        continue;
      }
      CollectColumns(*item.expr, scan->alias, *info.def, &needed);
    }
    if (stmt.where) {
      CollectColumns(*stmt.where, scan->alias, *info.def, &needed);
    }
    for (const auto& j : stmt.joins) {
      if (j.condition) {
        CollectColumns(*j.condition, scan->alias, *info.def, &needed);
      }
    }
    for (const auto& g : stmt.group_by) {
      CollectColumns(*g, scan->alias, *info.def, &needed);
    }
    if (stmt.having) {
      CollectColumns(*stmt.having, scan->alias, *info.def, &needed);
    }
    for (const auto& o : stmt.order_by) {
      CollectColumns(*o.expr, scan->alias, *info.def, &needed);
    }
    needed.erase(info.def->key_column);
    std::string alias = scan->alias;
    PlanNodePtr subtree = std::move(scan);
    if (!needed.empty()) {
      PlanNodePtr retrieve = MakeNode(PlanOp::kRetrieve);
      retrieve->alias = alias;
      retrieve->columns.assign(needed.begin(), needed.end());
      retrieve->children.push_back(std::move(subtree));
      subtree = std::move(retrieve);
    }
    subtrees.push_back(std::move(subtree));
  }

  // 2. Join tree, left-deep in FROM/JOIN order.
  PlanNodePtr root = std::move(subtrees[0]);
  for (size_t i = 1; i < subtrees.size(); ++i) {
    PlanNodePtr join = MakeNode(PlanOp::kJoin);
    if (i >= stmt.from.size()) {
      size_t join_idx = i - stmt.from.size();
      join->join_type = stmt.joins[join_idx].type;
      if (stmt.joins[join_idx].condition) {
        join->predicate = stmt.joins[join_idx].condition->Clone();
      }
    }
    join->children.push_back(std::move(root));
    join->children.push_back(std::move(subtrees[i]));
    root = std::move(join);
  }

  // 3. WHERE.
  if (stmt.where) {
    PlanNodePtr filter = MakeNode(PlanOp::kFilter);
    filter->predicate = stmt.where->Clone();
    filter->children.push_back(std::move(root));
    root = std::move(filter);
  }

  // 4. Aggregate.
  bool has_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : stmt.select_list) {
    if (sql::ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (has_agg) {
    PlanNodePtr agg = MakeNode(PlanOp::kAggregate);
    agg->group_expr_count = stmt.group_by.size();
    for (const auto& g : stmt.group_by) agg->exprs.push_back(g->Clone());
    for (const auto& item : stmt.select_list) {
      if (sql::ContainsAggregate(*item.expr)) {
        agg->exprs.push_back(item.expr->Clone());
      }
    }
    agg->children.push_back(std::move(root));
    root = std::move(agg);
    if (stmt.having) {
      PlanNodePtr having = MakeNode(PlanOp::kFilter);
      having->predicate = stmt.having->Clone();
      having->children.push_back(std::move(root));
      root = std::move(having);
    }
  }

  // 5. Project.
  PlanNodePtr project = MakeNode(PlanOp::kProject);
  for (const auto& item : stmt.select_list) {
    project->exprs.push_back(item.expr->Clone());
    project->columns.push_back(item.alias);
  }
  project->children.push_back(std::move(root));
  root = std::move(project);

  // 6. Sort / Distinct / Limit.
  if (!stmt.order_by.empty()) {
    PlanNodePtr sort = MakeNode(PlanOp::kSort);
    for (const auto& o : stmt.order_by) {
      sort->exprs.push_back(o.expr->Clone());
      sort->descending.push_back(o.descending);
    }
    sort->children.push_back(std::move(root));
    root = std::move(sort);
  }
  if (stmt.distinct) {
    PlanNodePtr distinct = MakeNode(PlanOp::kDistinct);
    distinct->children.push_back(std::move(root));
    root = std::move(distinct);
  }
  if (stmt.limit.has_value()) {
    PlanNodePtr limit = MakeNode(PlanOp::kLimit);
    limit->limit = *stmt.limit;
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }
  return root;
}

namespace {

/// Finds the scan feeding a filter (through Retrieve nodes) for the alias
/// referenced by a predicate; returns nullptr when ambiguous.
PlanNode* FindLlmScan(PlanNode* node) {
  if (node->op == PlanOp::kScan) {
    return node->from_llm ? node : nullptr;
  }
  if (node->op == PlanOp::kRetrieve) {
    return FindLlmScan(node->children[0].get());
  }
  return nullptr;
}

/// Alias referenced by a simple predicate ("" if none/mixed).
std::string PredicateAlias(const Expr& e) {
  std::string alias;
  bool mixed = false;
  sql::VisitExpr(e, [&](const Expr& node) {
    if (node.kind != ExprKind::kColumnRef) return;
    if (alias.empty()) {
      alias = node.table;
    } else if (!EqualsIgnoreCase(alias, node.table)) {
      mixed = true;
    }
  });
  return mixed ? "" : alias;
}

}  // namespace

int OptimizeLlmFilters(PlanNode* root, bool merge_into_scan) {
  int rewritten = 0;
  for (auto& child : root->children) {
    rewritten += OptimizeLlmFilters(child.get(), merge_into_scan);
  }
  if (root->op != PlanOp::kFilter || root->predicate == nullptr ||
      root->via_llm) {
    return rewritten;
  }
  PlanNode* input = root->children[0].get();
  PlanNode* scan = FindLlmScan(input);
  if (scan == nullptr) return rewritten;
  // The filter must be a conjunction of simple comparisons on the scan.
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(root->predicate.get(), &conjuncts);
  // Fake TableDef lookup is not available here; accept column refs whose
  // alias matches the scan (the executor re-validates against the
  // catalog).
  bool all_simple = true;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) {
      all_simple = false;
      break;
    }
    const Expr* lhs = c->children[0].get();
    const Expr* rhs = c->children[1].get();
    bool shape = (lhs->kind == ExprKind::kColumnRef &&
                  rhs->kind == ExprKind::kLiteral) ||
                 (rhs->kind == ExprKind::kColumnRef &&
                  lhs->kind == ExprKind::kLiteral);
    if (!shape) {
      all_simple = false;
      break;
    }
    std::string alias = PredicateAlias(*c);
    if (!alias.empty() && !EqualsIgnoreCase(alias, scan->alias)) {
      all_simple = false;
      break;
    }
  }
  if (!all_simple) return rewritten;
  root->via_llm = true;
  ++rewritten;
  if (merge_into_scan) {
    root->pushed_into_scan = true;
    scan->predicate = root->predicate->Clone();
  }
  return rewritten;
}

namespace {

/// SQL symbol for a comparison operator usable in prompt filters; empty
/// when the operator is not a simple comparison.
std::string ComparisonSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kLike:
      return "LIKE";
    default:
      return "";
  }
}

/// Mirror of a comparison when operands are swapped (lit op col ->
/// col op' lit).
std::string MirrorSymbol(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  if (op == "=" || op == "!=") return op;
  return "";  // LIKE cannot be mirrored
}

/// Scans in execution order: the join tree is left-deep in FROM/JOIN
/// order, so an in-order traversal yields FROM order.
void CollectScans(PlanNode* node, std::vector<PlanNode*>* out) {
  if (node->op == PlanOp::kScan) {
    out->push_back(node);
    return;
  }
  for (auto& c : node->children) CollectScans(c.get(), out);
}

}  // namespace

Result<int> BindPhysicalAnnotations(PlanNode* root,
                                    const catalog::Catalog& catalog,
                                    const BindingOptions& options) {
  // --- bind every scan to its catalog definition (FROM order) -----------
  std::vector<PlanNode*> scans;
  CollectScans(root, &scans);
  std::vector<const catalog::TableDef*> defs(scans.size());
  for (size_t i = 0; i < scans.size(); ++i) {
    GALOIS_ASSIGN_OR_RETURN(defs[i], catalog.GetTable(scans[i]->table));
  }

  // Structural landmarks. BuildLogicalPlan emits at most one WHERE filter
  // (child is not an Aggregate) and one HAVING filter (child is).
  PlanNode* where_filter = nullptr;
  PlanNode* having_filter = nullptr;
  PlanNode* aggregate = nullptr;
  PlanNode* project = nullptr;
  PlanNode* sort = nullptr;
  std::vector<PlanNode*> joins;
  std::function<void(PlanNode*)> classify = [&](PlanNode* n) {
    switch (n->op) {
      case PlanOp::kFilter:
        if (n->children[0]->op == PlanOp::kAggregate) {
          having_filter = n;
        } else {
          where_filter = n;
        }
        break;
      case PlanOp::kAggregate:
        aggregate = n;
        break;
      case PlanOp::kProject:
        project = n;
        break;
      case PlanOp::kSort:
        sort = n;
        break;
      case PlanOp::kJoin:
        joins.push_back(n);
        break;
      default:
        break;
    }
    for (auto& c : n->children) classify(c.get());
  };
  classify(root);

  // Column-reference resolution, byte-for-byte the retired ladder's rule:
  // qualified refs match a scan alias case-insensitively; unqualified refs
  // resolve only when exactly one base (DB bases included) has the column.
  auto resolve = [&](const Expr& ref) -> int {
    if (!ref.table.empty()) {
      for (size_t i = 0; i < scans.size(); ++i) {
        if (EqualsIgnoreCase(scans[i]->alias, ref.table)) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    int found = -1;
    for (size_t i = 0; i < scans.size(); ++i) {
      if (defs[i]->FindColumn(ref.column).ok()) {
        if (found >= 0) return -1;  // ambiguous
        found = static_cast<int>(i);
      }
    }
    return found;
  };

  // --- split WHERE into per-scan LLM filters and the engine residue -----
  int consumed_count = 0;
  std::vector<const Expr*> conjuncts;
  std::set<const Expr*> consumed;
  if (where_filter != nullptr) {
    FlattenConjuncts(where_filter->predicate.get(), &conjuncts);
    if (options.llm_filter_checks) {
      for (const Expr* c : conjuncts) {
        if (c->kind != ExprKind::kBinary) continue;
        std::string op = ComparisonSymbol(c->binary_op);
        if (op.empty()) continue;
        const Expr* lhs = c->children[0].get();
        const Expr* rhs = c->children[1].get();
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        if (lhs->kind == ExprKind::kColumnRef &&
            rhs->kind == ExprKind::kLiteral) {
          col = lhs;
          lit = rhs;
        } else if (rhs->kind == ExprKind::kColumnRef &&
                   lhs->kind == ExprKind::kLiteral) {
          col = rhs;
          lit = lhs;
          op = MirrorSymbol(op);
          if (op.empty()) continue;
        } else {
          continue;
        }
        int t = resolve(*col);
        if (t < 0 || !scans[t]->from_llm) continue;
        auto coldef = defs[t]->FindColumn(col->column);
        if (!coldef.ok()) continue;
        ScanFilter filter;
        filter.column = coldef.value()->name;
        filter.column_description = coldef.value()->description;
        filter.op = op;
        filter.value = lit->literal;
        filter.conjunct = c;
        // Legality proof for predicate-subsumption caching: a conjunct
        // is residually checkable when its verdict on a deterministic
        // model reduces to Value::Compare over the materialised cell —
        // every plain comparison does; LIKE does not (the model, not
        // the engine, owns pattern semantics).
        filter.residually_checkable = op != "LIKE";
        scans[t]->scan_filters.push_back(std::move(filter));
        consumed.insert(c);
        ++consumed_count;
      }
    }
    // The residue the engine evaluates: AND of the unconsumed conjuncts,
    // left-folded in conjunct order.
    sql::ExprPtr residual;
    for (const Expr* c : conjuncts) {
      if (consumed.count(c) > 0) continue;
      sql::ExprPtr clone = c->Clone();
      residual = residual
                     ? Expr::MakeBinary(BinaryOp::kAnd, std::move(residual),
                                        std::move(clone))
                     : std::move(clone);
    }
    where_filter->residual = std::move(residual);
    where_filter->annotated = true;
  }

  // --- pushdown decision per scan ---------------------------------------
  for (size_t i = 0; i < scans.size(); ++i) {
    bool push = options.merge_filter_into_scan ||
                (options.merge_filter_auto &&
                 defs[i]->expected_rows >= options.auto_pushdown_min_rows);
    scans[i]->merge_first_filter = push && !scans[i]->scan_filters.empty();
  }

  // --- recompute Retrieve columns (the executor's exact marking rules) --
  std::vector<std::vector<const catalog::ColumnDef*>> needed(scans.size());
  std::vector<bool> needs_all(scans.size(), false);
  auto mark_needed = [&](const Expr& e) {
    sql::VisitExpr(e, [&](const Expr& node) {
      if (node.kind == ExprKind::kStar) {
        for (size_t i = 0; i < scans.size(); ++i) {
          if (node.table.empty() ||
              EqualsIgnoreCase(scans[i]->alias, node.table)) {
            needs_all[i] = true;
          }
        }
        return;
      }
      if (node.kind != ExprKind::kColumnRef) return;
      int t = resolve(node);
      if (t < 0) return;  // select-alias refs etc.; the engine binds them
      auto coldef = defs[t]->FindColumn(node.column);
      if (!coldef.ok()) return;
      if (EqualsIgnoreCase(coldef.value()->name, defs[t]->key_column)) {
        return;  // the key is always retrieved
      }
      for (const catalog::ColumnDef* existing : needed[t]) {
        if (existing == coldef.value()) return;
      }
      needed[t].push_back(coldef.value());
    });
  };
  if (project != nullptr) {
    for (const auto& e : project->exprs) mark_needed(*e);
  }
  for (PlanNode* j : joins) {
    if (j->predicate) mark_needed(*j->predicate);
  }
  for (const Expr* c : conjuncts) {
    if (consumed.count(c) == 0) mark_needed(*c);
  }
  if (aggregate != nullptr) {
    for (size_t g = 0; g < aggregate->group_expr_count; ++g) {
      mark_needed(*aggregate->exprs[g]);
    }
  }
  if (having_filter != nullptr) mark_needed(*having_filter->predicate);
  if (sort != nullptr) {
    for (const auto& e : sort->exprs) mark_needed(*e);
  }

  // Definition-order column lists per LLM scan, then reconcile the
  // Retrieve nodes: BuildLogicalPlan's alphabetical superset (which still
  // counts consumed filter columns) is replaced wholesale, inserting or
  // removing nodes where the sets changed.
  std::vector<std::vector<std::string>> retrieve_cols(scans.size());
  for (size_t i = 0; i < scans.size(); ++i) {
    if (!scans[i]->from_llm) continue;  // DB scans read full instances
    std::vector<std::string>& cols = retrieve_cols[i];
    if (needs_all[i]) {
      GALOIS_ASSIGN_OR_RETURN(size_t key_idx, defs[i]->KeyIndex());
      for (size_t c = 0; c < defs[i]->columns.size(); ++c) {
        if (c != key_idx) cols.push_back(defs[i]->columns[c].name);
      }
      continue;
    }
    for (const catalog::ColumnDef& col : defs[i]->columns) {
      for (const catalog::ColumnDef* n : needed[i]) {
        if (n == &col) {
          cols.push_back(col.name);
          break;
        }
      }
    }
  }
  auto scan_index = [&](const PlanNode* scan) -> int {
    for (size_t i = 0; i < scans.size(); ++i) {
      if (scans[i] == scan) return static_cast<int>(i);
    }
    return -1;
  };
  std::function<void(PlanNodePtr*)> reconcile = [&](PlanNodePtr* slot) {
    PlanNode* n = slot->get();
    PlanNode* scan = n;
    if (n->op == PlanOp::kRetrieve) scan = n->children[0].get();
    if (scan->op == PlanOp::kScan && scan->from_llm) {
      const std::vector<std::string>& cols = retrieve_cols[scan_index(scan)];
      if (cols.empty()) {
        if (n->op == PlanOp::kRetrieve) {
          *slot = std::move(n->children[0]);  // splice the node out
        }
      } else if (n->op == PlanOp::kRetrieve) {
        n->columns = cols;
      } else {
        auto retrieve = std::make_unique<PlanNode>();
        retrieve->op = PlanOp::kRetrieve;
        retrieve->alias = scan->alias;
        retrieve->columns = cols;
        retrieve->children.push_back(std::move(*slot));
        *slot = std::move(retrieve);
      }
      return;
    }
    for (auto& c : n->children) reconcile(&c);
  };
  for (auto& c : root->children) reconcile(&c);

  // --- LIMIT bounds key-scan paging when provably safe ------------------
  // Required shape: Limit -> Project -> [Retrieve] -> Scan[LLM]. Any
  // filter, join, aggregate, sort or distinct would interpose a node and
  // break the chain — each of them can drop or reorder rows, so the first
  // N scanned keys would not be the first N output rows. The critic key
  // pass (scan_rows_may_drop) rejects keys for the same reason. ORDER BY
  // on the key does NOT qualify: scan paging enumerates keys in
  // first-seen order, not key order.
  if (options.bound_scan_paging_by_limit && !options.scan_rows_may_drop &&
      root->op == PlanOp::kLimit && root->limit >= 0 &&
      root->children[0]->op == PlanOp::kProject) {
    PlanNode* s = root->children[0]->children[0].get();
    if (s->op == PlanOp::kRetrieve) s = s->children[0].get();
    if (s->op == PlanOp::kScan && s->from_llm && s->scan_filters.empty()) {
      s->scan_key_limit = root->limit;
    }
  }

  return consumed_count;
}

int PruneRetrievedColumns(PlanNode* root) {
  // Gather every column name referenced anywhere above each Retrieve.
  // Simple conservative approach: collect all column refs in the whole
  // plan and drop retrieved columns never mentioned.
  std::set<std::string> referenced;
  std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.predicate) {
      sql::VisitExpr(*n.predicate, [&](const Expr& e) {
        if (e.kind == ExprKind::kColumnRef) referenced.insert(
            ToLower(e.column));
      });
    }
    for (const auto& e : n.exprs) {
      sql::VisitExpr(*e, [&](const Expr& node) {
        if (node.kind == ExprKind::kColumnRef) {
          referenced.insert(ToLower(node.column));
        }
      });
    }
    for (const auto& c : n.children) collect(*c);
  };
  collect(*root);
  int pruned = 0;
  std::function<void(PlanNode*)> prune = [&](PlanNode* n) {
    if (n->op == PlanOp::kRetrieve) {
      std::vector<std::string> kept;
      for (const std::string& col : n->columns) {
        if (referenced.count(ToLower(col)) > 0) {
          kept.push_back(col);
        } else {
          ++pruned;
        }
      }
      n->columns = std::move(kept);
    }
    for (auto& c : n->children) prune(c.get());
  };
  prune(root);
  return pruned;
}

namespace {

void ExplainRec(const PlanNode& node, int depth, std::ostringstream* os) {
  *os << std::string(static_cast<size_t>(depth) * 2, ' ')
      << node.Describe() << "\n";
  for (const auto& c : node.children) ExplainRec(*c, depth + 1, os);
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::ostringstream os;
  ExplainRec(root, 0, &os);
  return os.str();
}

int64_t EstimatePromptCount(const PlanNode& root, int64_t num_keys,
                            int64_t page_size) {
  int64_t prompts = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    switch (n.op) {
      case PlanOp::kScan:
        if (n.from_llm) {
          prompts += (num_keys + page_size - 1) / page_size + 1;
        }
        break;
      case PlanOp::kFilter:
        if (n.via_llm && !n.pushed_into_scan) prompts += num_keys;
        break;
      case PlanOp::kRetrieve:
        prompts += num_keys * static_cast<int64_t>(n.columns.size());
        break;
      default:
        break;
    }
    for (const auto& c : n.children) walk(*c);
  };
  walk(root);
  return prompts;
}

}  // namespace galois::planner
