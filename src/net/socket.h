#ifndef GALOIS_NET_SOCKET_H_
#define GALOIS_NET_SOCKET_H_

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"

namespace galois::net {

/// The shared socket layer under every networked component: the HttpLlm
/// transport (src/llm/http_llm.cc), the loopback fault-injection server
/// (tests/fake_llm_server.cc) and the galoisd daemon (galois_server.cc)
/// all speak through these helpers, so partial-IO handling, EINTR
/// retries, deadline bookkeeping and SIGPIPE hardening are implemented
/// — and unit-tested — exactly once (tests/net_socket_test.cc).
///
/// Error vocabulary: transport-level faults (timeout, refused connect,
/// peer closed early) are StatusCode::kIoError — the caller decides what
/// a flaky wire means for its protocol (HttpLlm marks them retryable).
/// Protocol violations the peer *deterministically* produced (a garbage
/// Content-Length, a bad frame magic) are kParseError — retrying cannot
/// fix those, and the two codes keep the classification honest.

/// Injectable syscall surface. Production code passes nullptr everywhere
/// (meaning Default()); the unit suite substitutes shims that serve one
/// byte per send, storm EINTR for the first N calls, or fail outright —
/// so the retry/partial-IO paths are exercised deterministically instead
/// of hoping the kernel misbehaves on cue.
struct SyscallShim {
  std::function<ssize_t(int fd, void* buf, size_t len)> recv_fn;
  std::function<ssize_t(int fd, const void* buf, size_t len)> send_fn;
  std::function<int(struct pollfd* fds, nfds_t nfds, int timeout_ms)> poll_fn;

  /// The real syscalls (recv/send with MSG_NOSIGNAL/poll).
  static const SyscallShim& Default();
};

/// Resolves `shim` to Default() when null.
inline const SyscallShim& ResolveShim(const SyscallShim* shim) {
  return shim == nullptr ? SyscallShim::Default() : *shim;
}

/// Monotonic milliseconds (steady_clock) — the time base every deadline
/// in this layer is expressed in.
int64_t NowMs();

/// Absolute-deadline sentinel meaning "never".
constexpr int64_t kNoDeadline = INT64_MAX;

/// Installs SIG_IGN for SIGPIPE, once per process. Every send in this
/// layer also passes MSG_NOSIGNAL, but a long-running daemon must not be
/// one exotic write path (or third-party library) away from dying
/// because a client hung up first — defence in depth. Idempotent and
/// thread-safe; never overrides a real handler the embedding
/// application installed.
void IgnoreSigpipe();

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd = -1) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) : fd_(other.release()) {}
  Fd& operator=(Fd&& other);

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_;
};

/// Waits until `fd` is ready for the poll `events` or `deadline_ms`
/// (absolute, NowMs base) passes. Returns false on timeout; EINTR never
/// terminates the wait early.
bool WaitReady(int fd, short events, int64_t deadline_ms,
               const SyscallShim* shim = nullptr);

/// Writes all of `data`, riding out partial sends, EAGAIN and EINTR.
/// kIoError on a dead peer (EPIPE/ECONNRESET) or an expired deadline.
Status SendAll(int fd, const std::string& data, int64_t deadline_ms,
               const SyscallShim* shim = nullptr);

/// Reads up to `cap` bytes into `buf`. Returns the count (0 = orderly
/// EOF); kIoError on socket failure or an expired deadline. EINTR and
/// EAGAIN are absorbed by waiting again.
Result<size_t> RecvSome(int fd, char* buf, size_t cap, int64_t deadline_ms,
                        const SyscallShim* shim = nullptr);

/// Reads exactly `len` bytes, appending to `*out`. kIoError both on
/// socket failure and on EOF short of `len` — the message names how many
/// bytes arrived, so truncation is diagnosable (and classifiable as a
/// connection-level fault, never a decode bug).
Status RecvExactly(int fd, size_t len, std::string* out, int64_t deadline_ms,
                   const SyscallShim* shim = nullptr);

/// Resolves `host:port` and connects with a budget of
/// `connect_timeout_ms` (relative), trying every resolved address. The
/// returned socket is non-blocking. kIoError on failure (callers treat
/// connect failures as transient: the server may be restarting).
Result<Fd> ConnectTcp(const std::string& host, int port,
                      int64_t connect_timeout_ms);

/// A listening TCP socket bound to `host` (default loopback): the accept
/// side shared by FakeLlmServer and galoisd. SO_REUSEADDR is set, the
/// listener is non-blocking, and IgnoreSigpipe() is installed on Bind so
/// no server built on this layer can be killed by a dead client.
class Listener {
 public:
  Listener() = default;
  ~Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds and listens. `port` 0 picks an ephemeral port (read it back
  /// from port()). kIoError on any socket/bind/listen failure.
  Status Bind(const std::string& host, int port, int backlog);

  /// Accepts one connection, waiting up to `timeout_ms` (relative).
  /// Returns an invalid Fd on timeout (not an error — callers poll in a
  /// loop so they can observe shutdown flags); kIoError only when the
  /// listener itself broke.
  Result<Fd> Accept(int64_t timeout_ms, const SyscallShim* shim = nullptr);

  void Close();
  bool listening() const { return fd_.valid(); }
  int port() const { return port_; }
  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
  int port_ = 0;
};

}  // namespace galois::net

#endif  // GALOIS_NET_SOCKET_H_
