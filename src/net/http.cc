#include "net/http.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace galois::net {

namespace {

/// Shared header+body reader. `is_response` selects the framing rule for
/// a missing Content-Length: responses fall back to read-to-EOF (we
/// always send Connection: close), requests mean an empty body.
struct RawMessage {
  std::string start_line;
  std::string headers;
  std::string body;
};

Result<RawMessage> ReadMessage(int fd, int64_t deadline_ms, bool is_response,
                               const SyscallShim* shim) {
  std::string raw;
  char buf[4096];
  size_t header_end = std::string::npos;
  int64_t content_length = -1;
  bool has_content_length = false;
  while (true) {
    if (header_end != std::string::npos) {
      if (has_content_length &&
          raw.size() >= header_end + 4 + static_cast<size_t>(content_length)) {
        break;
      }
      // A request without Content-Length has an empty body by our
      // framing rules — don't wait for an EOF the client (which keeps
      // the connection open for the response) will never send.
      if (!has_content_length && !is_response) break;
    }
    GALOIS_ASSIGN_OR_RETURN(
        size_t n, RecvSome(fd, buf, sizeof(buf), deadline_ms, shim));
    if (n == 0) {
      // EOF. Legal only once the whole advertised body has arrived (the
      // loop condition above), or — for responses — when no length was
      // advertised at all (read-to-EOF framing). Anything else is a
      // truncation fault, classified below.
      break;
    }
    raw.append(buf, n);
    if (static_cast<int64_t>(raw.size()) >
        kMaxHttpBody + static_cast<int64_t>(64 * 1024)) {
      return Status::ParseError("http: message exceeds " +
                                std::to_string(kMaxHttpBody) + " byte cap");
    }
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        std::string cl;
        if (FindHeader(raw.substr(0, header_end), "Content-Length", &cl)) {
          GALOIS_ASSIGN_OR_RETURN(content_length, ParseContentLength(cl));
          has_content_length = true;
        }
      }
    }
  }
  if (header_end == std::string::npos) {
    return Status::IoError(
        "http: connection closed before headers completed (" +
        std::to_string(raw.size()) + " bytes)");
  }

  RawMessage msg;
  size_t line_end = raw.find("\r\n");
  msg.start_line = raw.substr(0, line_end);
  msg.headers = raw.substr(line_end + 2, header_end - line_end - 2);
  msg.body = raw.substr(header_end + 4);
  if (has_content_length) {
    if (msg.body.size() < static_cast<size_t>(content_length)) {
      // The headline short-read bugfix: the peer closed mid-body. This
      // is a connection-level fault (kIoError -> retryable upstream),
      // never a payload handed to the JSON parser.
      return Status::IoError(
          "http: truncated body, peer closed after " +
          std::to_string(msg.body.size()) + " of " +
          std::to_string(content_length) + " bytes");
    }
    msg.body.resize(static_cast<size_t>(content_length));
  } else if (!is_response) {
    msg.body.clear();  // requests have no read-to-EOF mode
  }
  return msg;
}

}  // namespace

bool FindHeader(const std::string& headers, const std::string& name,
                std::string* value) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    std::string line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos &&
        EqualsIgnoreCase(Trim(line.substr(0, colon)), name)) {
      *value = Trim(line.substr(colon + 1));
      return true;
    }
    pos = eol + 2;
  }
  return false;
}

Result<int64_t> ParseContentLength(const std::string& value,
                                   int64_t max_bytes) {
  const std::string trimmed = Trim(value);
  if (trimmed.empty()) {
    return Status::ParseError("http: empty Content-Length");
  }
  int64_t parsed = 0;
  for (char c : trimmed) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::ParseError("http: malformed Content-Length \"" + value +
                                "\"");
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > max_bytes) {
      return Status::ParseError("http: Content-Length \"" + value +
                                "\" exceeds " + std::to_string(max_bytes) +
                                " byte cap");
    }
  }
  return parsed;
}

Result<HttpResponseMessage> ReadHttpResponse(int fd, int64_t deadline_ms,
                                             const SyscallShim* shim) {
  GALOIS_ASSIGN_OR_RETURN(
      RawMessage raw, ReadMessage(fd, deadline_ms, /*is_response=*/true, shim));
  // "HTTP/1.1 200 OK"
  size_t sp = raw.start_line.find(' ');
  if (raw.start_line.compare(0, 5, "HTTP/") != 0 || sp == std::string::npos) {
    return Status::ParseError("http: malformed status line \"" +
                              raw.start_line + "\"");
  }
  HttpResponseMessage resp;
  resp.status_code = std::atoi(raw.start_line.c_str() + sp + 1);
  resp.headers = std::move(raw.headers);
  resp.body = std::move(raw.body);
  return resp;
}

Result<HttpRequestMessage> ReadHttpRequest(int fd, int64_t deadline_ms,
                                           const SyscallShim* shim) {
  GALOIS_ASSIGN_OR_RETURN(
      RawMessage raw,
      ReadMessage(fd, deadline_ms, /*is_response=*/false, shim));
  size_t sp1 = raw.start_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : raw.start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::ParseError("http: malformed request line \"" +
                              raw.start_line + "\"");
  }
  HttpRequestMessage req;
  req.method = raw.start_line.substr(0, sp1);
  req.path = raw.start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.headers = std::move(raw.headers);
  req.body = std::move(raw.body);
  return req;
}

std::string BuildHttpResponse(int code, const std::string& reason,
                              const std::string& body,
                              const std::string& extra_headers,
                              int64_t advertised_length) {
  const int64_t length = advertised_length >= 0
                             ? advertised_length
                             : static_cast<int64_t>(body.size());
  return "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n" +
         "Content-Type: application/json\r\n" + extra_headers +
         "Content-Length: " + std::to_string(length) +
         "\r\nConnection: close\r\n\r\n" + body;
}

std::string BuildHttpPost(const std::string& host_header,
                          const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\n" + "Host: " + host_header + "\r\n" +
         "Content-Type: application/json\r\n" +
         "Content-Length: " + std::to_string(body.size()) + "\r\n" +
         "Connection: close\r\n\r\n" + body;
}

}  // namespace galois::net
