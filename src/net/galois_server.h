#ifndef GALOIS_NET_GALOIS_SERVER_H_
#define GALOIS_NET_GALOIS_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/cancel.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace galois::net {

/// Tuning knobs of a GaloisServer.
struct ServerOptions {
  /// Listen address. Loopback by default — exposing an unauthenticated
  /// query daemon beyond the host is an explicit decision (0.0.0.0).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back from port()).
  int port = 0;
  /// listen(2) backlog: connections the kernel may hold un-accepted.
  int accept_backlog = 64;

  /// Admission control (on top of the shared phase pool): queries
  /// executing concurrently across all connections. Further queries wait
  /// in a bounded queue; beyond that they are rejected with a retryable
  /// error instead of piling unbounded work onto the pool.
  int max_in_flight = 8;
  /// Queries allowed to wait for an execution slot; 0 = reject the
  /// moment max_in_flight is reached.
  int queue_capacity = 64;

  /// Server-side ceiling on any query's deadline; a client asking for
  /// more (or for none) gets this. 0 = no server-imposed deadline.
  int64_t default_deadline_ms = 0;
  /// Budget for writing one response / reading one frame's bytes once
  /// its first byte arrived.
  int64_t io_timeout_ms = 10000;
  /// Idle-poll slice of connection readers; bounds how stale the drain
  /// flag can be observed.
  int64_t idle_poll_ms = 100;
  /// Graceful-drain budget: in-flight queries get this long to finish
  /// before the server cancels them cooperatively (their connections
  /// then report kCancelled and close).
  int64_t drain_timeout_ms = 10000;
};

/// galoisd's core: a long-running multi-client TCP daemon serving one
/// galois::Database over the length-prefixed frame protocol
/// (net/frame.h, net/protocol.h). Embeddable — the galoisd binary
/// (tools/galoisd_main.cc) is a thin wrapper, and the e2e suite runs
/// servers in-process.
///
/// Shape (after ctdb's daemon/statistics split): one accept thread, one
/// thread per connection (each with its own Session — the facade's
/// intended one-session-per-client shape), a shared admission gate in
/// front of the phase pool, and a mutex-guarded statistics block
/// reported over the kStats endpoint.
///
/// Life cycle:
///   Start()    — bind + listen + accept loop; queries flow.
///   Shutdown() — graceful drain: stop accepting, reject queued
///                admissions, let in-flight queries finish (cancelling
///                them cooperatively after drain_timeout_ms), flush
///                every response, close connections, Sync() the
///                persistent store. Idempotent; also run by ~GaloisServer.
///
/// Hardening: the listener installs SIG_IGN for SIGPIPE (socket.h), all
/// writes use MSG_NOSIGNAL, and a client disconnecting mid-query only
/// costs the response write (counted in stats().responses_unsent) — the
/// daemon itself must survive any client behaviour.
class GaloisServer {
 public:
  /// `db` is borrowed and must outlive the server.
  GaloisServer(Database* db, ServerOptions options);
  ~GaloisServer();
  GaloisServer(const GaloisServer&) = delete;
  GaloisServer& operator=(const GaloisServer&) = delete;

  /// Binds and starts accepting. kIoError when the port is taken.
  Status Start();

  /// Graceful drain (see class comment). Blocks until every connection
  /// thread has exited and the store is flushed.
  void Shutdown();

  bool draining() const { return draining_.load(); }
  int port() const { return listener_.port(); }
  const ServerOptions& options() const { return options_; }

  /// Consistent snapshot of the live counters, spend and store shape.
  ServerStats stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(Fd fd);
  /// Parses and executes one kQuery frame, writing the response.
  void ServeQuery(int fd, const std::string& payload);
  /// Parses and executes one kPartialQuery frame — one shard of a
  /// scatter-gathered query (GaloisExecutor::RunShard) — writing the
  /// kPartialResult (or kError) response. Shares the admission gate with
  /// full queries: a node's concurrency budget covers both kinds.
  void ServePartialQuery(int fd, const std::string& payload);
  /// Blocks until an execution slot is free (or rejection). On false,
  /// `*reject_reason` names why (queue full / draining).
  bool AdmitQuery(std::string* reject_reason);
  void ReleaseQuery();
  void ReapFinishedWorkers();
  /// Writes an error frame; failures are ignored (the client is gone).
  void WriteErrorFrame(int fd, const Status& status, bool retryable);
  ServerStats BuildStats() const;

  Database* db_;
  ServerOptions options_;
  Listener listener_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_ran_{false};
  std::thread accept_thread_;
  std::mutex shutdown_mu_;  // serialises concurrent Shutdown() calls

  // Per-connection threads, reaped by the accept loop (FakeLlmServer's
  // pattern): finished workers enqueue their id so a long-lived daemon
  // does not accumulate a joinable thread per historical connection.
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;       // guarded by workers_mu_
  std::vector<std::thread::id> finished_;  // guarded by workers_mu_

  // Admission gate.
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int in_flight_ = 0;  // guarded by admission_mu_
  int queued_ = 0;     // guarded by admission_mu_

  /// Parent token of every in-flight query: drain cancels through it
  /// when the timeout expires.
  CancelToken drain_kill_ = std::make_shared<CancelState>();

  // Statistics (ctdb_statistics-style counter block).
  mutable std::mutex stats_mu_;
  int64_t started_ms_ = 0;
  int64_t connections_accepted_ = 0;
  int64_t connections_active_ = 0;
  int64_t queries_started_ = 0;
  int64_t queries_ok_ = 0;
  int64_t queries_error_ = 0;
  int64_t queries_rejected_ = 0;
  int64_t responses_unsent_ = 0;
  int64_t partials_started_ = 0;
  int64_t partials_ok_ = 0;
  int64_t partials_error_ = 0;
  double total_wall_ms_ = 0.0;
  double max_wall_ms_ = 0.0;
  int64_t table_cache_lookups_ = 0;
  int64_t table_cache_hits_ = 0;
  int64_t table_cache_exact_hits_ = 0;
  int64_t table_cache_subsumption_hits_ = 0;
  int64_t table_cache_store_hits_ = 0;
  int64_t scan_pages_prefetched_ = 0;
  int64_t scan_pages_overfetched_ = 0;
};

}  // namespace galois::net

#endif  // GALOIS_NET_GALOIS_SERVER_H_
