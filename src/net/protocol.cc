#include "net/protocol.h"

#include <cstdio>

#include "llm/http_llm.h"
#include "llm/prompt_json.h"

namespace galois::net {

namespace {

Result<DataType> DataTypeFromName(const std::string& name) {
  if (name == "NULL") return DataType::kNull;
  if (name == "BOOL") return DataType::kBool;
  if (name == "INT") return DataType::kInt64;
  if (name == "DOUBLE") return DataType::kDouble;
  if (name == "VARCHAR") return DataType::kString;
  if (name == "DATE") return DataType::kDate;
  return Status::ParseError("wire: unknown column type \"" + name + "\"");
}

Json ModelUsageToJson(const llm::ModelUsage& usage) {
  Json j = Json::Object();
  j.Set("num_prompts", Json::Number(usage.num_prompts));
  j.Set("prompt_tokens", Json::Number(usage.prompt_tokens));
  j.Set("completion_tokens", Json::Number(usage.completion_tokens));
  j.Set("simulated_latency_ms", Json::Number(usage.simulated_latency_ms));
  j.Set("num_batches", Json::Number(usage.num_batches));
  return j;
}

llm::ModelUsage ModelUsageFromJson(const Json& j) {
  llm::ModelUsage usage;
  usage.num_prompts = j.GetInt("num_prompts");
  usage.prompt_tokens = j.GetInt("prompt_tokens");
  usage.completion_tokens = j.GetInt("completion_tokens");
  usage.simulated_latency_ms = j.GetNumber("simulated_latency_ms");
  usage.num_batches = j.GetInt("num_batches");
  return usage;
}

// Hex codec for descriptor bytes: PredicateDescriptor::Encode() output
// is length-prefixed binary and may embed any byte value, so it cannot
// ride in a JSON string as-is.
std::string HexEncode(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::ParseError("wire: odd-length hex descriptor");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("wire: non-hex byte in descriptor");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

Json RelationToJson(const Relation& relation) {
  Json columns = Json::Array();
  for (const Column& column : relation.schema().columns()) {
    Json c = Json::Object();
    c.Set("name", Json::String(column.name));
    c.Set("type", Json::String(DataTypeName(column.type)));
    if (!column.table.empty()) c.Set("table", Json::String(column.table));
    columns.Append(std::move(c));
  }
  Json rows = Json::Array();
  for (const Tuple& tuple : relation.rows()) {
    Json row = Json::Array();
    for (const Value& value : tuple) {
      row.Append(llm::ValueToJson(value));
    }
    rows.Append(std::move(row));
  }
  Json j = Json::Object();
  j.Set("columns", std::move(columns));
  j.Set("rows", std::move(rows));
  return j;
}

Result<Relation> RelationFromJson(const Json& j) {
  if (!j.is_object() || !j["columns"].is_array() || !j["rows"].is_array()) {
    return Status::ParseError("wire: malformed relation payload");
  }
  Schema schema;
  const Json& columns = j["columns"];
  for (size_t i = 0; i < columns.size(); ++i) {
    const Json& c = columns.at(i);
    if (!c.is_object() || !c["name"].is_string()) {
      return Status::ParseError("wire: malformed relation column");
    }
    GALOIS_ASSIGN_OR_RETURN(DataType type,
                            DataTypeFromName(c.GetString("type")));
    schema.AddColumn(Column(c.GetString("name"), type, c.GetString("table")));
  }
  Relation relation(std::move(schema));
  const Json& rows = j["rows"];
  for (size_t r = 0; r < rows.size(); ++r) {
    const Json& row = rows.at(r);
    if (!row.is_array() || row.size() != relation.schema().size()) {
      return Status::ParseError("wire: relation row " + std::to_string(r) +
                                " arity mismatch");
    }
    Tuple tuple;
    tuple.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      GALOIS_ASSIGN_OR_RETURN(Value value, llm::ValueFromJson(row.at(c)));
      tuple.push_back(std::move(value));
    }
    relation.AddRowUnchecked(std::move(tuple));
  }
  return relation;
}

Json CostMeterToJson(const llm::CostMeter& meter) {
  Json j = Json::Object();
  j.Set("num_prompts", Json::Number(meter.num_prompts));
  j.Set("prompt_tokens", Json::Number(meter.prompt_tokens));
  j.Set("completion_tokens", Json::Number(meter.completion_tokens));
  j.Set("simulated_latency_ms", Json::Number(meter.simulated_latency_ms));
  j.Set("cache_hits", Json::Number(meter.cache_hits));
  j.Set("store_hits", Json::Number(meter.store_hits));
  j.Set("num_batches", Json::Number(meter.num_batches));
  Json by_model = Json::Object();
  for (const auto& [name, usage] : meter.by_model) {
    by_model.Set(name, ModelUsageToJson(usage));
  }
  j.Set("by_model", std::move(by_model));
  return j;
}

Result<llm::CostMeter> CostMeterFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::ParseError("wire: malformed cost meter payload");
  }
  llm::CostMeter meter;
  meter.num_prompts = j.GetInt("num_prompts");
  meter.prompt_tokens = j.GetInt("prompt_tokens");
  meter.completion_tokens = j.GetInt("completion_tokens");
  meter.simulated_latency_ms = j.GetNumber("simulated_latency_ms");
  meter.cache_hits = j.GetInt("cache_hits");
  meter.store_hits = j.GetInt("store_hits");
  meter.num_batches = j.GetInt("num_batches");
  // Iterate the object's keys via Dump-free access: by_model is an
  // object of name -> usage.
  const Json& by_model = j["by_model"];
  if (by_model.is_object()) {
    for (const std::string& name : by_model.Keys()) {
      meter.by_model[name] = ModelUsageFromJson(by_model[name]);
    }
  }
  return meter;
}

Json QueryRequestToJson(const QueryRequest& request) {
  Json j = Json::Object();
  j.Set("sql", Json::String(request.sql));
  if (request.deadline_ms > 0) {
    j.Set("deadline_ms", Json::Number(request.deadline_ms));
  }
  return j;
}

Result<QueryRequest> QueryRequestFromJson(const Json& j) {
  if (!j.is_object() || !j["sql"].is_string()) {
    return Status::ParseError("wire: query request lacks sql");
  }
  QueryRequest request;
  request.sql = j.GetString("sql");
  request.deadline_ms = j.GetInt("deadline_ms", 0);
  if (request.deadline_ms < 0) {
    return Status::ParseError("wire: negative deadline_ms");
  }
  return request;
}

Json QueryResultToJson(const QueryResult& result) {
  Json j = Json::Object();
  j.Set("relation", RelationToJson(result.relation));
  j.Set("cost", CostMeterToJson(result.cost));
  j.Set("table_cache_lookups", Json::Number(result.table_cache_lookups));
  j.Set("table_cache_hits", Json::Number(result.table_cache_hits));
  j.Set("table_cache_exact_hits", Json::Number(result.table_cache_exact_hits));
  j.Set("table_cache_subsumption_hits",
        Json::Number(result.table_cache_subsumption_hits));
  j.Set("table_cache_store_hits",
        Json::Number(result.table_cache_store_hits));
  j.Set("scan_pages_prefetched", Json::Number(result.scan_pages_prefetched));
  j.Set("scan_pages_overfetched",
        Json::Number(result.scan_pages_overfetched));
  j.Set("wall_ms", Json::Number(result.wall_ms));
  if (!result.physical_plan.empty()) {
    j.Set("physical_plan", Json::String(result.physical_plan));
  }
  return j;
}

Result<QueryResult> QueryResultFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::ParseError("wire: malformed query result payload");
  }
  QueryResult result;
  GALOIS_ASSIGN_OR_RETURN(result.relation, RelationFromJson(j["relation"]));
  GALOIS_ASSIGN_OR_RETURN(result.cost, CostMeterFromJson(j["cost"]));
  result.table_cache_lookups = j.GetInt("table_cache_lookups");
  result.table_cache_hits = j.GetInt("table_cache_hits");
  result.table_cache_exact_hits = j.GetInt("table_cache_exact_hits");
  result.table_cache_subsumption_hits =
      j.GetInt("table_cache_subsumption_hits");
  result.table_cache_store_hits = j.GetInt("table_cache_store_hits");
  result.scan_pages_prefetched = j.GetInt("scan_pages_prefetched");
  result.scan_pages_overfetched = j.GetInt("scan_pages_overfetched");
  result.wall_ms = j.GetNumber("wall_ms");
  result.physical_plan = j.GetString("physical_plan");
  return result;
}

Json PartialQueryRequestToJson(const PartialQueryRequest& request) {
  Json j = Json::Object();
  j.Set("sql", Json::String(request.sql));
  j.Set("table", Json::String(request.table));
  j.Set("alias", Json::String(request.alias));
  Json columns = Json::Array();
  for (const std::string& column : request.columns) {
    columns.Append(Json::String(column));
  }
  j.Set("columns", std::move(columns));
  j.Set("descriptor", Json::String(HexEncode(request.descriptor)));
  j.Set("slice_index", Json::Number(request.slice_index));
  j.Set("slice_count", Json::Number(request.slice_count));
  if (request.deadline_ms > 0) {
    j.Set("deadline_ms", Json::Number(request.deadline_ms));
  }
  return j;
}

Result<PartialQueryRequest> PartialQueryRequestFromJson(const Json& j) {
  if (!j.is_object() || !j["sql"].is_string() || !j["table"].is_string() ||
      !j["alias"].is_string() || !j["columns"].is_array()) {
    return Status::ParseError("wire: malformed partial query request");
  }
  PartialQueryRequest request;
  request.sql = j.GetString("sql");
  request.table = j.GetString("table");
  request.alias = j.GetString("alias");
  const Json& columns = j["columns"];
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns.at(i).is_string()) {
      return Status::ParseError("wire: partial query column is not a string");
    }
    request.columns.push_back(columns.at(i).string_value());
  }
  GALOIS_ASSIGN_OR_RETURN(request.descriptor,
                          HexDecode(j.GetString("descriptor")));
  request.slice_index = j.GetInt("slice_index", 0);
  request.slice_count = j.GetInt("slice_count", 1);
  if (request.slice_count < 1 || request.slice_index < 0 ||
      request.slice_index >= request.slice_count) {
    return Status::ParseError("wire: partial query slice " +
                              std::to_string(request.slice_index) + "/" +
                              std::to_string(request.slice_count) +
                              " out of range");
  }
  request.deadline_ms = j.GetInt("deadline_ms", 0);
  if (request.deadline_ms < 0) {
    return Status::ParseError("wire: negative deadline_ms");
  }
  return request;
}

Json PartialQueryResponseToJson(const PartialQueryResponse& response) {
  Json j = Json::Object();
  j.Set("table", Json::String(response.table));
  j.Set("alias", Json::String(response.alias));
  j.Set("slice_index", Json::Number(response.slice_index));
  j.Set("slice_count", Json::Number(response.slice_count));
  j.Set("relation", RelationToJson(response.relation));
  j.Set("cost", CostMeterToJson(response.cost));
  j.Set("table_cache_lookups", Json::Number(response.table_cache_lookups));
  j.Set("table_cache_hits", Json::Number(response.table_cache_hits));
  j.Set("table_cache_exact_hits",
        Json::Number(response.table_cache_exact_hits));
  j.Set("table_cache_subsumption_hits",
        Json::Number(response.table_cache_subsumption_hits));
  j.Set("table_cache_store_hits",
        Json::Number(response.table_cache_store_hits));
  j.Set("scan_pages_prefetched",
        Json::Number(response.scan_pages_prefetched));
  j.Set("scan_pages_overfetched",
        Json::Number(response.scan_pages_overfetched));
  return j;
}

Result<PartialQueryResponse> PartialQueryResponseFromJson(const Json& j) {
  if (!j.is_object() || !j["table"].is_string() || !j["alias"].is_string()) {
    return Status::ParseError("wire: malformed partial query response");
  }
  PartialQueryResponse response;
  response.table = j.GetString("table");
  response.alias = j.GetString("alias");
  response.slice_index = j.GetInt("slice_index", 0);
  response.slice_count = j.GetInt("slice_count", 1);
  if (response.slice_count < 1 || response.slice_index < 0 ||
      response.slice_index >= response.slice_count) {
    return Status::ParseError("wire: partial result slice out of range");
  }
  GALOIS_ASSIGN_OR_RETURN(response.relation,
                          RelationFromJson(j["relation"]));
  GALOIS_ASSIGN_OR_RETURN(response.cost, CostMeterFromJson(j["cost"]));
  response.table_cache_lookups = j.GetInt("table_cache_lookups");
  response.table_cache_hits = j.GetInt("table_cache_hits");
  response.table_cache_exact_hits = j.GetInt("table_cache_exact_hits");
  response.table_cache_subsumption_hits =
      j.GetInt("table_cache_subsumption_hits");
  response.table_cache_store_hits = j.GetInt("table_cache_store_hits");
  response.scan_pages_prefetched = j.GetInt("scan_pages_prefetched");
  response.scan_pages_overfetched = j.GetInt("scan_pages_overfetched");
  return response;
}

Json StatusToJson(const Status& status, bool retryable) {
  Json j = Json::Object();
  j.Set("code", Json::Number(static_cast<int64_t>(status.code())));
  j.Set("code_name", Json::String(StatusCodeName(status.code())));
  j.Set("message", Json::String(status.message()));
  j.Set("retryable", Json::Bool(retryable));
  return j;
}

Status StatusFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::Internal("wire: malformed error payload");
  }
  const int64_t code = j.GetInt("code", -1);
  if (code < 0 || code > static_cast<int64_t>(StatusCode::kIoError)) {
    return Status::Internal("wire: error payload with unknown code " +
                            std::to_string(code) + ": " +
                            j.GetString("message"));
  }
  Status status(static_cast<StatusCode>(code), j.GetString("message"));
  if (j.GetBool("retryable")) {
    status = llm::MarkRetryable(std::move(status));
  }
  return status;
}

Json ServerStatsToJson(const ServerStats& stats) {
  Json j = Json::Object();
  j.Set("uptime_ms", Json::Number(stats.uptime_ms));
  j.Set("uptime_s", Json::Number(stats.uptime_s));
  j.Set("draining", Json::Bool(stats.draining));
  j.Set("connections_accepted", Json::Number(stats.connections_accepted));
  j.Set("connections_active", Json::Number(stats.connections_active));
  j.Set("active_connections", Json::Number(stats.active_connections));
  j.Set("queries_started", Json::Number(stats.queries_started));
  j.Set("queries_ok", Json::Number(stats.queries_ok));
  j.Set("queries_error", Json::Number(stats.queries_error));
  j.Set("queries_rejected", Json::Number(stats.queries_rejected));
  j.Set("responses_unsent", Json::Number(stats.responses_unsent));
  j.Set("partials_started", Json::Number(stats.partials_started));
  j.Set("partials_ok", Json::Number(stats.partials_ok));
  j.Set("partials_error", Json::Number(stats.partials_error));
  j.Set("in_flight", Json::Number(stats.in_flight));
  j.Set("queued", Json::Number(stats.queued));
  j.Set("total_wall_ms", Json::Number(stats.total_wall_ms));
  j.Set("max_wall_ms", Json::Number(stats.max_wall_ms));
  j.Set("queries_per_sec", Json::Number(stats.queries_per_sec));
  j.Set("table_cache_lookups", Json::Number(stats.table_cache_lookups));
  j.Set("table_cache_hits", Json::Number(stats.table_cache_hits));
  j.Set("table_cache_exact_hits",
        Json::Number(stats.table_cache_exact_hits));
  j.Set("table_cache_subsumption_hits",
        Json::Number(stats.table_cache_subsumption_hits));
  j.Set("table_cache_store_hits",
        Json::Number(stats.table_cache_store_hits));
  j.Set("scan_pages_prefetched", Json::Number(stats.scan_pages_prefetched));
  j.Set("scan_pages_overfetched",
        Json::Number(stats.scan_pages_overfetched));
  j.Set("spend", CostMeterToJson(stats.spend));
  j.Set("store_attached", Json::Bool(stats.store_attached));
  j.Set("store_file_bytes", Json::Number(stats.store_file_bytes));
  j.Set("store_live_materialisations",
        Json::Number(stats.store_live_materialisations));
  j.Set("store_live_prompts", Json::Number(stats.store_live_prompts));
  return j;
}

Result<ServerStats> ServerStatsFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::ParseError("wire: malformed stats payload");
  }
  ServerStats stats;
  stats.uptime_ms = j.GetInt("uptime_ms");
  stats.uptime_s = j.GetInt("uptime_s");
  stats.draining = j.GetBool("draining");
  stats.connections_accepted = j.GetInt("connections_accepted");
  stats.connections_active = j.GetInt("connections_active");
  stats.active_connections = j.GetInt("active_connections");
  stats.queries_started = j.GetInt("queries_started");
  stats.queries_ok = j.GetInt("queries_ok");
  stats.queries_error = j.GetInt("queries_error");
  stats.queries_rejected = j.GetInt("queries_rejected");
  stats.responses_unsent = j.GetInt("responses_unsent");
  stats.partials_started = j.GetInt("partials_started");
  stats.partials_ok = j.GetInt("partials_ok");
  stats.partials_error = j.GetInt("partials_error");
  stats.in_flight = j.GetInt("in_flight");
  stats.queued = j.GetInt("queued");
  stats.total_wall_ms = j.GetNumber("total_wall_ms");
  stats.max_wall_ms = j.GetNumber("max_wall_ms");
  stats.queries_per_sec = j.GetNumber("queries_per_sec");
  stats.table_cache_lookups = j.GetInt("table_cache_lookups");
  stats.table_cache_hits = j.GetInt("table_cache_hits");
  stats.table_cache_exact_hits = j.GetInt("table_cache_exact_hits");
  stats.table_cache_subsumption_hits =
      j.GetInt("table_cache_subsumption_hits");
  stats.table_cache_store_hits = j.GetInt("table_cache_store_hits");
  stats.scan_pages_prefetched = j.GetInt("scan_pages_prefetched");
  stats.scan_pages_overfetched = j.GetInt("scan_pages_overfetched");
  GALOIS_ASSIGN_OR_RETURN(stats.spend, CostMeterFromJson(j["spend"]));
  stats.store_attached = j.GetBool("store_attached");
  stats.store_file_bytes = j.GetInt("store_file_bytes");
  stats.store_live_materialisations = j.GetInt("store_live_materialisations");
  stats.store_live_prompts = j.GetInt("store_live_prompts");
  return stats;
}

std::string ServerStats::ToString() const {
  char buf[256];
  std::string out = "galoisd statistics:\n";
  auto line = [&out, &buf](const char* name, int64_t value) {
    std::snprintf(buf, sizeof(buf), "  %-32s %lld\n", name,
                  static_cast<long long>(value));
    out += buf;
  };
  auto dline = [&out, &buf](const char* name, double value) {
    std::snprintf(buf, sizeof(buf), "  %-32s %.2f\n", name, value);
    out += buf;
  };
  line("uptime_ms", uptime_ms);
  line("uptime_s", uptime_s);
  line("draining", draining ? 1 : 0);
  line("connections_accepted", connections_accepted);
  line("connections_active", connections_active);
  line("active_connections", active_connections);
  line("queries_started", queries_started);
  line("queries_ok", queries_ok);
  line("queries_error", queries_error);
  line("queries_rejected", queries_rejected);
  line("responses_unsent", responses_unsent);
  line("partials_started", partials_started);
  line("partials_ok", partials_ok);
  line("partials_error", partials_error);
  line("in_flight", in_flight);
  line("queued", queued);
  dline("queries_per_sec", queries_per_sec);
  dline("total_wall_ms", total_wall_ms);
  dline("max_wall_ms", max_wall_ms);
  line("table_cache_lookups", table_cache_lookups);
  line("table_cache_hits", table_cache_hits);
  line("table_cache_exact_hits", table_cache_exact_hits);
  line("table_cache_subsumption_hits", table_cache_subsumption_hits);
  line("table_cache_store_hits", table_cache_store_hits);
  line("scan_pages_prefetched", scan_pages_prefetched);
  line("scan_pages_overfetched", scan_pages_overfetched);
  line("llm_prompts", spend.num_prompts);
  line("llm_batches", spend.num_batches);
  line("llm_prompt_tokens", spend.prompt_tokens);
  line("llm_completion_tokens", spend.completion_tokens);
  line("llm_cache_hits", spend.cache_hits);
  line("llm_store_hits", spend.store_hits);
  for (const auto& [name, usage] : spend.by_model) {
    std::snprintf(buf, sizeof(buf),
                  "  spend[%s]: %lld prompts, %lld+%lld tokens\n",
                  name.c_str(), static_cast<long long>(usage.num_prompts),
                  static_cast<long long>(usage.prompt_tokens),
                  static_cast<long long>(usage.completion_tokens));
    out += buf;
  }
  line("store_attached", store_attached ? 1 : 0);
  if (store_attached) {
    line("store_file_bytes", store_file_bytes);
    line("store_live_materialisations", store_live_materialisations);
    line("store_live_prompts", store_live_prompts);
  }
  return out;
}

}  // namespace galois::net
