#include "net/socket.h"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

namespace galois::net {

const SyscallShim& SyscallShim::Default() {
  static const SyscallShim* shim = [] {
    auto* s = new SyscallShim();
    s->recv_fn = [](int fd, void* buf, size_t len) {
      return ::recv(fd, buf, len, 0);
    };
    s->send_fn = [](int fd, const void* buf, size_t len) {
      return ::send(fd, buf, len, MSG_NOSIGNAL);
    };
    s->poll_fn = [](struct pollfd* fds, nfds_t nfds, int timeout_ms) {
      return ::poll(fds, nfds, timeout_ms);
    };
    return s;
  }();
  return *shim;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void IgnoreSigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction current;
    std::memset(&current, 0, sizeof(current));
    // Respect an application-installed handler; only replace the default
    // disposition (which would kill the process).
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler != SIG_DFL) {
      return;
    }
    struct sigaction ignore;
    std::memset(&ignore, 0, sizeof(ignore));
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, nullptr);
  });
}

Fd::~Fd() {
  if (fd_ >= 0) ::close(fd_);
}

Fd& Fd::operator=(Fd&& other) {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.release();
  }
  return *this;
}

int Fd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool WaitReady(int fd, short events, int64_t deadline_ms,
               const SyscallShim* shim) {
  const SyscallShim& sys = ResolveShim(shim);
  // Poll in bounded slices so an "infinite" deadline still re-enters the
  // loop (and an EINTR storm can never extend the overall budget).
  constexpr int64_t kMaxSliceMs = 60000;
  while (true) {
    int64_t remaining = kMaxSliceMs;
    if (deadline_ms != kNoDeadline) {
      remaining = deadline_ms - NowMs();
      if (remaining <= 0) return false;
      if (remaining > kMaxSliceMs) remaining = kMaxSliceMs;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = sys.poll_fn(&pfd, 1, static_cast<int>(remaining));
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR) return false;
  }
}

Status SendAll(int fd, const std::string& data, int64_t deadline_ms,
               const SyscallShim* shim) {
  const SyscallShim& sys = ResolveShim(shim);
  size_t sent = 0;
  while (sent < data.size()) {
    if (!WaitReady(fd, POLLOUT, deadline_ms, shim)) {
      return Status::IoError("net: send timed out after " +
                             std::to_string(sent) + " of " +
                             std::to_string(data.size()) + " bytes");
    }
    ssize_t n = sys.send_fn(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IoError(std::string("net: send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, char* buf, size_t cap, int64_t deadline_ms,
                        const SyscallShim* shim) {
  const SyscallShim& sys = ResolveShim(shim);
  while (true) {
    if (!WaitReady(fd, POLLIN, deadline_ms, shim)) {
      return Status::IoError("net: read timed out");
    }
    ssize_t n = sys.recv_fn(fd, buf, cap);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::IoError(std::string("net: read failed: ") +
                             std::strerror(errno));
    }
    return static_cast<size_t>(n);
  }
}

Status RecvExactly(int fd, size_t len, std::string* out, int64_t deadline_ms,
                   const SyscallShim* shim) {
  char buf[4096];
  size_t got = 0;
  while (got < len) {
    size_t want = len - got;
    if (want > sizeof(buf)) want = sizeof(buf);
    GALOIS_ASSIGN_OR_RETURN(size_t n,
                            RecvSome(fd, buf, want, deadline_ms, shim));
    if (n == 0) {
      // Peer closed mid-payload: a connection-level fault, reported with
      // the exact shortfall so callers can classify it as retryable
      // rather than hand a truncated buffer to a parser.
      return Status::IoError("net: peer closed after " + std::to_string(got) +
                             " of " + std::to_string(len) + " bytes");
    }
    out->append(buf, n);
    got += n;
  }
  return Status::OK();
}

Result<Fd> ConnectTcp(const std::string& host, int port,
                      int64_t connect_timeout_ms) {
  IgnoreSigpipe();
  const std::string where = host + ":" + std::to_string(port);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  const std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0 || addrs == nullptr) {
    return Status::IoError("net: cannot resolve " + where);
  }

  // Try every resolved address (getaddrinfo with AF_UNSPEC may order
  // ::1 before 127.0.0.1; an IPv4-only server must still be reachable).
  const int64_t connect_deadline = NowMs() + connect_timeout_ms;
  Fd fd;
  std::string connect_error = "no addresses resolved";
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, SOCK_STREAM, 0));
    if (!candidate.valid()) {
      connect_error = "socket() failed";
      continue;
    }
    ::fcntl(candidate.get(), F_SETFL, O_NONBLOCK);
    rc = ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      connect_error = std::strerror(errno);
      continue;
    }
    if (rc != 0) {
      if (!WaitReady(candidate.get(), POLLOUT, connect_deadline)) {
        connect_error = "timed out";
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(candidate.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        connect_error = std::strerror(err);
        continue;
      }
    }
    fd = std::move(candidate);
    break;
  }
  ::freeaddrinfo(addrs);
  if (!fd.valid()) {
    return Status::IoError("net: connect to " + where + " failed: " +
                           connect_error);
  }
  return fd;
}

Status Listener::Bind(const std::string& host, int port, int backlog) {
  IgnoreSigpipe();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IoError("net: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: bad listen address " + host);
  }
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("net: bind " + host + ":" + std::to_string(port) +
                           " failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr), &len);
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IoError("net: listen failed: " +
                           std::string(std::strerror(errno)));
  }
  ::fcntl(fd.get(), F_SETFL, O_NONBLOCK);
  fd_ = std::move(fd);
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Fd> Listener::Accept(int64_t timeout_ms, const SyscallShim* shim) {
  if (!fd_.valid()) return Status::IoError("net: listener is closed");
  if (!WaitReady(fd_.get(), POLLIN, NowMs() + timeout_ms, shim)) {
    return Fd();  // timeout: invalid fd, caller re-polls
  }
  int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Fd();
    }
    return Status::IoError(std::string("net: accept failed: ") +
                           std::strerror(errno));
  }
  return Fd(fd);
}

void Listener::Close() {
  fd_.reset();
  port_ = 0;
}

}  // namespace galois::net
