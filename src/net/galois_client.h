#ifndef GALOIS_NET_GALOIS_CLIENT_H_
#define GALOIS_NET_GALOIS_CLIENT_H_

#include <cstdint>
#include <string>

#include "api/database.h"
#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace galois::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int64_t connect_timeout_ms = 2000;
  /// Transport budget per call, *on top of* the query's own deadline: a
  /// query given 30s to run gets io_timeout_ms + 30s before the client
  /// declares the connection dead.
  int64_t io_timeout_ms = 10000;
  /// Bounded auto-reconnect on a poisoned connection: when a call finds
  /// the connection already closed by an earlier transport fault (or an
  /// explicit Close), up to this many reconnect attempts are made —
  /// with reconnect_backoff_ms sleep between them — before the call
  /// proceeds. 0 (the default) keeps the historical fail-fast contract.
  /// Reconnection happens ONLY at call entry, never after a fault
  /// mid-call: a request that died in flight may have executed, and
  /// blindly resending it would double-execute; re-dispatch is the
  /// caller's decision (the cluster coordinator classifies first).
  int reconnect_attempts = 0;
  int64_t reconnect_backoff_ms = 50;
};

/// Client-side transport counters (see ClientOptions::reconnect_attempts).
struct ClientStats {
  /// Successful automatic reconnects of a poisoned connection.
  int64_t reconnects = 0;
  /// Reconnect attempts that failed (daemon still unreachable).
  int64_t reconnect_failures = 0;
};

/// Thin client for the galoisd frame protocol: one persistent TCP
/// connection, blocking request/response calls. Mirrors the Session API
/// shape — Query(sql) returns the same QueryResult value the in-process
/// facade would (see the fidelity contract in net/protocol.h).
///
/// Error classification: transport trouble (connect refused, daemon
/// vanished, timeout) is kIoError and poisons the connection — further
/// calls fail fast until the caller reconnects. Server-reported failures
/// arrive as their original Status (code + message, retryable marker
/// preserved), and the connection stays usable.
///
/// Not thread-safe: one GaloisClient per thread (the daemon is built for
/// many connections; the bench loadgen opens one per worker).
class GaloisClient {
 public:
  /// Connects; kIoError when the daemon is unreachable.
  static Result<GaloisClient> Connect(ClientOptions options);

  GaloisClient(GaloisClient&&) = default;
  GaloisClient& operator=(GaloisClient&&) = default;
  GaloisClient(const GaloisClient&) = delete;
  GaloisClient& operator=(const GaloisClient&) = delete;

  /// Executes `sql` remotely. `deadline_ms` (0 = none) travels to the
  /// server, which arms it on the query's CancelToken — cancellation
  /// happens where the work is, not by abandoning the connection.
  Result<QueryResult> Query(const std::string& sql, int64_t deadline_ms = 0);

  /// Dispatches one shard of a scatter-gathered query (kPartialQuery /
  /// kPartialResult). Same error classification as Query.
  Result<PartialQueryResponse> PartialQuery(const PartialQueryRequest& request);

  /// Live daemon statistics.
  Result<ServerStats> Stats();

  /// Liveness probe (kPing/kPong round trip).
  Status Ping();

  /// Closes the connection; subsequent calls fail with kIoError (or
  /// auto-reconnect, when ClientOptions::reconnect_attempts allows).
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

  /// Client-side transport counters (reconnects and their failures).
  const ClientStats& client_stats() const { return stats_; }

 private:
  explicit GaloisClient(ClientOptions options, Fd fd)
      : options_(std::move(options)), fd_(std::move(fd)) {}

  /// One request/response exchange; poisons the connection on transport
  /// errors. `extra_deadline_ms` widens the read budget (query runtime).
  /// Entry point of the bounded auto-reconnect path (Reconnect below).
  Result<Frame> RoundTrip(FrameType type, const std::string& payload,
                          int64_t extra_deadline_ms);

  /// Re-establishes a poisoned connection, bounded by
  /// ClientOptions::reconnect_attempts with reconnect_backoff_ms sleeps.
  Status Reconnect();

  ClientOptions options_;
  Fd fd_;
  ClientStats stats_;
};

}  // namespace galois::net

#endif  // GALOIS_NET_GALOIS_CLIENT_H_
