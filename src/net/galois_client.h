#ifndef GALOIS_NET_GALOIS_CLIENT_H_
#define GALOIS_NET_GALOIS_CLIENT_H_

#include <cstdint>
#include <string>

#include "api/database.h"
#include "common/result.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace galois::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int64_t connect_timeout_ms = 2000;
  /// Transport budget per call, *on top of* the query's own deadline: a
  /// query given 30s to run gets io_timeout_ms + 30s before the client
  /// declares the connection dead.
  int64_t io_timeout_ms = 10000;
};

/// Thin client for the galoisd frame protocol: one persistent TCP
/// connection, blocking request/response calls. Mirrors the Session API
/// shape — Query(sql) returns the same QueryResult value the in-process
/// facade would (see the fidelity contract in net/protocol.h).
///
/// Error classification: transport trouble (connect refused, daemon
/// vanished, timeout) is kIoError and poisons the connection — further
/// calls fail fast until the caller reconnects. Server-reported failures
/// arrive as their original Status (code + message, retryable marker
/// preserved), and the connection stays usable.
///
/// Not thread-safe: one GaloisClient per thread (the daemon is built for
/// many connections; the bench loadgen opens one per worker).
class GaloisClient {
 public:
  /// Connects; kIoError when the daemon is unreachable.
  static Result<GaloisClient> Connect(ClientOptions options);

  GaloisClient(GaloisClient&&) = default;
  GaloisClient& operator=(GaloisClient&&) = default;
  GaloisClient(const GaloisClient&) = delete;
  GaloisClient& operator=(const GaloisClient&) = delete;

  /// Executes `sql` remotely. `deadline_ms` (0 = none) travels to the
  /// server, which arms it on the query's CancelToken — cancellation
  /// happens where the work is, not by abandoning the connection.
  Result<QueryResult> Query(const std::string& sql, int64_t deadline_ms = 0);

  /// Live daemon statistics.
  Result<ServerStats> Stats();

  /// Liveness probe (kPing/kPong round trip).
  Status Ping();

  /// Closes the connection; subsequent calls fail with kIoError.
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  explicit GaloisClient(ClientOptions options, Fd fd)
      : options_(std::move(options)), fd_(std::move(fd)) {}

  /// One request/response exchange; poisons the connection on transport
  /// errors. `extra_deadline_ms` widens the read budget (query runtime).
  Result<Frame> RoundTrip(FrameType type, const std::string& payload,
                          int64_t extra_deadline_ms);

  ClientOptions options_;
  Fd fd_;
};

}  // namespace galois::net

#endif  // GALOIS_NET_GALOIS_CLIENT_H_
