#ifndef GALOIS_NET_FRAME_H_
#define GALOIS_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/socket.h"

namespace galois::net {

/// The galoisd wire protocol's outer layer: length-prefixed frames.
///
///   offset  size  field
///   0       4     magic   "GALP"
///   4       1     version (kFrameVersion)
///   5       1     type    (FrameType)
///   6       2     reserved (must be 0)
///   8       4     payload length, little-endian
///   12      N     payload (JSON text; see net/protocol.h)
///
/// Deliberately boring: fixed header, explicit length, no continuation
/// or chunking — a daemon protocol should be parseable with a hex dump.
/// Payloads above kMaxFramePayload are rejected on both sides before any
/// allocation, so a corrupt or hostile length field cannot balloon
/// memory.

constexpr char kFrameMagic[4] = {'G', 'A', 'L', 'P'};
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderSize = 12;
constexpr int64_t kMaxFramePayload = 64 * 1024 * 1024;

enum class FrameType : uint8_t {
  kQuery = 1,          // client -> server: QueryRequest
  kQueryResult = 2,    // server -> client: QueryResponse
  kError = 3,          // server -> client: ErrorResponse
  kStats = 4,          // client -> server: empty payload
  kStatsResult = 5,    // server -> client: ServerStats snapshot
  kPing = 6,           // client -> server: empty payload (liveness probe)
  kPong = 7,           // server -> client: empty payload
  kPartialQuery = 8,   // coordinator -> node: PartialQueryRequest
  kPartialResult = 9,  // node -> coordinator: PartialQueryResponse
};

/// Stable display name ("Query", "StatsResult"); "?" for unknown values.
const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Serialises the 12-byte header (pure function — unit-testable without
/// a socket).
std::string EncodeFrameHeader(FrameType type, size_t payload_size);

/// Validates and decodes a 12-byte header. kParseError on bad magic /
/// version / reserved bits / oversized length (deterministic protocol
/// violations — the connection should be dropped, not retried).
Result<Frame> DecodeFrameHeader(const std::string& header,
                                int64_t* payload_size);

/// Writes one frame (header + payload). kIoError on transport trouble.
Status WriteFrame(int fd, FrameType type, const std::string& payload,
                  int64_t deadline_ms, const SyscallShim* shim = nullptr);

/// Reads one full frame. kIoError on timeout or a peer that closed
/// mid-frame (the message names the byte shortfall); kParseError on a
/// malformed header. An orderly EOF *before any header byte* is not an
/// error: it returns kNotFound, which connection loops treat as "the
/// peer hung up between requests".
Result<Frame> ReadFrame(int fd, int64_t deadline_ms,
                        const SyscallShim* shim = nullptr);

}  // namespace galois::net

#endif  // GALOIS_NET_FRAME_H_
