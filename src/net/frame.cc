#include "net/frame.h"

#include <cstring>

namespace galois::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "Query";
    case FrameType::kQueryResult:
      return "QueryResult";
    case FrameType::kError:
      return "Error";
    case FrameType::kStats:
      return "Stats";
    case FrameType::kStatsResult:
      return "StatsResult";
    case FrameType::kPing:
      return "Ping";
    case FrameType::kPong:
      return "Pong";
    case FrameType::kPartialQuery:
      return "PartialQuery";
    case FrameType::kPartialResult:
      return "PartialResult";
  }
  return "?";
}

namespace {

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kPartialResult);
}

}  // namespace

std::string EncodeFrameHeader(FrameType type, size_t payload_size) {
  std::string header(kFrameHeaderSize, '\0');
  std::memcpy(&header[0], kFrameMagic, 4);
  header[4] = static_cast<char>(kFrameVersion);
  header[5] = static_cast<char>(type);
  header[6] = 0;
  header[7] = 0;
  const uint32_t len = static_cast<uint32_t>(payload_size);
  header[8] = static_cast<char>(len & 0xff);
  header[9] = static_cast<char>((len >> 8) & 0xff);
  header[10] = static_cast<char>((len >> 16) & 0xff);
  header[11] = static_cast<char>((len >> 24) & 0xff);
  return header;
}

Result<Frame> DecodeFrameHeader(const std::string& header,
                                int64_t* payload_size) {
  if (header.size() != kFrameHeaderSize) {
    return Status::ParseError("frame: header is " +
                              std::to_string(header.size()) + " bytes, want " +
                              std::to_string(kFrameHeaderSize));
  }
  if (std::memcmp(header.data(), kFrameMagic, 4) != 0) {
    return Status::ParseError("frame: bad magic (not a galoisd peer?)");
  }
  const uint8_t version = static_cast<uint8_t>(header[4]);
  if (version != kFrameVersion) {
    return Status::ParseError("frame: unsupported protocol version " +
                              std::to_string(version));
  }
  const uint8_t type = static_cast<uint8_t>(header[5]);
  if (!KnownFrameType(type)) {
    return Status::ParseError("frame: unknown frame type " +
                              std::to_string(type));
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::ParseError("frame: nonzero reserved bytes");
  }
  const uint32_t len = static_cast<uint32_t>(static_cast<uint8_t>(header[8])) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[9]))
                        << 8) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[10]))
                        << 16) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(header[11]))
                        << 24);
  if (static_cast<int64_t>(len) > kMaxFramePayload) {
    return Status::ParseError("frame: payload length " + std::to_string(len) +
                              " exceeds " + std::to_string(kMaxFramePayload) +
                              " byte cap");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  *payload_size = static_cast<int64_t>(len);
  return frame;
}

Status WriteFrame(int fd, FrameType type, const std::string& payload,
                  int64_t deadline_ms, const SyscallShim* shim) {
  if (static_cast<int64_t>(payload.size()) > kMaxFramePayload) {
    return Status::InvalidArgument("frame: refusing to send " +
                                   std::to_string(payload.size()) +
                                   " byte payload");
  }
  // One buffer, one send path: header + payload coalesce into the same
  // socket write stream (small frames go out in one segment).
  std::string wire = EncodeFrameHeader(type, payload.size());
  wire += payload;
  return SendAll(fd, wire, deadline_ms, shim);
}

Result<Frame> ReadFrame(int fd, int64_t deadline_ms, const SyscallShim* shim) {
  std::string header;
  header.reserve(kFrameHeaderSize);
  // First byte separately: an orderly EOF here is "peer hung up between
  // requests" (kNotFound), not a truncation fault.
  char first;
  GALOIS_ASSIGN_OR_RETURN(size_t n,
                          RecvSome(fd, &first, 1, deadline_ms, shim));
  if (n == 0) {
    return Status::NotFound("frame: connection closed");
  }
  header.push_back(first);
  GALOIS_RETURN_IF_ERROR(RecvExactly(fd, kFrameHeaderSize - 1, &header,
                                     deadline_ms, shim));
  int64_t payload_size = 0;
  GALOIS_ASSIGN_OR_RETURN(Frame frame,
                          DecodeFrameHeader(header, &payload_size));
  frame.payload.reserve(static_cast<size_t>(payload_size));
  GALOIS_RETURN_IF_ERROR(RecvExactly(fd, static_cast<size_t>(payload_size),
                                     &frame.payload, deadline_ms, shim));
  return frame;
}

}  // namespace galois::net
