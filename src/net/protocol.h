#ifndef GALOIS_NET_PROTOCOL_H_
#define GALOIS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "api/database.h"
#include "common/json.h"
#include "common/result.h"
#include "llm/language_model.h"
#include "types/relation.h"

namespace galois::net {

/// The galoisd wire protocol's inner layer: JSON payload codecs for the
/// frame types in net/frame.h. Shared by GaloisServer and GaloisClient,
/// so the two sides cannot drift.
///
/// Fidelity contract: a QueryResult serialised here and decoded on the
/// other side compares equal to the in-process value — same relation
/// (schema + rows, including int64/date payloads, which travel as
/// strings exactly like the LLM wire codec's tagged values), same
/// CostMeter (doubles dumped at %.17g round-trip losslessly), same
/// cache/prefetch counters. That is what lets the e2e suite prove the
/// daemon byte-identical to the in-process facade. Provenance traces are
/// deliberately NOT carried: provenance runs are a debugging mode and
/// their traces hold engine-internal pointers; remote sessions run with
/// record_provenance off.

/// Relation <-> JSON: {"columns":[{name,type,table}],
/// "rows":[[tagged values...]]}.
Json RelationToJson(const Relation& relation);
Result<Relation> RelationFromJson(const Json& j);

/// CostMeter <-> JSON, including the by_model per-backend slices.
Json CostMeterToJson(const llm::CostMeter& meter);
Result<llm::CostMeter> CostMeterFromJson(const Json& j);

/// One query request (FrameType::kQuery).
struct QueryRequest {
  std::string sql;
  /// Client-requested deadline; 0 = none. The server clamps it to its
  /// own default_deadline_ms (when set) and arms the query's
  /// CancelToken, so a slow query is cancelled cooperatively instead of
  /// parking a connection slot forever.
  int64_t deadline_ms = 0;
};

Json QueryRequestToJson(const QueryRequest& request);
Result<QueryRequest> QueryRequestFromJson(const Json& j);

/// QueryResult <-> JSON (FrameType::kQueryResult). The trace is not
/// carried (see the fidelity contract above).
Json QueryResultToJson(const QueryResult& result);
Result<QueryResult> QueryResultFromJson(const Json& j);

/// Failed-query payload (FrameType::kError): the Status round-trips with
/// its code and message (classification markers like the retryable
/// suffix ride along in the message), plus an explicit retryable flag
/// for server-side conditions — admission rejection, drain — that the
/// client should retry against another (or a less busy) server.
Json StatusToJson(const Status& status, bool retryable);
/// Reconstructs the Status; a retryable flag is re-applied as the
/// llm::MarkRetryable marker so llm::IsRetryableLlmError sees it.
Status StatusFromJson(const Json& j);

/// Live daemon statistics (FrameType::kStatsResult) — the ctdb-style
/// counter block. Spend is the whole model stack's meter (per-backend
/// slices included); the cache/prefetch counters are accumulated over
/// every completed query's QueryResult.
struct ServerStats {
  int64_t uptime_ms = 0;
  bool draining = false;

  int64_t connections_accepted = 0;
  int64_t connections_active = 0;

  int64_t queries_started = 0;
  int64_t queries_ok = 0;
  int64_t queries_error = 0;
  /// Admission-control rejections (queue full or draining).
  int64_t queries_rejected = 0;
  /// Responses that could not be written because the client had already
  /// disconnected (the query still ran and billed).
  int64_t responses_unsent = 0;

  int64_t in_flight = 0;
  int64_t queued = 0;

  /// Completed-query wall clock (QueryResult::wall_ms sums / max).
  double total_wall_ms = 0.0;
  double max_wall_ms = 0.0;
  /// queries_ok per second of uptime.
  double queries_per_sec = 0.0;

  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;

  /// Stack-wide spend since the Database opened.
  llm::CostMeter spend;

  /// Persistent store shape; all zero when no store is attached.
  bool store_attached = false;
  int64_t store_file_bytes = 0;
  int64_t store_live_materialisations = 0;
  int64_t store_live_prompts = 0;

  /// Human-readable one-per-line rendering for logs and CI scrapes.
  std::string ToString() const;
};

Json ServerStatsToJson(const ServerStats& stats);
Result<ServerStats> ServerStatsFromJson(const Json& j);

}  // namespace galois::net

#endif  // GALOIS_NET_PROTOCOL_H_
