#ifndef GALOIS_NET_PROTOCOL_H_
#define GALOIS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/json.h"
#include "common/result.h"
#include "llm/language_model.h"
#include "types/relation.h"

namespace galois::net {

/// The galoisd wire protocol's inner layer: JSON payload codecs for the
/// frame types in net/frame.h. Shared by GaloisServer and GaloisClient,
/// so the two sides cannot drift.
///
/// Fidelity contract: a QueryResult serialised here and decoded on the
/// other side compares equal to the in-process value — same relation
/// (schema + rows, including int64/date payloads, which travel as
/// strings exactly like the LLM wire codec's tagged values), same
/// CostMeter (doubles dumped at %.17g round-trip losslessly), same
/// cache/prefetch counters. That is what lets the e2e suite prove the
/// daemon byte-identical to the in-process facade. Provenance traces are
/// deliberately NOT carried: provenance runs are a debugging mode and
/// their traces hold engine-internal pointers; remote sessions run with
/// record_provenance off.

/// Relation <-> JSON: {"columns":[{name,type,table}],
/// "rows":[[tagged values...]]}.
Json RelationToJson(const Relation& relation);
Result<Relation> RelationFromJson(const Json& j);

/// CostMeter <-> JSON, including the by_model per-backend slices.
Json CostMeterToJson(const llm::CostMeter& meter);
Result<llm::CostMeter> CostMeterFromJson(const Json& j);

/// One query request (FrameType::kQuery).
struct QueryRequest {
  std::string sql;
  /// Client-requested deadline; 0 = none. The server clamps it to its
  /// own default_deadline_ms (when set) and arms the query's
  /// CancelToken, so a slow query is cancelled cooperatively instead of
  /// parking a connection slot forever.
  int64_t deadline_ms = 0;
};

Json QueryRequestToJson(const QueryRequest& request);
Result<QueryRequest> QueryRequestFromJson(const Json& j);

/// QueryResult <-> JSON (FrameType::kQueryResult). The trace is not
/// carried (see the fidelity contract above).
Json QueryResultToJson(const QueryResult& result);
Result<QueryResult> QueryResultFromJson(const Json& j);

/// One shard of a scatter-gathered query (FrameType::kPartialQuery):
/// the coordinator asks a node to materialise exactly one LLM table of
/// the query, optionally restricted to a contiguous key-range slice.
///
/// The node re-plans `sql` against its own (identical) catalog and
/// validates that the shard it finds under `alias` matches `table`,
/// `columns` and `descriptor` byte-for-byte — a mismatch means the
/// coordinator and node disagree about the catalog or planner version,
/// which is a deterministic error, never retried. The descriptor is the
/// table's canonical PredicateDescriptor::Encode() bytes (hex-encoded on
/// the wire so arbitrary predicate values survive the JSON layer).
struct PartialQueryRequest {
  std::string sql;
  std::string table;
  std::string alias;
  /// Needed column names in definition order (the key column is implied
  /// and always first in the response relation).
  std::vector<std::string> columns;
  /// Canonical PredicateDescriptor::Encode() bytes (raw; the codec
  /// hex-encodes them on the wire).
  std::string descriptor;
  /// Key-range slice [slice_index, slice_count): the node runs the full
  /// key scan, keeps the slice_index-th contiguous slice of the scanned
  /// key list, and runs the per-key phases on that slice only.
  /// slice_count == 1 means the whole table.
  int64_t slice_index = 0;
  int64_t slice_count = 1;
  int64_t deadline_ms = 0;
};

Json PartialQueryRequestToJson(const PartialQueryRequest& request);
Result<PartialQueryRequest> PartialQueryRequestFromJson(const Json& j);

/// A node's answer to a partial query (FrameType::kPartialResult): the
/// shard's materialised relation (alias-qualified key + needed columns)
/// plus the per-shard CostMeter slice and cache/prefetch counters the
/// coordinator aggregates into the merged QueryResult.
struct PartialQueryResponse {
  std::string table;
  std::string alias;
  int64_t slice_index = 0;
  int64_t slice_count = 1;
  Relation relation;
  /// Exactly this shard's spend (per-query CostTap, by-model slices
  /// included) — summing the shards' meters reproduces the facade's.
  llm::CostMeter cost;
  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;
};

Json PartialQueryResponseToJson(const PartialQueryResponse& response);
Result<PartialQueryResponse> PartialQueryResponseFromJson(const Json& j);

/// Failed-query payload (FrameType::kError): the Status round-trips with
/// its code and message (classification markers like the retryable
/// suffix ride along in the message), plus an explicit retryable flag
/// for server-side conditions — admission rejection, drain — that the
/// client should retry against another (or a less busy) server.
Json StatusToJson(const Status& status, bool retryable);
/// Reconstructs the Status; a retryable flag is re-applied as the
/// llm::MarkRetryable marker so llm::IsRetryableLlmError sees it.
Status StatusFromJson(const Json& j);

/// Live daemon statistics (FrameType::kStatsResult) — the ctdb-style
/// counter block. Spend is the whole model stack's meter (per-backend
/// slices included); the cache/prefetch counters are accumulated over
/// every completed query's QueryResult.
struct ServerStats {
  int64_t uptime_ms = 0;
  /// Whole seconds of uptime_ms — the scrape-friendly rendering cluster
  /// health checks grep for ("a node with uptime_s below the burst
  /// window just restarted").
  int64_t uptime_s = 0;
  bool draining = false;

  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  /// Alias of connections_active under the conventional scrape name, so
  /// cluster tooling reading `active_connections` keys off one spelling
  /// across daemon versions.
  int64_t active_connections = 0;

  int64_t queries_started = 0;
  int64_t queries_ok = 0;
  int64_t queries_error = 0;
  /// Admission-control rejections (queue full or draining).
  int64_t queries_rejected = 0;
  /// Responses that could not be written because the client had already
  /// disconnected (the query still ran and billed).
  int64_t responses_unsent = 0;

  /// Scatter-gather shard executions served (FrameType::kPartialQuery).
  int64_t partials_started = 0;
  int64_t partials_ok = 0;
  int64_t partials_error = 0;

  int64_t in_flight = 0;
  int64_t queued = 0;

  /// Completed-query wall clock (QueryResult::wall_ms sums / max).
  double total_wall_ms = 0.0;
  double max_wall_ms = 0.0;
  /// queries_ok per second of uptime.
  double queries_per_sec = 0.0;

  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;

  /// Stack-wide spend since the Database opened.
  llm::CostMeter spend;

  /// Persistent store shape; all zero when no store is attached.
  bool store_attached = false;
  int64_t store_file_bytes = 0;
  int64_t store_live_materialisations = 0;
  int64_t store_live_prompts = 0;

  /// Human-readable one-per-line rendering for logs and CI scrapes.
  std::string ToString() const;
};

Json ServerStatsToJson(const ServerStats& stats);
Result<ServerStats> ServerStatsFromJson(const Json& j);

}  // namespace galois::net

#endif  // GALOIS_NET_PROTOCOL_H_
