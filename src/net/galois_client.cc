#include "net/galois_client.h"

#include <utility>

#include "net/frame.h"

namespace galois::net {

Result<GaloisClient> GaloisClient::Connect(ClientOptions options) {
  GALOIS_ASSIGN_OR_RETURN(
      Fd fd, ConnectTcp(options.host, options.port, options.connect_timeout_ms));
  return GaloisClient(std::move(options), std::move(fd));
}

Result<Frame> GaloisClient::RoundTrip(FrameType type,
                                      const std::string& payload,
                                      int64_t extra_deadline_ms) {
  if (!fd_.valid()) {
    return Status::IoError("galois_client: not connected");
  }
  int64_t write_deadline = NowMs() + options_.io_timeout_ms;
  Status sent = WriteFrame(fd_.get(), type, payload, write_deadline);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  int64_t read_deadline =
      NowMs() + options_.io_timeout_ms + extra_deadline_ms;
  Result<Frame> reply = ReadFrame(fd_.get(), read_deadline);
  if (!reply.ok()) {
    Close();
    if (reply.status().code() == StatusCode::kNotFound) {
      // Orderly EOF where a response was owed — e.g. the daemon drained
      // and closed. Surface as a transport fault, not "not found".
      return Status::IoError(
          "galois_client: server closed the connection before responding");
    }
    return reply.status();
  }
  return reply;
}

Result<QueryResult> GaloisClient::Query(const std::string& sql,
                                        int64_t deadline_ms) {
  QueryRequest request;
  request.sql = sql;
  request.deadline_ms = deadline_ms;
  GALOIS_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(FrameType::kQuery,
                             QueryRequestToJson(request).Dump(), deadline_ms));
  if (reply.type == FrameType::kError) {
    GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
    Status s = StatusFromJson(j);
    if (s.ok()) {
      return Status::ParseError("galois_client: error frame carried OK status");
    }
    return s;
  }
  if (reply.type != FrameType::kQueryResult) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected QueryResult, got ") +
        FrameTypeName(reply.type));
  }
  GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
  return QueryResultFromJson(j);
}

Result<ServerStats> GaloisClient::Stats() {
  GALOIS_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(FrameType::kStats, "", 0));
  if (reply.type == FrameType::kError) {
    GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
    Status s = StatusFromJson(j);
    if (s.ok()) {
      return Status::ParseError("galois_client: error frame carried OK status");
    }
    return s;
  }
  if (reply.type != FrameType::kStatsResult) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected StatsResult, got ") +
        FrameTypeName(reply.type));
  }
  GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
  return ServerStatsFromJson(j);
}

Status GaloisClient::Ping() {
  GALOIS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kPing, "", 0));
  if (reply.type != FrameType::kPong) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected Pong, got ") +
        FrameTypeName(reply.type));
  }
  return Status::OK();
}

}  // namespace galois::net
