#include "net/galois_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/frame.h"

namespace galois::net {

Result<GaloisClient> GaloisClient::Connect(ClientOptions options) {
  GALOIS_ASSIGN_OR_RETURN(
      Fd fd, ConnectTcp(options.host, options.port, options.connect_timeout_ms));
  return GaloisClient(std::move(options), std::move(fd));
}

Status GaloisClient::Reconnect() {
  for (int attempt = 0; attempt < options_.reconnect_attempts; ++attempt) {
    if (attempt > 0 && options_.reconnect_backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.reconnect_backoff_ms));
    }
    Result<Fd> fd = ConnectTcp(options_.host, options_.port,
                               options_.connect_timeout_ms);
    if (fd.ok()) {
      fd_ = std::move(fd).value();
      ++stats_.reconnects;
      return Status::OK();
    }
    ++stats_.reconnect_failures;
  }
  return Status::IoError("galois_client: not connected (" +
                         std::to_string(options_.reconnect_attempts) +
                         " reconnect attempts failed)");
}

Result<Frame> GaloisClient::RoundTrip(FrameType type,
                                      const std::string& payload,
                                      int64_t extra_deadline_ms) {
  if (!fd_.valid()) {
    // Heal a poisoned connection at call entry only: before any bytes of
    // this request are on the wire, retrying is unambiguous. A fault
    // after the request was sent stays fatal for this call — the server
    // may have executed it, and re-sending would double-execute.
    if (options_.reconnect_attempts <= 0) {
      return Status::IoError("galois_client: not connected");
    }
    GALOIS_RETURN_IF_ERROR(Reconnect());
  }
  int64_t write_deadline = NowMs() + options_.io_timeout_ms;
  Status sent = WriteFrame(fd_.get(), type, payload, write_deadline);
  if (!sent.ok()) {
    Close();
    return sent;
  }
  int64_t read_deadline =
      NowMs() + options_.io_timeout_ms + extra_deadline_ms;
  Result<Frame> reply = ReadFrame(fd_.get(), read_deadline);
  if (!reply.ok()) {
    Close();
    if (reply.status().code() == StatusCode::kNotFound) {
      // Orderly EOF where a response was owed — e.g. the daemon drained
      // and closed. Surface as a transport fault, not "not found".
      return Status::IoError(
          "galois_client: server closed the connection before responding");
    }
    return reply.status();
  }
  return reply;
}

Result<QueryResult> GaloisClient::Query(const std::string& sql,
                                        int64_t deadline_ms) {
  QueryRequest request;
  request.sql = sql;
  request.deadline_ms = deadline_ms;
  GALOIS_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(FrameType::kQuery,
                             QueryRequestToJson(request).Dump(), deadline_ms));
  if (reply.type == FrameType::kError) {
    GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
    Status s = StatusFromJson(j);
    if (s.ok()) {
      return Status::ParseError("galois_client: error frame carried OK status");
    }
    return s;
  }
  if (reply.type != FrameType::kQueryResult) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected QueryResult, got ") +
        FrameTypeName(reply.type));
  }
  GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
  return QueryResultFromJson(j);
}

Result<PartialQueryResponse> GaloisClient::PartialQuery(
    const PartialQueryRequest& request) {
  GALOIS_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kPartialQuery,
                PartialQueryRequestToJson(request).Dump(),
                request.deadline_ms));
  if (reply.type == FrameType::kError) {
    GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
    Status s = StatusFromJson(j);
    if (s.ok()) {
      return Status::ParseError("galois_client: error frame carried OK status");
    }
    return s;
  }
  if (reply.type != FrameType::kPartialResult) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected PartialResult, got ") +
        FrameTypeName(reply.type));
  }
  GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
  return PartialQueryResponseFromJson(j);
}

Result<ServerStats> GaloisClient::Stats() {
  GALOIS_ASSIGN_OR_RETURN(Frame reply,
                          RoundTrip(FrameType::kStats, "", 0));
  if (reply.type == FrameType::kError) {
    GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
    Status s = StatusFromJson(j);
    if (s.ok()) {
      return Status::ParseError("galois_client: error frame carried OK status");
    }
    return s;
  }
  if (reply.type != FrameType::kStatsResult) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected StatsResult, got ") +
        FrameTypeName(reply.type));
  }
  GALOIS_ASSIGN_OR_RETURN(Json j, Json::Parse(reply.payload));
  return ServerStatsFromJson(j);
}

Status GaloisClient::Ping() {
  GALOIS_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kPing, "", 0));
  if (reply.type != FrameType::kPong) {
    Close();
    return Status::ParseError(
        std::string("galois_client: expected Pong, got ") +
        FrameTypeName(reply.type));
  }
  return Status::OK();
}

}  // namespace galois::net
