#include "net/galois_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/galois_executor.h"
#include "llm/http_llm.h"

namespace galois::net {

namespace {

/// How long the accept loop sleeps per poll slice; bounds both shutdown
/// latency and finished-worker reap latency.
constexpr int64_t kAcceptSliceMs = 50;

}  // namespace

GaloisServer::GaloisServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

GaloisServer::~GaloisServer() { Shutdown(); }

Status GaloisServer::Start() {
  GALOIS_RETURN_IF_ERROR(
      listener_.Bind(options_.host, options_.port, options_.accept_backlog));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    started_ms_ = NowMs();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void GaloisServer::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Fd> accepted = listener_.Accept(kAcceptSliceMs);
    ReapFinishedWorkers();
    if (!accepted.ok()) break;  // listener itself broke (or was closed)
    if (!accepted.value().valid()) continue;  // timeout slice
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++connections_accepted_;
      ++connections_active_;
    }
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back(
        [this, fd = std::make_shared<Fd>(std::move(accepted.value()))]() mutable {
          HandleConnection(std::move(*fd));
          {
            std::lock_guard<std::mutex> slock(stats_mu_);
            --connections_active_;
          }
          std::lock_guard<std::mutex> wlock(workers_mu_);
          finished_.push_back(std::this_thread::get_id());
        });
  }
}

void GaloisServer::ReapFinishedWorkers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (std::thread::id id : finished_) {
      for (auto it = workers_.begin(); it != workers_.end(); ++it) {
        if (it->get_id() == id) {
          done.push_back(std::move(*it));
          workers_.erase(it);
          break;
        }
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done) t.join();
}

void GaloisServer::HandleConnection(Fd fd) {
  while (true) {
    // Idle wait in short slices so the drain flag is observed promptly;
    // only once bytes are pending does the io_timeout_ms budget start.
    if (!WaitReady(fd.get(), POLLIN, NowMs() + options_.idle_poll_ms)) {
      if (draining_.load()) return;
      continue;
    }
    Result<Frame> frame =
        ReadFrame(fd.get(), NowMs() + options_.io_timeout_ms);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kParseError) {
        // Deterministic protocol violation: tell the peer why, then hang
        // up — resynchronising a corrupt frame stream is impossible.
        WriteErrorFrame(fd.get(), frame.status(), /*retryable=*/false);
      }
      // kNotFound = orderly hang-up between requests; kIoError = the
      // peer vanished mid-frame. Either way this connection is done —
      // and only this connection.
      return;
    }
    switch (frame.value().type) {
      case FrameType::kPing: {
        Status s = WriteFrame(fd.get(), FrameType::kPong, "",
                              NowMs() + options_.io_timeout_ms);
        if (!s.ok()) return;
        break;
      }
      case FrameType::kStats: {
        std::string payload = ServerStatsToJson(BuildStats()).Dump();
        Status s = WriteFrame(fd.get(), FrameType::kStatsResult, payload,
                              NowMs() + options_.io_timeout_ms);
        if (!s.ok()) return;
        break;
      }
      case FrameType::kQuery:
        ServeQuery(fd.get(), frame.value().payload);
        // ServeQuery reports per-query failures in-band; a dead client
        // surfaces on the next read.
        break;
      case FrameType::kPartialQuery:
        ServePartialQuery(fd.get(), frame.value().payload);
        break;
      default:
        // Server-to-client frame types arriving at the server: protocol
        // violation.
        WriteErrorFrame(
            fd.get(),
            Status::ParseError(
                std::string("galoisd: unexpected frame type ") +
                FrameTypeName(frame.value().type)),
            /*retryable=*/false);
        return;
    }
  }
}

void GaloisServer::ServeQuery(int fd, const std::string& payload) {
  Result<Json> parsed = Json::Parse(payload);
  Result<QueryRequest> request =
      parsed.ok() ? QueryRequestFromJson(parsed.value())
                  : Result<QueryRequest>(parsed.status());
  if (!request.ok()) {
    WriteErrorFrame(fd, request.status(), /*retryable=*/false);
    return;
  }

  std::string reject_reason;
  if (!AdmitQuery(&reject_reason)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++queries_rejected_;
    }
    // Rejections are retryable by construction: the same query succeeds
    // once load subsides (or against a drained server's replacement).
    WriteErrorFrame(fd, Status::ExecutionError(reject_reason),
                    /*retryable=*/true);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++queries_started_;
  }

  // Per-query token, chained onto the drain-kill parent so Shutdown()
  // can cancel overstaying queries cooperatively. The effective deadline
  // is the client's ask clamped by the server-side ceiling.
  CancelToken control = std::make_shared<CancelState>(drain_kill_);
  int64_t deadline = request.value().deadline_ms;
  if (options_.default_deadline_ms > 0) {
    deadline = deadline > 0
                   ? std::min(deadline, options_.default_deadline_ms)
                   : options_.default_deadline_ms;
  }
  if (deadline > 0) control->ArmDeadline(deadline);

  Session session = db_->CreateSession();
  Result<QueryResult> result = session.Query(request.value().sql, control);
  ReleaseQuery();

  Status write_status;
  if (result.ok()) {
    const QueryResult& qr = result.value();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++queries_ok_;
      total_wall_ms_ += qr.wall_ms;
      max_wall_ms_ = std::max(max_wall_ms_, qr.wall_ms);
      table_cache_lookups_ += qr.table_cache_lookups;
      table_cache_hits_ += qr.table_cache_hits;
      table_cache_exact_hits_ += qr.table_cache_exact_hits;
      table_cache_subsumption_hits_ += qr.table_cache_subsumption_hits;
      table_cache_store_hits_ += qr.table_cache_store_hits;
      scan_pages_prefetched_ += qr.scan_pages_prefetched;
      scan_pages_overfetched_ += qr.scan_pages_overfetched;
    }
    write_status = WriteFrame(fd, FrameType::kQueryResult,
                              QueryResultToJson(qr).Dump(),
                              NowMs() + options_.io_timeout_ms);
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++queries_error_;
    }
    // Preserve the engine's own retryability classification across the
    // wire (the marker rides in the message; the flag makes it explicit).
    WriteErrorFrame(fd, result.status(),
                    llm::IsRetryableLlmError(result.status()));
    return;
  }
  if (!write_status.ok()) {
    // The query ran (and billed); the client just never saw the answer.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++responses_unsent_;
  }
}

void GaloisServer::ServePartialQuery(int fd, const std::string& payload) {
  Result<Json> parsed = Json::Parse(payload);
  Result<PartialQueryRequest> request =
      parsed.ok() ? PartialQueryRequestFromJson(parsed.value())
                  : Result<PartialQueryRequest>(parsed.status());
  if (!request.ok()) {
    WriteErrorFrame(fd, request.status(), /*retryable=*/false);
    return;
  }

  std::string reject_reason;
  if (!AdmitQuery(&reject_reason)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++queries_rejected_;
    }
    WriteErrorFrame(fd, Status::ExecutionError(reject_reason),
                    /*retryable=*/true);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++partials_started_;
  }

  CancelToken control = std::make_shared<CancelState>(drain_kill_);
  int64_t deadline = request.value().deadline_ms;
  if (options_.default_deadline_ms > 0) {
    deadline = deadline > 0
                   ? std::min(deadline, options_.default_deadline_ms)
                   : options_.default_deadline_ms;
  }
  if (deadline > 0) control->ArmDeadline(deadline);

  // Shards execute under the node's own default options (the remote
  // execution contract: options do not travel), through the node's
  // materialisation cache, billing through a per-shard CostTap so the
  // response meter is exactly this shard's spend.
  core::ExecutionOptions snapshot = db_->default_options();
  snapshot.control = control;
  core::GaloisExecutor executor(db_->model(), &db_->catalog(), snapshot);
  executor.set_materialisation_cache(db_->materialisation_cache());

  core::ShardRequest shard;
  shard.sql = request.value().sql;
  shard.table = request.value().table;
  shard.alias = request.value().alias;
  shard.columns = request.value().columns;
  shard.descriptor = request.value().descriptor;
  shard.slice_index = request.value().slice_index;
  shard.slice_count = request.value().slice_count;
  Result<core::QueryOutput> out = executor.RunShard(shard);
  ReleaseQuery();

  if (!out.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++partials_error_;
    }
    WriteErrorFrame(fd, out.status(),
                    llm::IsRetryableLlmError(out.status()));
    return;
  }

  PartialQueryResponse response;
  response.table = shard.table;
  response.alias = shard.alias;
  response.slice_index = shard.slice_index;
  response.slice_count = shard.slice_count;
  response.relation = std::move(out.value().relation);
  response.cost = out.value().cost;
  response.table_cache_lookups = out.value().table_cache_lookups;
  response.table_cache_hits = out.value().table_cache_hits;
  response.table_cache_exact_hits = out.value().table_cache_exact_hits;
  response.table_cache_subsumption_hits =
      out.value().table_cache_subsumption_hits;
  response.table_cache_store_hits = out.value().table_cache_store_hits;
  response.scan_pages_prefetched = out.value().scan_pages_prefetched;
  response.scan_pages_overfetched = out.value().scan_pages_overfetched;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++partials_ok_;
    table_cache_lookups_ += response.table_cache_lookups;
    table_cache_hits_ += response.table_cache_hits;
    table_cache_exact_hits_ += response.table_cache_exact_hits;
    table_cache_subsumption_hits_ += response.table_cache_subsumption_hits;
    table_cache_store_hits_ += response.table_cache_store_hits;
    scan_pages_prefetched_ += response.scan_pages_prefetched;
    scan_pages_overfetched_ += response.scan_pages_overfetched;
  }
  Status write_status =
      WriteFrame(fd, FrameType::kPartialResult,
                 PartialQueryResponseToJson(response).Dump(),
                 NowMs() + options_.io_timeout_ms);
  if (!write_status.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++responses_unsent_;
  }
}

bool GaloisServer::AdmitQuery(std::string* reject_reason) {
  std::unique_lock<std::mutex> lock(admission_mu_);
  if (draining_.load()) {
    *reject_reason = "galoisd: draining, not accepting queries";
    return false;
  }
  if (in_flight_ < options_.max_in_flight) {
    ++in_flight_;
    return true;
  }
  if (queued_ >= options_.queue_capacity) {
    *reject_reason = "galoisd: overloaded (" +
                     std::to_string(in_flight_) + " in flight, " +
                     std::to_string(queued_) + " queued)";
    return false;
  }
  ++queued_;
  admission_cv_.wait(lock, [this] {
    return in_flight_ < options_.max_in_flight || draining_.load();
  });
  --queued_;
  if (draining_.load()) {
    *reject_reason = "galoisd: draining, not accepting queries";
    return false;
  }
  ++in_flight_;
  return true;
}

void GaloisServer::ReleaseQuery() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --in_flight_;
  }
  admission_cv_.notify_one();
}

void GaloisServer::WriteErrorFrame(int fd, const Status& status,
                                   bool retryable) {
  std::string payload = StatusToJson(status, retryable).Dump();
  (void)WriteFrame(fd, FrameType::kError, payload,
                   NowMs() + options_.io_timeout_ms);
}

void GaloisServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_ran_.load()) return;
  shutdown_ran_.store(true);

  // 1. Refuse new work: queued admissions reject, connection readers
  //    exit at their next idle slice, the accept loop stops.
  draining_.store(true);
  admission_cv_.notify_all();
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // 2. Let in-flight queries finish; past the drain budget, cancel them
  //    cooperatively through the shared parent token (they surface as
  //    kCancelled to their clients, which is still a flushed response).
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool drained = false;
  std::thread watchdog([&] {
    std::unique_lock<std::mutex> lock(watchdog_mu);
    watchdog_cv.wait_for(lock,
                         std::chrono::milliseconds(options_.drain_timeout_ms),
                         [&] { return drained; });
    if (!drained) drain_kill_->RequestCancel();
  });

  // 3. Join every connection thread — this is what "in-flight queries
  //    finish and responses flush" means operationally.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
    finished_.clear();
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mu);
    drained = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();

  // 4. Flush the persistent store so a restarted daemon warm-starts from
  //    everything this one paid for.
  if (db_ != nullptr && db_->store() != nullptr) {
    (void)db_->store()->Sync();
  }
}

ServerStats GaloisServer::BuildStats() const { return stats(); }

ServerStats GaloisServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.uptime_ms = started_ms_ > 0 ? NowMs() - started_ms_ : 0;
    s.uptime_s = s.uptime_ms / 1000;
    s.connections_accepted = connections_accepted_;
    s.connections_active = connections_active_;
    s.active_connections = connections_active_;
    s.queries_started = queries_started_;
    s.queries_ok = queries_ok_;
    s.queries_error = queries_error_;
    s.queries_rejected = queries_rejected_;
    s.responses_unsent = responses_unsent_;
    s.partials_started = partials_started_;
    s.partials_ok = partials_ok_;
    s.partials_error = partials_error_;
    s.total_wall_ms = total_wall_ms_;
    s.max_wall_ms = max_wall_ms_;
    s.table_cache_lookups = table_cache_lookups_;
    s.table_cache_hits = table_cache_hits_;
    s.table_cache_exact_hits = table_cache_exact_hits_;
    s.table_cache_subsumption_hits = table_cache_subsumption_hits_;
    s.table_cache_store_hits = table_cache_store_hits_;
    s.scan_pages_prefetched = scan_pages_prefetched_;
    s.scan_pages_overfetched = scan_pages_overfetched_;
  }
  s.draining = draining_.load();
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    s.in_flight = in_flight_;
    s.queued = queued_;
  }
  if (s.uptime_ms > 0) {
    s.queries_per_sec =
        static_cast<double>(s.queries_ok) /
        (static_cast<double>(s.uptime_ms) / 1000.0);
  }
  if (db_ != nullptr && db_->model() != nullptr) {
    s.spend = db_->model()->cost();
  }
  if (db_ != nullptr && db_->store() != nullptr) {
    store::StoreStats st = db_->store()->stats();
    s.store_attached = true;
    s.store_file_bytes = static_cast<int64_t>(st.file_bytes);
    s.store_live_materialisations =
        static_cast<int64_t>(st.live_materialisations);
    s.store_live_prompts = static_cast<int64_t>(st.live_prompts);
  }
  return s;
}

}  // namespace galois::net
