#ifndef GALOIS_NET_HTTP_H_
#define GALOIS_NET_HTTP_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/socket.h"

namespace galois::net {

/// Minimal HTTP/1.1 message layer shared by the client (llm/http_llm.cc)
/// and server (tests/fake_llm_server.cc) sides, so the framing rules —
/// \r\n\r\n header split, validated Content-Length, truncation-at-EOF
/// detection — exist once and cannot drift between the two.
///
/// Scope is deliberately tiny: POST-with-body request, status-line
/// response, Content-Length framing (or read-to-EOF with Connection:
/// close), no chunked encoding, no TLS (a proxy's job in this build).

/// Case-insensitive header lookup over a raw "Name: value\r\n..." block;
/// returns the trimmed value of the first match.
bool FindHeader(const std::string& headers, const std::string& name,
                std::string* value);

/// Upper bound on a message body this layer will buffer (64 MiB): both a
/// Content-Length validation cap and a runaway-read guard.
constexpr int64_t kMaxHttpBody = 64 * 1024 * 1024;

/// Strictly validates a Content-Length value: optional surrounding
/// whitespace, then decimal digits only. Rejects empty values, signs,
/// trailing junk, negatives and values above `max_bytes` with
/// kParseError — a garbage header must never silently degrade into
/// read-to-EOF framing (a satellite bugfix; std::strtoll's "garbage
/// parses as 0 or stops at the first bad char" behaviour did exactly
/// that).
Result<int64_t> ParseContentLength(const std::string& value,
                                   int64_t max_bytes = kMaxHttpBody);

/// One parsed HTTP response.
struct HttpResponseMessage {
  int status_code = 0;
  std::string headers;  // raw header block (after the status line)
  std::string body;
};

/// One parsed HTTP request.
struct HttpRequestMessage {
  std::string method;
  std::string path;
  std::string headers;  // raw header block (after the request line)
  std::string body;
};

/// Reads one full HTTP response from `fd` (status line + headers, then
/// Content-Length bytes, or to-EOF when the header is absent).
///
/// Classification contract:
///  * kIoError   — transport fault: timeout, connection closed before
///    the headers completed, or closed mid-body short of Content-Length
///    (a peer dying mid-write is a retryable short read, and must never
///    reach the JSON parser as a "malformed body" decode error);
///  * kParseError — the peer deterministically violated the protocol
///    (malformed status line, invalid Content-Length) — not retryable.
Result<HttpResponseMessage> ReadHttpResponse(
    int fd, int64_t deadline_ms, const SyscallShim* shim = nullptr);

/// Reads one full HTTP request from `fd`. Same classification contract
/// as ReadHttpResponse; a missing Content-Length means an empty body
/// (requests have no read-to-EOF mode).
Result<HttpRequestMessage> ReadHttpRequest(
    int fd, int64_t deadline_ms, const SyscallShim* shim = nullptr);

/// Serialises a response with Content-Type: application/json and
/// Connection: close. `advertised_length` (when >= 0) deliberately lies
/// about the body size — the fault-injection hook behind the truncated-
/// body fault schedule.
std::string BuildHttpResponse(int code, const std::string& reason,
                              const std::string& body,
                              const std::string& extra_headers = "",
                              int64_t advertised_length = -1);

/// Serialises a POST request with Content-Type: application/json and
/// Connection: close.
std::string BuildHttpPost(const std::string& host_header,
                          const std::string& path, const std::string& body);

}  // namespace galois::net

#endif  // GALOIS_NET_HTTP_H_
