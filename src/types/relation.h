#ifndef GALOIS_TYPES_RELATION_H_
#define GALOIS_TYPES_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

namespace galois {

/// An in-memory row-store relation: a Schema plus a bag of tuples.
///
/// This is the exchange format of the whole system: the ground-truth engine,
/// the Galois LLM executor and the evaluation harness all produce and
/// consume Relations.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return schema_.size(); }
  bool empty() const { return rows_.empty(); }

  const std::vector<Tuple>& rows() const { return rows_; }
  std::vector<Tuple>* mutable_rows() { return &rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Appends a row; errors if arity mismatches the schema.
  Status AddRow(Tuple row);

  /// Appends a row without checking (hot paths that already validated).
  void AddRowUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  /// Value at (row, col).
  const Value& At(size_t row, size_t col) const { return rows_[row][col]; }

  /// Returns all values of one column.
  std::vector<Value> ColumnValues(size_t col) const;

  /// Sorts rows lexicographically by all columns; gives relations a
  /// canonical order for comparison/printing.
  void SortRows();

  /// Removes exact duplicate rows (after canonical sort).
  void DedupRows();

  /// Pretty ASCII table with column headers, e.g. for examples.
  std::string ToPrettyString(size_t max_rows = 50) const;

  /// One line per row, pipe-separated; stable given SortRows.
  std::string ToCsv() const;

  /// Structural equality: same schema, same multiset of rows.
  bool SameContents(const Relation& other) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace galois

#endif  // GALOIS_TYPES_RELATION_H_
