#include "types/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace galois {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

int64_t PackDate(int year, int month, int day) {
  return static_cast<int64_t>(year) * 10000 + month * 100 + day;
}

void UnpackDate(int64_t packed, int* year, int* month, int* day) {
  *year = static_cast<int>(packed / 10000);
  *month = static_cast<int>((packed / 100) % 100);
  *day = static_cast<int>(packed % 100);
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = DataType::kBool;
  out.data_ = v;
  return out;
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = DataType::kInt64;
  out.data_ = v;
  return out;
}

Value Value::Double(double v) {
  Value out;
  out.type_ = DataType::kDouble;
  out.data_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.type_ = DataType::kString;
  out.data_ = std::move(v);
  return out;
}

Value Value::Date(int year, int month, int day) {
  Value out;
  out.type_ = DataType::kDate;
  out.data_ = PackDate(year, month, day);
  return out;
}

Value Value::DatePacked(int64_t packed) {
  Value out;
  out.type_ = DataType::kDate;
  out.data_ = packed;
  return out;
}

bool Value::bool_value() const {
  assert(type_ == DataType::kBool);
  return std::get<bool>(data_);
}

int64_t Value::int_value() const {
  assert(type_ == DataType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::double_value() const {
  assert(type_ == DataType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::string_value() const {
  assert(type_ == DataType::kString);
  return std::get<std::string>(data_);
}

int64_t Value::date_packed() const {
  assert(type_ == DataType::kDate);
  return std::get<int64_t>(data_);
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    default:
      return Status::TypeError("value of type " +
                               std::string(DataTypeName(type_)) +
                               " is not numeric");
  }
}

namespace {

/// Orders type families for heterogeneous comparison.
int TypeGroup(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kDate:
      return 3;
    case DataType::kString:
      return 4;
  }
  return 5;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  int ga = TypeGroup(type_);
  int gb = TypeGroup(other.type_);
  if (ga != gb) return ga < gb ? -1 : 1;
  switch (type_) {
    case DataType::kNull:
      return 0;
    case DataType::kBool: {
      bool a = bool_value();
      bool b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Same numeric group; compare as doubles (exact for our data scale).
      double a = type_ == DataType::kInt64
                     ? static_cast<double>(int_value())
                     : double_value();
      double b = other.type_ == DataType::kInt64
                     ? static_cast<double>(other.int_value())
                     : other.double_value();
      return Sign(a - b);
    }
    case DataType::kDate: {
      int64_t a = date_packed();
      int64_t b = other.date_packed();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString:
      return string_value().compare(other.string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int_value());
    case DataType::kDouble: {
      double d = double_value();
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
        // Integral double: print without trailing zeros.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kDate: {
      int y, m, d;
      UnpackDate(date_packed(), &y, &m, &d);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      return buf;
    }
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (type_ == DataType::kNull && other.type_ == DataType::kNull) return true;
  if (TypeGroup(type_) != TypeGroup(other.type_)) return false;
  return Compare(other) == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9E3779B9;
    case DataType::kBool:
      return bool_value() ? 0xB5297A4D : 0x68E31DA4;
    case DataType::kInt64:
      return std::hash<double>()(static_cast<double>(int_value()));
    case DataType::kDouble:
      return std::hash<double>()(double_value());
    case DataType::kString:
      return std::hash<std::string>()(string_value());
    case DataType::kDate:
      return std::hash<int64_t>()(date_packed()) ^ 0x5DEECE66D;
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace galois
