#include "types/schema.h"

#include "common/strings.h"

namespace galois {

std::string Column::QualifiedName() const {
  if (table.empty()) return name;
  return table + "." + name;
}

Result<size_t> Schema::Resolve(const std::string& name) const {
  // Accept "alias.column" qualified names.
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    return ResolveQualified(name.substr(0, dot), name.substr(dot + 1));
  }
  return ResolveQualified("", name);
}

Result<size_t> Schema::ResolveQualified(const std::string& table,
                                        const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!table.empty() && !EqualsIgnoreCase(c.table, table)) continue;
    if (found.has_value()) {
      return Status::BindError("ambiguous column reference '" +
                               (table.empty() ? name : table + "." + name) +
                               "'");
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::BindError("column '" +
                             (table.empty() ? name : table + "." + name) +
                             "' not found in schema [" + ToString() + "]");
  }
  return *found;
}

std::optional<size_t> Schema::Find(const std::string& name) const {
  auto r = Resolve(name);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName();
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace galois
