#ifndef GALOIS_TYPES_SCHEMA_H_
#define GALOIS_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace galois {

/// One column of a relation schema. `table` is the binding alias/relation
/// the column originated from ("" when anonymous, e.g. computed columns).
struct Column {
  std::string name;
  DataType type = DataType::kString;
  std::string table;

  Column() = default;
  Column(std::string n, DataType t, std::string tbl = "")
      : name(std::move(n)), type(t), table(std::move(tbl)) {}

  /// "table.name" when qualified, else "name".
  std::string QualifiedName() const;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type && table == other.table;
  }
};

/// Ordered list of columns with (case-insensitive) name resolution.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Resolves `name` (optionally qualified as "alias.col"). Returns the
  /// index, or an error when not found / ambiguous.
  Result<size_t> Resolve(const std::string& name) const;

  /// Like Resolve with an explicit table qualifier ("" = unqualified).
  Result<size_t> ResolveQualified(const std::string& table,
                                  const std::string& name) const;

  /// Index lookup without error machinery (nullopt if missing/ambiguous).
  std::optional<size_t> Find(const std::string& name) const;

  /// Concatenates two schemas (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name TYPE, name TYPE, ..." rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

}  // namespace galois

#endif  // GALOIS_TYPES_SCHEMA_H_
