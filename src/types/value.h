#ifndef GALOIS_TYPES_VALUE_H_
#define GALOIS_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace galois {

/// The SQL data types supported by the engine. kDate is stored as a packed
/// int64 of the form yyyymmdd (e.g. 1962-08-04 -> 19620804), which keeps
/// Value a small variant while giving dates a total order.
enum class DataType { kNull, kBool, kInt64, kDouble, kString, kDate };

/// Stable name, e.g. "INT" / "VARCHAR" / "DATE".
const char* DataTypeName(DataType t);

/// True if t is kInt64, kDouble (numeric comparisons/aggregation allowed).
bool IsNumeric(DataType t);

/// Packs/unpacks the yyyymmdd date representation.
int64_t PackDate(int year, int month, int day);
void UnpackDate(int64_t packed, int* year, int* month, int* day);

/// A single typed cell value. Values are cheap to copy for scalar types and
/// use a std::string for text. NULL compares less than every non-NULL value
/// and is never equal to anything, including itself, under SqlEquals.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  static Value Date(int year, int month, int day);
  static Value DatePacked(int64_t packed);

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Typed accessors; calling the wrong accessor asserts in debug builds.
  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const;
  int64_t date_packed() const;

  /// Numeric view: int/double/bool widen to double; errors otherwise.
  Result<double> AsDouble() const;

  /// SQL three-valued-logic equality collapsed to bool: NULL == anything is
  /// false. Numerics compare by value across int/double.
  bool SqlEquals(const Value& other) const;

  /// Total order used for ORDER BY and sorting: NULL first, then by type
  /// group (bool < numeric < date < string), then by value.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Render for display/CSV: NULL -> "NULL", dates ISO-8601, doubles with
  /// minimal digits.
  std::string ToString() const;

  /// Structural equality (unlike SqlEquals, NULL == NULL here). Used by
  /// containers and tests.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash compatible with operator== (numeric int/double that compare equal
  /// hash equally).
  size_t Hash() const;

 private:
  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace galois

#endif  // GALOIS_TYPES_VALUE_H_
