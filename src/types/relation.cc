#include "types/relation.h"

#include <algorithm>
#include <sstream>

namespace galois {

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

Status Relation::AddRow(Tuple row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> Relation::ColumnValues(size_t col) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Tuple& t : rows_) out.push_back(t[col]);
  return out;
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(), TupleLess);
}

void Relation::DedupRows() {
  SortRows();
  rows_.erase(std::unique(rows_.begin(), rows_.end(),
                          [](const Tuple& a, const Tuple& b) {
                            if (a.size() != b.size()) return false;
                            for (size_t i = 0; i < a.size(); ++i) {
                              if (!(a[i] == b[i])) return false;
                            }
                            return true;
                          }),
              rows_.end());
}

std::string Relation::ToPrettyString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema_.size(); ++c) {
    widths[c] = schema_.column(c).QualifiedName().size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    row.reserve(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      row.push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::ostringstream os;
  auto rule = [&]() {
    os << "+";
    for (size_t c = 0; c < schema_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t c = 0; c < schema_.size(); ++c) {
    std::string h = schema_.column(c).QualifiedName();
    os << " " << h << std::string(widths[c] - h.size(), ' ') << " |";
  }
  os << "\n";
  rule();
  for (const auto& row : cells) {
    os << "|";
    for (size_t c = 0; c < schema_.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  }
  rule();
  if (shown < rows_.size()) {
    os << "(" << rows_.size() - shown << " more rows)\n";
  }
  os << rows_.size() << " row(s)\n";
  return os.str();
}

std::string Relation::ToCsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) os << "|";
    os << schema_.column(c).QualifiedName();
  }
  os << "\n";
  for (const Tuple& t : rows_) {
    for (size_t c = 0; c < t.size(); ++c) {
      if (c > 0) os << "|";
      os << t[c].ToString();
    }
    os << "\n";
  }
  return os.str();
}

bool Relation::SameContents(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  if (rows_.size() != other.rows_.size()) return false;
  Relation a = *this;
  Relation b = other;
  a.SortRows();
  b.SortRows();
  for (size_t r = 0; r < a.rows_.size(); ++r) {
    const Tuple& ta = a.rows_[r];
    const Tuple& tb = b.rows_[r];
    for (size_t c = 0; c < ta.size(); ++c) {
      if (!(ta[c] == tb[c])) return false;
    }
  }
  return true;
}

}  // namespace galois
