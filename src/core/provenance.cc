#include "core/provenance.h"

#include <sstream>

namespace galois::core {

std::string CellProvenance::ToString() const {
  std::ostringstream os;
  os << table_alias << "[" << key << "]." << column << " = "
     << value.ToString();
  if (verified) os << (rejected ? " [REJECTED by critic]" : " [verified]");
  // The prompt's request line is the last line before the completion.
  auto pos = prompt.rfind("Q: ");
  if (pos != std::string::npos) {
    std::string request = prompt.substr(pos);
    auto nl = request.find('\n');
    if (nl != std::string::npos) request = request.substr(0, nl);
    os << "  <- " << request << " -> \"" << completion << "\"";
  }
  return os.str();
}

size_t ExecutionTrace::NumRejectedCells() const {
  size_t n = 0;
  for (const CellProvenance& c : cells) {
    if (c.rejected) ++n;
  }
  return n;
}

std::string ExecutionTrace::ToString(size_t max_cells) const {
  std::ostringstream os;
  for (const ScanProvenance& s : scans) {
    os << "scan " << s.table_alias << ": " << s.pages << " page prompt(s), "
       << s.keys << " key(s)";
    if (s.filtered > 0) os << ", " << s.filtered << " dropped by filters";
    os << "\n";
  }
  size_t shown = 0;
  for (const CellProvenance& c : cells) {
    if (shown++ == max_cells) {
      os << "(" << cells.size() - max_cells << " more cells)\n";
      break;
    }
    os << c.ToString() << "\n";
  }
  return os.str();
}

}  // namespace galois::core
