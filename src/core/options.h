#ifndef GALOIS_CORE_OPTIONS_H_
#define GALOIS_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/cancel.h"

namespace galois::core {

/// When to push a selection into the leaf key-scan prompt instead of
/// issuing one filter-check prompt per key (Section 6, query
/// optimization): fewer prompts, but merged prompts answer less
/// accurately.
enum class PushdownPolicy {
  kNever,   // paper default: per-key filter-check prompts
  kAlways,  // always merge the first selection into the scan prompt
  kAuto,    // cost-based: merge only for scans expected to be large
};

const char* PushdownPolicyName(PushdownPolicy p);

/// Execution options of the Galois executor. The defaults reproduce the
/// paper's prototype; the flags exist for the Section 6 ablations and
/// extensions.
struct ExecutionOptions {
  /// Selection pushdown strategy (see PushdownPolicy).
  PushdownPolicy pushdown_policy = PushdownPolicy::kNever;

  /// kAuto pushes down only when the table's expected cardinality is at
  /// least this many rows (each avoided filter prompt is worth more on
  /// large scans, while the accuracy penalty is per-prompt).
  size_t auto_pushdown_min_rows = 60;

  /// The single source of truth for the pushdown decision. (The legacy
  /// `pushdown_selections` bool is retired; set `pushdown_policy =
  /// PushdownPolicy::kAlways` instead.)
  PushdownPolicy EffectivePushdown() const { return pushdown_policy; }

  /// Verify every retrieved non-NULL cell with a second critic prompt and
  /// null the cells the critic rejects (Section 6, "Knowledge of the
  /// Unknown"). Costs one extra prompt per cell.
  bool verify_cells = false;

  /// Record per-cell provenance (prompt, completion, critic verdict) in
  /// QueryOutput::trace / QueryResult::trace (Section 6, "Provenance").
  bool record_provenance = false;

  /// Issue per-key prompts (filter checks, attribute retrievals, critic
  /// verifications) as batches via LanguageModel::CompleteBatch instead of
  /// one round trip each. Answers are identical; the simulated latency
  /// drops because a batch pays one shared overhead and overlapped
  /// decoding. Off by default to mirror the paper prototype's sequential
  /// behaviour. Either way, every retrieval phase is dispatched through
  /// llm::BatchScheduler, which also dedupes repeated prompt texts within
  /// a phase (repeated keys from a join are billed once).
  bool batch_prompts = false;

  /// Upper bound on prompts per CompleteBatch round trip when
  /// batch_prompts is on; 0 sends each retrieval phase as a single batch
  /// (the paper's "~110 batched prompts per query" shape). Real APIs cap
  /// request sizes, so a phase of n prompts is split into
  /// ceil(n / max_batch_size) round trips — num_batches in the CostMeter
  /// grows accordingly while answers stay identical.
  size_t max_batch_size = 0;

  /// How many batch round trips the scheduler may keep in flight at once
  /// when batch_prompts is on. Above 1, each retrieval phase fans its
  /// max_batch_size chunks out across the shared thread pool, so phases
  /// with many chunks take roughly ceil(chunks / parallel_batches) round
  /// trips of wall-clock time instead of `chunks`. Results, Add-order,
  /// dedupe and the CostMeter are identical to sequential dispatch — the
  /// model must merely tolerate concurrent CompleteBatch calls
  /// (SimulatedLlm and PromptCache do). Values < 1 are treated as 1.
  int parallel_batches = 1;

  /// Pipeline independent retrieval phases instead of running them as a
  /// ladder of blocking barriers: the LLM tables of a join materialise
  /// concurrently, and within one table every needed-column attribute
  /// phase (plus its critic-verify follow-up) is dispatched as an async
  /// phase future (BatchScheduler::FlushAsync) instead of column by
  /// column. Results, provenance order and the CostMeter are identical to
  /// the sequential ladder — only wall-clock time changes, roughly from
  /// the *sum* of the phase latencies to the *max* along the longest
  /// dependency chain. Off by default to mirror the paper prototype's
  /// strictly sequential plan. Orthogonal to batch_prompts /
  /// parallel_batches, which act *within* one phase; the combination
  /// multiplies.
  bool pipeline_phases = false;

  /// Run the cleaning step (Section 4, workflow step 3): normalise numeric
  /// formats, parse dates, coerce types. When off, raw completion strings
  /// are stored as-is — the ablation shows how much accuracy this loses.
  bool enable_cleaning = true;

  /// Enforce per-column domain constraints (years in [1000, 2100], ...),
  /// rejecting hallucinated out-of-range values as NULL.
  bool enforce_domains = true;

  /// Upper bound on "Return more results" pages per key scan (the paper's
  /// user-specified termination threshold alternative).
  int max_scan_pages = 64;

  /// Speculative key-scan paging depth: while page k's completion is
  /// being parsed, keep up to this many further page round trips in
  /// flight (0 disables — the paper prototype's strictly sequential
  /// paging). Dispatch-only: the surviving key set, the CostMeter and
  /// the pages bought are identical when the scan terminates at the
  /// max_scan_pages cap; when the model signals "no more results" early,
  /// the pages already speculated are still paid for, joined, and left
  /// in the prompt cache rather than discarded (counted as overfetched
  /// in QueryOutput). Excluded from the materialisation-cache base key,
  /// like the other dispatch knobs. Disabled for LIMIT-bounded scans,
  /// which must never buy pages past the bound.
  int prefetch_pages = 0;

  /// Execute per-key selection checks with the LLM (the paper's filter
  /// operator). When false, the attribute is retrieved instead and the
  /// predicate is evaluated by the engine on the cleaned value.
  bool llm_filter_checks = true;

  /// Per-phase model routing: maps a retrieval phase ("key-scan",
  /// "filter-check", "attribute", "verify"/"critic", "freeform") to a
  /// backend name. Consumed by whoever assembles the model stack (eval
  /// harness, shell, examples): they register backends on an
  /// llm::ModelRouter and feed this map to ConfigureRoutes, so e.g.
  /// critic verification runs on a strong model while bulk retrieval
  /// runs on a cheap one (the cascade configuration of Section 6's cost
  /// discussion). Phases not listed use the router's default backend.
  /// Empty (default) means no routing — a single model serves every
  /// phase. In the eval harness, backend names are model profile names
  /// ("flan", "chatgpt", ...).
  std::map<std::string, std::string> phase_models;

  /// Per-query wall-clock budget in milliseconds; 0 disables. Enforced
  /// cooperatively: `Session::Query` arms a CancelState with this budget
  /// at query entry, the batch scheduler refuses to start new round
  /// trips once it fires, and the executor stops between phases. Work
  /// already in flight completes (and bills).
  int64_t query_deadline_ms = 0;

  /// Runtime cancellation/deadline token for the query this options
  /// snapshot executes. Not a tuning knob: Session::Query fills it from
  /// query_deadline_ms (or the caller's token) per query; it is excluded
  /// from ToString and from the materialisation-cache fingerprint. Null
  /// means not cancellable.
  CancelToken control;

  std::string ToString() const;
};

}  // namespace galois::core

#endif  // GALOIS_CORE_OPTIONS_H_
