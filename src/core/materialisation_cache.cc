#include "core/materialisation_cache.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace galois::core {

namespace {

/// '\x1f' (unit separator) keeps field boundaries unambiguous even when
/// names or literals contain the usual punctuation.
constexpr char kSep = '\x1f';

}  // namespace

std::string MaterialisationCache::Fingerprint(
    const catalog::TableDef& def,
    const std::vector<llm::PromptFilter>& filters,
    bool first_filter_pushed, const ExecutionOptions& options,
    const std::string& model_name, int64_t scan_key_limit) {
  std::ostringstream os;
  os << "table=" << def.name << kSep << "key=" << def.key_column << kSep
     << "entity=" << def.entity_type << kSep << "model=" << model_name
     << kSep << "push=" << (first_filter_pushed ? 1 : 0) << kSep
     << "keylimit=" << scan_key_limit << kSep;
  // Column definitions feed the prompts (descriptions) and the cleaning
  // layer (types), so a redefined catalog must land in a new entry.
  os << "cols=";
  for (const catalog::ColumnDef& c : def.columns) {
    os << c.name << kSep << static_cast<int>(c.type) << kSep
       << c.description << kSep;
  }
  // Every filter field is length-prefixed: a literal containing the
  // rendering of another filter can never collide with a longer filter
  // list.
  os << "filters=";
  for (const llm::PromptFilter& f : filters) {
    const std::string value = f.value.ToString();
    os << f.attribute.size() << ':' << f.attribute << kSep << f.op << kSep
       << value.size() << ':' << value << kSep;
  }
  os << "verify=" << (options.verify_cells ? 1 : 0) << kSep
     << "clean=" << (options.enable_cleaning ? 1 : 0) << kSep
     << "domains=" << (options.enforce_domains ? 1 : 0) << kSep
     << "pages=" << options.max_scan_pages;
  return os.str();
}

std::optional<Relation> MaterialisationCache::Lookup(
    const std::string& fingerprint, const catalog::TableDef& def,
    const std::vector<const catalog::ColumnDef*>& needed_columns,
    const std::string& alias, bool* served_from_store) {
  std::lock_guard<std::mutex> lock(mu_);
  if (served_from_store != nullptr) *served_from_store = false;
  ++stats_.lookups;
  for (Entry& entry : entries_) {
    if (entry.fingerprint != fingerprint) continue;
    // Map each needed column onto the entry's layout (key at 0, then
    // entry.columns); a missing column disqualifies the entry.
    std::vector<size_t> source_index;
    source_index.reserve(needed_columns.size());
    bool subsumes = true;
    for (const catalog::ColumnDef* col : needed_columns) {
      auto it =
          std::find(entry.columns.begin(), entry.columns.end(), col->name);
      if (it == entry.columns.end()) {
        subsumes = false;
        break;
      }
      source_index.push_back(
          1 + static_cast<size_t>(it - entry.columns.begin()));
    }
    if (!subsumes) continue;
    entry.last_used = ++tick_;
    ++stats_.hits;
    if (needed_columns.size() < entry.columns.size()) {
      ++stats_.subsumption_hits;
    }
    if (entry.from_store) {
      ++stats_.store_hits;
      if (served_from_store != nullptr) *served_from_store = true;
    }
    if (sink_ != nullptr) sink_->OnHit(entry.fingerprint);
    // Rebuild the relation in the requester's shape: key + needed
    // columns, qualified with its alias.
    auto key_def = def.FindColumn(def.key_column);
    Schema schema;
    schema.AddColumn(Column(
        def.key_column,
        key_def.ok() ? key_def.value()->type : DataType::kString, alias));
    for (const catalog::ColumnDef* col : needed_columns) {
      schema.AddColumn(Column(col->name, col->type, alias));
    }
    Relation rel(std::move(schema));
    for (const Tuple& row : entry.rows) {
      Tuple out;
      out.reserve(1 + source_index.size());
      out.push_back(row[0]);
      for (size_t idx : source_index) out.push_back(row[idx]);
      rel.AddRowUnchecked(std::move(out));
    }
    return rel;
  }
  return std::nullopt;
}

void MaterialisationCache::Insert(
    const std::string& fingerprint,
    const std::vector<const catalog::ColumnDef*>& columns,
    const Relation& rel) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const catalog::ColumnDef* col : columns) names.push_back(col->name);

  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.fingerprint != fingerprint) continue;
    bool entry_subsumes_new =
        std::all_of(names.begin(), names.end(), [&](const std::string& n) {
          return std::find(entry.columns.begin(), entry.columns.end(), n) !=
                 entry.columns.end();
        });
    if (entry_subsumes_new) {
      // Already covered by an equal or wider entry: just refresh it.
      entry.last_used = ++tick_;
      return;
    }
    bool new_subsumes_entry = std::all_of(
        entry.columns.begin(), entry.columns.end(),
        [&](const std::string& n) {
          return std::find(names.begin(), names.end(), n) != names.end();
        });
    if (new_subsumes_entry) {
      // Widest materialisation wins: replace in place. The replacement
      // was computed this process, so it loses any from_store mark.
      entry.columns = std::move(names);
      entry.rows = rel.rows();
      entry.last_used = ++tick_;
      entry.from_store = false;
      ++stats_.insertions;
      if (sink_ != nullptr) {
        sink_->OnInsert(entry.fingerprint, entry.columns, entry.rows);
      }
      return;
    }
    // Overlapping but incomparable column sets coexist as separate
    // entries (each can still serve its own subsets).
  }
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.columns = std::move(names);
  entry.rows = rel.rows();
  entry.last_used = ++tick_;
  entries_.push_back(std::move(entry));
  ++stats_.insertions;
  if (sink_ != nullptr) {
    const Entry& added = entries_.back();
    sink_->OnInsert(added.fingerprint, added.columns, added.rows);
  }
  EvictBeyondCapLocked();
}

void MaterialisationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  if (sink_ != nullptr) sink_->OnClear();
}

void MaterialisationCache::WarmStart(const std::string& fingerprint,
                                     const std::vector<std::string>& columns,
                                     std::vector<Tuple> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  // The store keeps one record per fingerprint (widest wins on its side
  // too), so a duplicate only appears when warm-starting twice; replace
  // rather than stack.
  for (Entry& entry : entries_) {
    if (entry.fingerprint != fingerprint) continue;
    entry.columns = columns;
    entry.rows = std::move(rows);
    entry.last_used = ++tick_;
    entry.from_store = true;
    return;
  }
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.columns = columns;
  entry.rows = std::move(rows);
  entry.last_used = ++tick_;
  entry.from_store = true;
  entries_.push_back(std::move(entry));
  EvictBeyondCapLocked();
}

void MaterialisationCache::SetSink(MaterialisationSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

size_t MaterialisationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MaterialisationCacheStats MaterialisationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MaterialisationCache::EvictBeyondCapLocked() {
  while (entries_.size() > max_entries_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
    ++stats_.evictions;
  }
}

}  // namespace galois::core
