#include "core/materialisation_cache.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace galois::core {

namespace {

/// '\x1f' (unit separator) keeps field boundaries unambiguous even when
/// names or literals contain the usual punctuation.
constexpr char kSep = '\x1f';

/// Descriptor wire version; bump on layout changes (old bytes then fail
/// Decode and degrade to a miss).
constexpr uint8_t kDescriptorVersion = 1;

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

/// int64/double/date literals have engine-reproducible total orders, so
/// interval reasoning over them matches the model's comparison verdicts
/// on a deterministic model. Strings do not (the model's `=` is
/// case-insensitive) and bools gain nothing from intervals.
bool IsRangeType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate;
}

/// Int and double literals live in one comparison class (Value::Compare
/// compares them by numeric value); dates are their own class.
bool SameRangeClass(DataType a, DataType b) {
  if (a == DataType::kDate || b == DataType::kDate) return a == b;
  return IsRangeType(a) && IsRangeType(b);
}

// ---- descriptor wire codec (length-prefixed, little-endian) ----------

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendI64(std::string* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(u >> (8 * i)));
}

void AppendBytes(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void AppendValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      AppendI64(out, v.int_value());
      break;
    case DataType::kDate:
      AppendI64(out, v.date_packed());
      break;
    case DataType::kDouble: {
      double d = v.double_value();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      AppendI64(out, static_cast<int64_t>(bits));
      break;
    }
    case DataType::kString:
      AppendBytes(out, v.string_value());
      break;
  }
}

struct Reader {
  std::string_view bytes;
  size_t pos = 0;

  bool ReadU8(uint8_t* out) {
    if (pos + 1 > bytes.size()) return false;
    *out = static_cast<uint8_t>(bytes[pos++]);
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (pos + 4 > bytes.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *out = v;
    return true;
  }
  bool ReadI64(int64_t* out) {
    if (pos + 8 > bytes.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *out = static_cast<int64_t>(v);
    return true;
  }
  bool ReadBytes(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos + len > bytes.size()) return false;
    out->assign(bytes.data() + pos, len);
    pos += len;
    return true;
  }
  bool ReadValue(Value* out) {
    uint8_t tag = 0;
    if (!ReadU8(&tag)) return false;
    switch (static_cast<DataType>(tag)) {
      case DataType::kNull:
        *out = Value::Null();
        return true;
      case DataType::kBool: {
        uint8_t b = 0;
        if (!ReadU8(&b)) return false;
        *out = Value::Bool(b != 0);
        return true;
      }
      case DataType::kInt64: {
        int64_t v = 0;
        if (!ReadI64(&v)) return false;
        *out = Value::Int(v);
        return true;
      }
      case DataType::kDate: {
        int64_t v = 0;
        if (!ReadI64(&v)) return false;
        *out = Value::DatePacked(v);
        return true;
      }
      case DataType::kDouble: {
        int64_t bits = 0;
        if (!ReadI64(&bits)) return false;
        double d = 0;
        uint64_t u = static_cast<uint64_t>(bits);
        std::memcpy(&d, &u, sizeof(d));
        *out = Value::Double(d);
        return true;
      }
      case DataType::kString: {
        std::string s;
        if (!ReadBytes(&s)) return false;
        *out = Value::String(std::move(s));
        return true;
      }
    }
    return false;
  }
};

// ---- interval reasoning ----------------------------------------------

/// A (possibly half-open) interval over one comparison class; absent
/// endpoints are unbounded. Built from a query's conjuncts on one
/// column, then tested for containment against a cached conjunct.
struct Interval {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_incl = true;
  bool hi_incl = true;

  void TightenLo(const Value& v, bool incl) {
    if (!lo.has_value()) {
      lo = v;
      lo_incl = incl;
      return;
    }
    const int cmp = v.Compare(*lo);
    if (cmp > 0 || (cmp == 0 && !incl)) {
      lo = v;
      lo_incl = incl;
    }
  }
  void TightenHi(const Value& v, bool incl) {
    if (!hi.has_value()) {
      hi = v;
      hi_incl = incl;
      return;
    }
    const int cmp = v.Compare(*hi);
    if (cmp < 0 || (cmp == 0 && !incl)) {
      hi = v;
      hi_incl = incl;
    }
  }
  void Apply(const std::string& op, const Value& v) {
    if (op == "=") {
      TightenLo(v, true);
      TightenHi(v, true);
    } else if (op == "<") {
      TightenHi(v, false);
    } else if (op == "<=") {
      TightenHi(v, true);
    } else if (op == ">") {
      TightenLo(v, false);
    } else if (op == ">=") {
      TightenLo(v, true);
    }
  }
  /// True when every point of this interval is strictly below `v`
  /// (resp. above): used for `!=` exclusion.
  bool ExcludesPoint(const Value& v) const {
    if (lo.has_value()) {
      const int cmp = v.Compare(*lo);
      if (cmp < 0 || (cmp == 0 && !lo_incl)) return true;
    }
    if (hi.has_value()) {
      const int cmp = v.Compare(*hi);
      if (cmp > 0 || (cmp == 0 && !hi_incl)) return true;
    }
    return false;
  }
};

/// Intersection of the query's range-class bounds on `column`. Conjuncts
/// that cannot tighten soundly (wrong class, `!=`, LIKE) are ignored —
/// that only *widens* the computed interval, which keeps the containment
/// test conservative.
Interval QueryIntervalFor(const PredicateDescriptor& query,
                          const std::string& column, DataType value_class) {
  Interval iv;
  for (const PredicateConjunct& q : query.conjuncts) {
    if (!EqualsIgnoreCase(q.column, column)) continue;
    if (q.op == "!=" || !IsComparisonOp(q.op)) continue;
    if (!IsRangeType(q.value.type()) ||
        !SameRangeClass(q.value.type(), value_class)) {
      continue;
    }
    iv.Apply(q.op, q.value);
  }
  return iv;
}

/// Does the query imply cached conjunct `f`? Either an identical
/// conjunct appears in the query (any operator, any type), or — for
/// int/double/date literals — the intersection of the query's bounds on
/// f's column is contained in the region f accepts.
bool ConjunctImplied(const PredicateConjunct& f,
                     const PredicateDescriptor& query) {
  for (const PredicateConjunct& q : query.conjuncts) {
    if (q.SameShape(f)) return true;
  }
  if (!IsComparisonOp(f.op) || !IsRangeType(f.value.type())) return false;
  const Interval qiv = QueryIntervalFor(query, f.column, f.value.type());
  if (f.op == "!=") return qiv.ExcludesPoint(f.value);
  Interval fiv;
  fiv.Apply(f.op, f.value);
  // Containment qiv ⊆ fiv, endpoint by endpoint.
  if (fiv.lo.has_value()) {
    if (!qiv.lo.has_value()) return false;
    const int cmp = qiv.lo->Compare(*fiv.lo);
    if (cmp < 0) return false;
    if (cmp == 0 && qiv.lo_incl && !fiv.lo_incl) return false;
  }
  if (fiv.hi.has_value()) {
    if (!qiv.hi.has_value()) return false;
    const int cmp = qiv.hi->Compare(*fiv.hi);
    if (cmp > 0) return false;
    if (cmp == 0 && qiv.hi_incl && !fiv.hi_incl) return false;
  }
  return true;
}

/// Mirrors the deterministic core of the simulated model's per-key
/// filter check (SimulatedLlm::NoisyFilterHolds with zero noise): NULL
/// cells drop the row exactly as a -1 verdict drops the key, `=` is
/// case-insensitive for strings, everything else goes through
/// Value::Compare. Keeping these semantics byte-for-byte aligned is
/// what makes a residual-filtered hit indistinguishable from a rerun.
bool ResidualHolds(const Value& cell, const PredicateConjunct& c) {
  if (cell.is_null()) return false;
  const int cmp = cell.Compare(c.value);
  if (c.op == "=") {
    if (cmp == 0) return true;
    return cell.type() == DataType::kString &&
           c.value.type() == DataType::kString &&
           EqualsIgnoreCase(cell.string_value(), c.value.string_value());
  }
  if (c.op == "!=") return cmp != 0;
  if (c.op == "<") return cmp < 0;
  if (c.op == "<=") return cmp <= 0;
  if (c.op == ">") return cmp > 0;
  if (c.op == ">=") return cmp >= 0;
  return false;
}

/// Entry-side subsumption test: every cached conjunct must be implied by
/// the query, so the entry's rows are a superset of the query's. Fills
/// `residual` with the query conjuncts the engine must re-check (those
/// without an identical cached counterpart); each must be marked
/// residually checkable by the planner. Bounded-prefix entries never
/// subsume (they only serve exact descriptor matches, handled earlier).
bool ComputeSubsumption(const PredicateDescriptor& entry,
                        const PredicateDescriptor& query,
                        std::vector<const PredicateConjunct*>* residual) {
  if (entry.scan_key_limit != -1) return false;
  for (const PredicateConjunct& f : entry.conjuncts) {
    if (!ConjunctImplied(f, query)) return false;
  }
  residual->clear();
  for (const PredicateConjunct& q : query.conjuncts) {
    bool identical = false;
    for (const PredicateConjunct& f : entry.conjuncts) {
      if (f.SameShape(q)) {
        identical = true;
        break;
      }
    }
    if (identical) continue;  // already holds on every entry row
    if (!q.residual_ok || !IsComparisonOp(q.op)) return false;
    residual->push_back(&q);
  }
  return true;
}

}  // namespace

void PredicateDescriptor::Canonicalise() {
  std::sort(conjuncts.begin(), conjuncts.end(),
            [](const PredicateConjunct& a, const PredicateConjunct& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.op != b.op) return a.op < b.op;
              const int cmp = a.value.Compare(b.value);
              if (cmp != 0) return cmp < 0;
              if (a.value.type() != b.value.type()) {
                return a.value.type() < b.value.type();
              }
              return a.residual_ok < b.residual_ok;
            });
  conjuncts.erase(
      std::unique(conjuncts.begin(), conjuncts.end(),
                  [](const PredicateConjunct& a, const PredicateConjunct& b) {
                    return a.SameShape(b) && a.value.type() == b.value.type() &&
                           a.residual_ok == b.residual_ok;
                  }),
      conjuncts.end());
}

std::string PredicateDescriptor::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(kDescriptorVersion));
  AppendU32(&out, static_cast<uint32_t>(conjuncts.size()));
  for (const PredicateConjunct& c : conjuncts) {
    AppendBytes(&out, c.column);
    AppendBytes(&out, c.op);
    out.push_back(c.residual_ok ? 1 : 0);
    AppendValue(&out, c.value);
  }
  AppendBytes(&out, pushed_column);
  AppendI64(&out, scan_key_limit);
  return out;
}

bool PredicateDescriptor::Decode(std::string_view bytes,
                                 PredicateDescriptor* out) {
  Reader r{bytes};
  uint8_t version = 0;
  if (!r.ReadU8(&version) || version != kDescriptorVersion) return false;
  uint32_t n = 0;
  if (!r.ReadU32(&n)) return false;
  PredicateDescriptor d;
  d.conjuncts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PredicateConjunct c;
    uint8_t residual_ok = 0;
    if (!r.ReadBytes(&c.column) || !r.ReadBytes(&c.op) ||
        !r.ReadU8(&residual_ok) || !r.ReadValue(&c.value)) {
      return false;
    }
    c.residual_ok = residual_ok != 0;
    d.conjuncts.push_back(std::move(c));
  }
  if (!r.ReadBytes(&d.pushed_column)) return false;
  if (!r.ReadI64(&d.scan_key_limit)) return false;
  if (r.pos != bytes.size()) return false;
  *out = std::move(d);
  return true;
}

std::string MaterialisationStoreKey(const std::string& base_key,
                                    const std::string& descriptor_bytes) {
  std::string out = std::to_string(base_key.size());
  out.push_back(':');
  out += base_key;
  out += descriptor_bytes;
  return out;
}

std::string MaterialisationCache::BaseKey(const catalog::TableDef& def,
                                          const ExecutionOptions& options,
                                          const std::string& model_name) {
  std::ostringstream os;
  os << "table=" << def.name << kSep << "key=" << def.key_column << kSep
     << "entity=" << def.entity_type << kSep << "model=" << model_name
     << kSep;
  // Column definitions feed the prompts (descriptions) and the cleaning
  // layer (types), so a redefined catalog must land in a new entry.
  os << "cols=";
  for (const catalog::ColumnDef& c : def.columns) {
    os << c.name << kSep << static_cast<int>(c.type) << kSep
       << c.description << kSep;
  }
  os << "verify=" << (options.verify_cells ? 1 : 0) << kSep
     << "clean=" << (options.enable_cleaning ? 1 : 0) << kSep
     << "domains=" << (options.enforce_domains ? 1 : 0) << kSep
     << "pages=" << options.max_scan_pages;
  return os.str();
}

std::optional<Relation> MaterialisationCache::Lookup(
    const std::string& base_key, const PredicateDescriptor& descriptor,
    const catalog::TableDef& def,
    const std::vector<const catalog::ColumnDef*>& needed_columns,
    const std::string& alias, MaterialisationLookupInfo* info) {
  if (info != nullptr) *info = MaterialisationLookupInfo{};
  PredicateDescriptor query = descriptor;
  query.Canonicalise();
  const std::string query_bytes = query.Encode();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;

  // Map each needed column onto an entry's layout (key at 0, then
  // entry.columns); a missing column disqualifies the entry.
  auto cover_columns = [&](const Entry& entry,
                           std::vector<size_t>* source_index) {
    source_index->clear();
    source_index->reserve(needed_columns.size());
    for (const catalog::ColumnDef* col : needed_columns) {
      auto it =
          std::find(entry.columns.begin(), entry.columns.end(), col->name);
      if (it == entry.columns.end()) return false;
      source_index->push_back(
          1 + static_cast<size_t>(it - entry.columns.begin()));
    }
    return true;
  };
  // A residual conjunct needs its column's values in the entry: the key
  // (slot 0) or a materialised column (slot 1 + i).
  auto locate_residual = [&](const Entry& entry,
                             const std::vector<const PredicateConjunct*>& res,
                             std::vector<std::pair<size_t, const PredicateConjunct*>>*
                                 located) {
    located->clear();
    located->reserve(res.size());
    for (const PredicateConjunct* c : res) {
      if (EqualsIgnoreCase(c->column, def.key_column)) {
        located->emplace_back(0, c);
        continue;
      }
      bool found = false;
      for (size_t i = 0; i < entry.columns.size(); ++i) {
        if (EqualsIgnoreCase(entry.columns[i], c->column)) {
          located->emplace_back(1 + i, c);
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };

  Entry* chosen = nullptr;
  bool exact = false;
  std::vector<size_t> source_index;
  std::vector<std::pair<size_t, const PredicateConjunct*>> residual;

  // Pass 1: exact descriptor match (canonical bytes equal).
  for (Entry& entry : entries_) {
    if (entry.base_key != base_key) continue;
    if (entry.descriptor_bytes != query_bytes) continue;
    if (!cover_columns(entry, &source_index)) continue;
    chosen = &entry;
    exact = true;
    break;
  }
  // Pass 2: predicate subsumption — an entry cached under a weaker
  // filter whose residual we can legally re-check in memory.
  if (chosen == nullptr) {
    std::vector<const PredicateConjunct*> res;
    for (Entry& entry : entries_) {
      if (entry.base_key != base_key) continue;
      if (entry.descriptor_bytes == query_bytes) continue;
      if (!ComputeSubsumption(entry.descriptor, query, &res)) continue;
      if (!cover_columns(entry, &source_index)) continue;
      if (!locate_residual(entry, res, &residual)) continue;
      chosen = &entry;
      break;
    }
  }
  if (chosen == nullptr) return std::nullopt;

  Entry& entry = *chosen;
  entry.last_used = ++tick_;
  ++stats_.hits;
  if (exact) {
    ++stats_.exact_hits;
  } else {
    ++stats_.predicate_subsumption_hits;
  }
  if (needed_columns.size() < entry.columns.size()) {
    ++stats_.subsumption_hits;
  }
  if (entry.from_store) ++stats_.store_hits;
  if (sink_ != nullptr) sink_->OnHit(entry.base_key, entry.descriptor_bytes);

  // Rebuild the relation in the requester's shape: key + needed
  // columns, qualified with its alias.
  auto key_def = def.FindColumn(def.key_column);
  Schema schema;
  schema.AddColumn(Column(
      def.key_column,
      key_def.ok() ? key_def.value()->type : DataType::kString, alias));
  for (const catalog::ColumnDef* col : needed_columns) {
    schema.AddColumn(Column(col->name, col->type, alias));
  }
  Relation rel(std::move(schema));
  int64_t rows_before = 0;
  for (const Tuple& row : entry.rows) {
    ++rows_before;
    bool keep = true;
    for (const auto& [idx, conjunct] : residual) {
      if (!ResidualHolds(row[idx], *conjunct)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    Tuple out;
    out.reserve(1 + source_index.size());
    out.push_back(row[0]);
    for (size_t idx : source_index) out.push_back(row[idx]);
    rel.AddRowUnchecked(std::move(out));
  }
  if (info != nullptr) {
    info->hit = true;
    info->exact = exact;
    info->predicate_subsumed = !exact;
    info->column_subsumed = needed_columns.size() < entry.columns.size();
    info->from_store = entry.from_store;
    info->residual_conjuncts = static_cast<int>(residual.size());
    info->residual.reserve(residual.size());
    for (const auto& [idx, conjunct] : residual) {
      (void)idx;
      info->residual.push_back(*conjunct);
    }
    info->rows_before_residual = rows_before;
    info->rows_after_residual = static_cast<int64_t>(rel.NumRows());
  }
  return rel;
}

void MaterialisationCache::Insert(
    const std::string& base_key, const PredicateDescriptor& descriptor,
    const std::vector<const catalog::ColumnDef*>& columns,
    const Relation& rel) {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const catalog::ColumnDef* col : columns) names.push_back(col->name);
  PredicateDescriptor canonical = descriptor;
  canonical.Canonicalise();
  std::string bytes = canonical.Encode();

  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.base_key != base_key || entry.descriptor_bytes != bytes) {
      continue;
    }
    bool entry_subsumes_new =
        std::all_of(names.begin(), names.end(), [&](const std::string& n) {
          return std::find(entry.columns.begin(), entry.columns.end(), n) !=
                 entry.columns.end();
        });
    if (entry_subsumes_new) {
      // Already covered by an equal or wider entry: just refresh it.
      entry.last_used = ++tick_;
      return;
    }
    bool new_subsumes_entry = std::all_of(
        entry.columns.begin(), entry.columns.end(),
        [&](const std::string& n) {
          return std::find(names.begin(), names.end(), n) != names.end();
        });
    if (new_subsumes_entry) {
      // Widest materialisation wins: replace in place. The replacement
      // was computed this process, so it loses any from_store mark.
      entry.columns = std::move(names);
      entry.rows = rel.rows();
      entry.last_used = ++tick_;
      entry.from_store = false;
      ++stats_.insertions;
      if (sink_ != nullptr) {
        sink_->OnInsert(entry.base_key, entry.descriptor_bytes, entry.columns,
                        entry.rows);
      }
      return;
    }
    // Overlapping but incomparable column sets coexist as separate
    // entries (each can still serve its own subsets).
  }
  Entry entry;
  entry.base_key = base_key;
  entry.descriptor = std::move(canonical);
  entry.descriptor_bytes = std::move(bytes);
  entry.columns = std::move(names);
  entry.rows = rel.rows();
  entry.last_used = ++tick_;
  entries_.push_back(std::move(entry));
  ++stats_.insertions;
  if (sink_ != nullptr) {
    const Entry& added = entries_.back();
    sink_->OnInsert(added.base_key, added.descriptor_bytes, added.columns,
                    added.rows);
  }
  EvictBeyondCapLocked();
}

void MaterialisationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  if (sink_ != nullptr) sink_->OnClear();
}

void MaterialisationCache::WarmStart(const std::string& base_key,
                                     const std::string& descriptor_bytes,
                                     const std::vector<std::string>& columns,
                                     std::vector<Tuple> rows) {
  PredicateDescriptor descriptor;
  if (!PredicateDescriptor::Decode(descriptor_bytes, &descriptor)) return;
  descriptor.Canonicalise();
  std::string bytes = descriptor.Encode();

  std::lock_guard<std::mutex> lock(mu_);
  // The store keeps one record per fingerprint (widest wins on its side
  // too), so a duplicate only appears when warm-starting twice; replace
  // rather than stack.
  for (Entry& entry : entries_) {
    if (entry.base_key != base_key || entry.descriptor_bytes != bytes) {
      continue;
    }
    entry.columns = columns;
    entry.rows = std::move(rows);
    entry.last_used = ++tick_;
    entry.from_store = true;
    return;
  }
  Entry entry;
  entry.base_key = base_key;
  entry.descriptor = std::move(descriptor);
  entry.descriptor_bytes = std::move(bytes);
  entry.columns = columns;
  entry.rows = std::move(rows);
  entry.last_used = ++tick_;
  entry.from_store = true;
  entries_.push_back(std::move(entry));
  EvictBeyondCapLocked();
}

void MaterialisationCache::SetSink(MaterialisationSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

size_t MaterialisationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MaterialisationCacheStats MaterialisationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MaterialisationCache::EvictBeyondCapLocked() {
  while (entries_.size() > max_entries_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
    ++stats_.evictions;
  }
}

}  // namespace galois::core
