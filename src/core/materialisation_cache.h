#ifndef GALOIS_CORE_MATERIALISATION_CACHE_H_
#define GALOIS_CORE_MATERIALISATION_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/options.h"
#include "llm/prompt.h"
#include "types/relation.h"

namespace galois::core {

/// Counters exposed by MaterialisationCache::stats(); plain data, taken
/// as a consistent snapshot under the cache mutex.
struct MaterialisationCacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;              // total table-level hits (incl. below)
  int64_t subsumption_hits = 0;  // served by projecting a wider entry
  int64_t store_hits = 0;        // hits served by warm-started entries
  int64_t insertions = 0;
  int64_t evictions = 0;
};

/// Persistence hook: a sink observing the cache's mutations so an
/// on-disk store (store::ResultStore, adapted in the API layer — core
/// stays independent of the store) can journal them. Callbacks run under
/// the cache mutex: they must be quick and must never call back into the
/// cache.
class MaterialisationSink {
 public:
  virtual ~MaterialisationSink() = default;

  /// A new or widened entry landed: `rows` are key-first in `columns`
  /// (non-key names, def order) order.
  virtual void OnInsert(const std::string& fingerprint,
                        const std::vector<std::string>& columns,
                        const std::vector<Tuple>& rows) = 0;

  /// An entry served a lookup (recency signal for the store's LRU).
  virtual void OnHit(const std::string& fingerprint) = 0;

  /// Clear() dropped everything.
  virtual void OnClear() = 0;
};

/// Cross-query cache of materialised LLM base relations — the reuse layer
/// between queries that PromptCache provides between prompts (both are
/// Section 6 "physical plan optimisation" instances). Where PromptCache
/// saves one round trip per repeated prompt text, this cache saves the
/// *entire* scan / filter / attribute / critic phase tree of a table
/// whose materialisation was already computed: a warm hit performs zero
/// LLM round trips.
///
/// Entries are keyed by a fingerprint of everything that can change the
/// materialised bytes: the table definition identity, the filters pushed
/// to the LLM (in plan order), whether the first filter was merged into
/// the scan prompt, the result-affecting ExecutionOptions (verify_cells,
/// cleaning, domains, max_scan_pages) and the model name. Dispatch-only
/// knobs (batch_prompts, max_batch_size, parallel_batches,
/// pipeline_phases) are deliberately excluded — they never change
/// results, so a sequential run can serve a pipelined one and vice
/// versa.
///
/// Column subsumption: an entry also records *which* non-key columns it
/// materialised. A lookup needing a subset of a cached entry's columns is
/// served by projection — the wider materialisation subsumes the narrower
/// one because surviving keys depend only on the scan and filters, and
/// cell values are pure per (key, attribute) for deterministic models.
/// That determinism assumption is the same one PromptCache relies on; a
/// deployment over a sampling model would scope the cache to one session
/// the same way it would scope the prompt cache.
///
/// Invalidation rules (see also docs/ARCHITECTURE.md):
///  * provenance runs bypass the cache entirely (a hit could not replay
///    per-cell prompt/completion traces), so record_provenance acts as a
///    per-query off switch;
///  * entries are evicted least-recently-used beyond `max_entries`;
///  * Clear() drops everything (the shell's `.cache clear`);
///  * a model/catalog change shows up in the fingerprint, so stale
///    entries are never served, only orphaned until evicted.
///
/// Thread-safe: all operations take an internal mutex, so one cache may
/// be shared by executors running on different threads.
class MaterialisationCache {
 public:
  explicit MaterialisationCache(size_t max_entries = 64)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Fingerprint of one table materialisation under `options` against
  /// `model_name`. `filters` are the predicates executed via the LLM in
  /// plan order; `first_filter_pushed` records whether filters[0] was
  /// merged into the scan prompt (pushed and checked-per-key scans
  /// answer differently on noisy models). `scan_key_limit` is the LIMIT-
  /// derived paging bound (-1 unbounded): a bounded scan materialises a
  /// prefix of the table, which must never be served to an unbounded (or
  /// differently-bounded) query.
  static std::string Fingerprint(
      const catalog::TableDef& def,
      const std::vector<llm::PromptFilter>& filters,
      bool first_filter_pushed, const ExecutionOptions& options,
      const std::string& model_name, int64_t scan_key_limit = -1);

  /// Returns the cached materialisation for `fingerprint` projected to
  /// key + `needed_columns` (def order) and qualified with `alias`, or
  /// nullopt. Serves exact matches and wider entries (subsumption).
  /// `served_from_store`, when non-null, is set to whether the serving
  /// entry was warm-started from the persistent store (false on a miss).
  std::optional<Relation> Lookup(
      const std::string& fingerprint, const catalog::TableDef& def,
      const std::vector<const catalog::ColumnDef*>& needed_columns,
      const std::string& alias, bool* served_from_store = nullptr);

  /// Memoises `rel`, a relation of key + `columns` (in that order) as
  /// materialised for `fingerprint`. An existing entry that already
  /// subsumes `columns` is refreshed instead; an existing narrower entry
  /// is replaced (widest wins). Evicts LRU entries beyond max_entries.
  void Insert(const std::string& fingerprint,
              const std::vector<const catalog::ColumnDef*>& columns,
              const Relation& rel);

  /// Drops every entry; stats are untouched.
  void Clear();

  /// Seeds one entry recovered from the persistent store: inserted with
  /// `from_store` set (so hits on it count as store_hits) and WITHOUT
  /// notifying the sink — the record is already on disk. Feed entries
  /// LRU-first (ResultStore::ForEachMaterialisation does) so eviction
  /// beyond max_entries drops the stalest first.
  void WarmStart(const std::string& fingerprint,
                 const std::vector<std::string>& columns,
                 std::vector<Tuple> rows);

  /// Attaches (or, with null, detaches) the persistence sink. The sink
  /// must outlive the cache or be detached first; attach after warm-
  /// starting, so recovered entries are not re-journaled. One sink at a
  /// time: a borrowed cache shared by several Databases may be persisted
  /// by at most one of them.
  void SetSink(MaterialisationSink* sink);

  size_t size() const;
  MaterialisationCacheStats stats() const;

 private:
  struct Entry {
    std::string fingerprint;
    std::vector<std::string> columns;  // non-key column names, def order
    std::vector<Tuple> rows;           // key first, then `columns`
    uint64_t last_used = 0;
    bool from_store = false;  // warm-started, not computed this process
  };

  void EvictBeyondCapLocked();

  mutable std::mutex mu_;
  const size_t max_entries_;
  uint64_t tick_ = 0;     // guarded by mu_
  std::vector<Entry> entries_;  // guarded by mu_; linear scan is fine at
                                // the default cap
  MaterialisationCacheStats stats_;  // guarded by mu_
  MaterialisationSink* sink_ = nullptr;  // guarded by mu_
};

}  // namespace galois::core

#endif  // GALOIS_CORE_MATERIALISATION_CACHE_H_
