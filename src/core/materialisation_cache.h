#ifndef GALOIS_CORE_MATERIALISATION_CACHE_H_
#define GALOIS_CORE_MATERIALISATION_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "core/options.h"
#include "types/relation.h"
#include "types/value.h"

namespace galois::core {

/// One pushed WHERE conjunct as recorded in a cache entry's predicate
/// descriptor: `column op value` executed through the LLM. `residual_ok`
/// is the planner's legality verdict: whether the engine may re-evaluate
/// this conjunct over materialised cell values (plain comparison
/// operators only — LIKE is excluded because the model's notion of
/// pattern matching is not reproducible engine-side).
struct PredicateConjunct {
  std::string column;
  std::string op;  // =, !=, <, <=, >, >=, LIKE
  Value value;
  bool residual_ok = false;

  /// Same (column, op, literal) triple — the identical-conjunct test
  /// used by both canonicalisation and the subsumption rule.
  bool SameShape(const PredicateConjunct& other) const {
    return column == other.column && op == other.op && value == other.value;
  }
};

/// The structured predicate half of a materialisation cache key: the
/// conjuncts the planner bound to one LLM scan, plus the two scan-shape
/// facts that decide what the materialised rows *are* (which conjunct
/// was merged into the scan prompt, and whether paging was LIMIT-
/// bounded). The other half — table def, result-affecting options,
/// model — lives in MaterialisationCache::BaseKey(); splitting the old
/// flat fingerprint this way is what lets a lookup reason about
/// predicate containment instead of byte equality.
struct PredicateDescriptor {
  /// Pushed conjuncts in canonical order (call Canonicalise()).
  std::vector<PredicateConjunct> conjuncts;
  /// Column of the conjunct merged into the scan prompt (pushdown);
  /// empty when every filter ran as a per-key check. Exact matching
  /// keeps pushed and checked-per-key scans apart (they can answer
  /// differently on noisy models); predicate subsumption deliberately
  /// ignores it under the cache's deterministic-model assumption.
  std::string pushed_column;
  /// LIMIT-derived paging bound (-1 unbounded). A bounded scan
  /// materialises a *prefix* of the table, so such entries only ever
  /// serve descriptor-identical queries; unbounded entries may serve
  /// bounded queries (the relational tail re-applies the LIMIT).
  int64_t scan_key_limit = -1;

  /// Sorts conjuncts into a canonical order (and drops exact
  /// duplicates) so `WHERE a AND b` and `WHERE b AND a` produce the
  /// same descriptor. Sound because per-key filter verdicts are
  /// independent: the surviving key set is the intersection of the
  /// per-conjunct sets regardless of plan order.
  void Canonicalise();

  /// Deterministic, unambiguous byte encoding (length-prefixed fields).
  /// Doubles as the exact-match cache key and as the wire form the
  /// persistent store journals next to each materialisation record.
  std::string Encode() const;

  /// Inverse of Encode(); returns false on truncated or foreign bytes
  /// (the caller degrades to a cache miss, never to wrong data).
  static bool Decode(std::string_view bytes, PredicateDescriptor* out);
};

/// The single-string store key for one materialisation: the base key
/// length-prefixed so (base, descriptor) pairs can never collide, then
/// the descriptor bytes. Used by the API-layer store adapter; the cache
/// itself keys entries on the pair.
std::string MaterialisationStoreKey(const std::string& base_key,
                                    const std::string& descriptor_bytes);

/// Counters exposed by MaterialisationCache::stats(); plain data, taken
/// as a consistent snapshot under the cache mutex.
struct MaterialisationCacheStats {
  int64_t lookups = 0;
  int64_t hits = 0;        // total table-level hits (exact + predicate)
  int64_t exact_hits = 0;  // descriptor matched byte-for-byte
  /// Served from an entry cached under a *weaker* filter via residual
  /// in-memory filtering (zero LLM spend).
  int64_t predicate_subsumption_hits = 0;
  int64_t subsumption_hits = 0;  // served by projecting a wider entry
  int64_t store_hits = 0;        // hits served by warm-started entries
  int64_t insertions = 0;
  int64_t evictions = 0;
};

/// Per-lookup outcome detail, filled by MaterialisationCache::Lookup so
/// the plan compiler can attribute the hit kind, bill the residual
/// filter as an operator, and thread the counters out to QueryResult.
struct MaterialisationLookupInfo {
  bool hit = false;
  bool exact = false;               // descriptor matched exactly
  bool predicate_subsumed = false;  // served via residual filtering
  bool column_subsumed = false;     // projected from a wider entry
  bool from_store = false;          // serving entry was warm-started
  /// Number of conjuncts the engine re-checked in memory (0 on exact).
  int residual_conjuncts = 0;
  /// The re-checked conjuncts themselves (for explain rendering).
  std::vector<PredicateConjunct> residual;
  int64_t rows_before_residual = 0;
  int64_t rows_after_residual = 0;
};

/// Persistence hook: a sink observing the cache's mutations so an
/// on-disk store (store::ResultStore, adapted in the API layer — core
/// stays independent of the store) can journal them. Callbacks run under
/// the cache mutex: they must be quick and must never call back into the
/// cache. `descriptor` is PredicateDescriptor::Encode() bytes.
class MaterialisationSink {
 public:
  virtual ~MaterialisationSink() = default;

  /// A new or widened entry landed: `rows` are key-first in `columns`
  /// (non-key names, def order) order.
  virtual void OnInsert(const std::string& base_key,
                        const std::string& descriptor,
                        const std::vector<std::string>& columns,
                        const std::vector<Tuple>& rows) = 0;

  /// An entry served a lookup (recency signal for the store's LRU).
  virtual void OnHit(const std::string& base_key,
                     const std::string& descriptor) = 0;

  /// Clear() dropped everything.
  virtual void OnClear() = 0;
};

/// Cross-query cache of materialised LLM base relations — the reuse layer
/// between queries that PromptCache provides between prompts (both are
/// Section 6 "physical plan optimisation" instances). Where PromptCache
/// saves one round trip per repeated prompt text, this cache saves the
/// *entire* scan / filter / attribute / critic phase tree of a table
/// whose materialisation was already computed: a warm hit performs zero
/// LLM round trips.
///
/// Entries are keyed by a (base key, predicate descriptor) pair. The
/// base key covers everything filter-independent that can change the
/// materialised bytes: table definition identity, the result-affecting
/// ExecutionOptions (verify_cells, cleaning, domains, max_scan_pages)
/// and the model name. Dispatch-only knobs (batch_prompts,
/// max_batch_size, parallel_batches, pipeline_phases, prefetch_pages)
/// are deliberately excluded — they never change results, so a
/// sequential run can serve a pipelined or prefetched one and vice
/// versa. The descriptor covers the pushed conjuncts in canonical
/// order, which conjunct (if any) was merged into the scan prompt, and
/// the LIMIT-derived paging bound.
///
/// Predicate subsumption: a query's pushed filter F' is served by an
/// entry cached under filter F when F' implies F — every conjunct of F
/// is either identical to a conjunct of F' or contains (as an interval
/// over int/double/date literals) the intersection of F''s bounds on
/// that column. The rows of such an entry are a superset of the query's
/// rows, so the engine applies the *residual* — the conjuncts of F' not
/// identical to a conjunct of F — in memory, mirroring the simulated
/// model's deterministic comparison semantics (Value::Compare, with
/// case-insensitive string equality for `=` and NULL cells dropping the
/// row exactly as a failed per-key check would). A residual conjunct is
/// only legal when the planner marked it residually checkable and its
/// column's values are present in the entry; otherwise that entry
/// degrades to a miss. String-typed conjuncts imply only via identical
/// conjuncts (the model's `=` is case-insensitive, so byte intervals
/// are unsound); LIKE likewise. Entries with a scan_key_limit are table
/// *prefixes* and never serve anything but a descriptor-identical
/// query.
///
/// Column subsumption: an entry also records *which* non-key columns it
/// materialised. A lookup needing a subset of a cached entry's columns is
/// served by projection — the wider materialisation subsumes the narrower
/// one because surviving keys depend only on the scan and filters, and
/// cell values are pure per (key, attribute) for deterministic models.
/// That determinism assumption is the same one PromptCache relies on —
/// and the same one predicate subsumption rests on (a pushed and a
/// checked conjunct answer identically on a deterministic model); a
/// deployment over a sampling model would scope the cache to one session
/// the same way it would scope the prompt cache.
///
/// Invalidation rules (see also docs/ARCHITECTURE.md):
///  * provenance runs bypass the cache entirely (a hit could not replay
///    per-cell prompt/completion traces), so record_provenance acts as a
///    per-query off switch;
///  * entries are evicted least-recently-used beyond `max_entries`;
///  * Clear() drops everything (the shell's `.cache clear`);
///  * a model/catalog change shows up in the base key, so stale
///    entries are never served, only orphaned until evicted.
///
/// Thread-safe: all operations take an internal mutex, so one cache may
/// be shared by executors running on different threads.
class MaterialisationCache {
 public:
  explicit MaterialisationCache(size_t max_entries = 64)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// The filter-independent half of the cache key: table definition
  /// (names, types, descriptions feed the prompts and the cleaning
  /// layer), result-affecting options and the model name.
  static std::string BaseKey(const catalog::TableDef& def,
                             const ExecutionOptions& options,
                             const std::string& model_name);

  /// Returns the cached materialisation serving (base_key, descriptor)
  /// projected to key + `needed_columns` (def order) and qualified with
  /// `alias`, or nullopt. Serves exact descriptor matches first, then
  /// predicate-subsumed entries (residual conjuncts applied in memory),
  /// projecting wider column sets in either case. `info`, when non-null,
  /// receives the hit kind and residual row counts (zeroed on a miss).
  std::optional<Relation> Lookup(
      const std::string& base_key, const PredicateDescriptor& descriptor,
      const catalog::TableDef& def,
      const std::vector<const catalog::ColumnDef*>& needed_columns,
      const std::string& alias, MaterialisationLookupInfo* info = nullptr);

  /// Memoises `rel`, a relation of key + `columns` (in that order) as
  /// materialised under (base_key, descriptor). An existing entry for
  /// the same key pair that already subsumes `columns` is refreshed
  /// instead; an existing narrower entry is replaced (widest wins).
  /// Evicts LRU entries beyond max_entries.
  void Insert(const std::string& base_key,
              const PredicateDescriptor& descriptor,
              const std::vector<const catalog::ColumnDef*>& columns,
              const Relation& rel);

  /// Drops every entry; stats are untouched.
  void Clear();

  /// Seeds one entry recovered from the persistent store: inserted with
  /// `from_store` set (so hits on it count as store_hits) and WITHOUT
  /// notifying the sink — the record is already on disk.
  /// `descriptor_bytes` must be PredicateDescriptor::Encode() output;
  /// undecodable bytes drop the record (a miss, never wrong data). Feed
  /// entries LRU-first (ResultStore::ForEachMaterialisation does) so
  /// eviction beyond max_entries drops the stalest first.
  void WarmStart(const std::string& base_key,
                 const std::string& descriptor_bytes,
                 const std::vector<std::string>& columns,
                 std::vector<Tuple> rows);

  /// Attaches (or, with null, detaches) the persistence sink. The sink
  /// must outlive the cache or be detached first; attach after warm-
  /// starting, so recovered entries are not re-journaled. One sink at a
  /// time: a borrowed cache shared by several Databases may be persisted
  /// by at most one of them.
  void SetSink(MaterialisationSink* sink);

  size_t size() const;
  MaterialisationCacheStats stats() const;

 private:
  struct Entry {
    std::string base_key;
    PredicateDescriptor descriptor;  // canonical
    std::string descriptor_bytes;    // descriptor.Encode(), cached
    std::vector<std::string> columns;  // non-key column names, def order
    std::vector<Tuple> rows;           // key first, then `columns`
    uint64_t last_used = 0;
    bool from_store = false;  // warm-started, not computed this process
  };

  void EvictBeyondCapLocked();

  mutable std::mutex mu_;
  const size_t max_entries_;
  uint64_t tick_ = 0;     // guarded by mu_
  std::vector<Entry> entries_;  // guarded by mu_; linear scan is fine at
                                // the default cap
  MaterialisationCacheStats stats_;  // guarded by mu_
  MaterialisationSink* sink_ = nullptr;  // guarded by mu_
};

}  // namespace galois::core

#endif  // GALOIS_CORE_MATERIALISATION_CACHE_H_
