#ifndef GALOIS_CORE_PROVENANCE_H_
#define GALOIS_CORE_PROVENANCE_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace galois::core {

/// Provenance of one materialised cell (Section 6, "Provenance": "it is
/// not possible to judge correctness without the origin of the
/// information"). Galois can record, for every cell it retrieves from the
/// model, the exact prompt and completion that produced it, plus the
/// critic's verdict when verification is enabled.
struct CellProvenance {
  std::string table_alias;
  std::string key;
  std::string column;
  std::string prompt;
  std::string completion;
  Value value;            // the cleaned cell that entered the relation
  bool verified = false;  // a critic prompt was issued
  bool rejected = false;  // the critic rejected the value (cell nulled)

  /// One-line rendering for logs/reports.
  std::string ToString() const;
};

/// Provenance of one leaf key scan.
struct ScanProvenance {
  std::string table_alias;
  int pages = 0;       // scan prompts issued (including the terminal one)
  size_t keys = 0;     // keys retrieved
  size_t filtered = 0; // keys dropped by LLM filter checks
};

/// Full trace of one GaloisExecutor::Execute call.
struct ExecutionTrace {
  std::vector<ScanProvenance> scans;
  std::vector<CellProvenance> cells;

  void Clear() {
    scans.clear();
    cells.clear();
  }

  size_t NumRejectedCells() const;

  /// Human-readable report (truncated to `max_cells` cell entries).
  std::string ToString(size_t max_cells = 20) const;
};

}  // namespace galois::core

#endif  // GALOIS_CORE_PROVENANCE_H_
