#ifndef GALOIS_CORE_LLM_OPERATORS_H_
#define GALOIS_CORE_LLM_OPERATORS_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/options.h"
#include "core/provenance.h"
#include "llm/batch_scheduler.h"
#include "llm/language_model.h"

namespace galois::core {

/// The physical operators that access the LLM (Section 4, Figure 3).
/// These functions are the prompt-issuing leaves of the Galois plan; the
/// relational part of the plan runs on the classic engine.
///
/// Every fan-out operator dispatches its prompts through one
/// llm::BatchScheduler per phase: batched (CompleteBatch round trips split
/// by ExecutionOptions::max_batch_size, up to
/// ExecutionOptions::parallel_batches in flight concurrently) when
/// options.batch_prompts is on, sequential Complete calls otherwise. All
/// modes issue the same deduplicated prompt set and return identical
/// results; only the round trips — and, with parallelism, the wall-clock
/// time — differ. Each scheduler carries a phase label
/// ("filter-check:population") so a failed round trip names the phase and
/// chunk in its error message.

/// The scheduler dispatch policy implied by the execution options.
llm::BatchPolicy BatchPolicyFor(const ExecutionOptions& options);

/// Paging accounting of one LlmKeyScan: every page bought (round trip
/// issued), how many of those were dispatched speculatively before the
/// previous page's answer had been consumed, and how many were bought
/// past the page that terminated the scan (speculation overshoot — those
/// completions are still joined and land in the prompt-cache layer, so
/// a later scan of the same table gets them for free).
struct KeyScanStats {
  int pages = 0;
  int prefetched = 0;
  int overfetched = 0;
};

/// Leaf data access: retrieves the set of key-attribute values of `table`
/// by iterating "Return more results" prompts until the model stops
/// producing new keys (workflow: "we iterate with the prompt until we stop
/// getting new results"). An optional `filter` is pushed into the scan
/// prompt (Section 6 optimisation). Keys are deduplicated, first-seen
/// order. Page prompts are independent texts (page k+1's prompt does not
/// embed page k's answer), but the *termination decision* is sequential,
/// so by default the scan issues them through the scheduler one at a
/// time. With options.prefetch_pages > 0 it instead keeps up to that
/// many further page round trips speculatively in flight
/// (BatchScheduler::RunAsync single-prompt phases, joined in page
/// order): the surviving keys, pages bought and CostMeter are identical
/// whenever the scan terminates at the max_scan_pages cap, and when the
/// model terminates the scan early the already-speculated pages are
/// joined (they bill, and their completions stay in any prompt-cache
/// decorator) and reported as overfetched. `key_limit >= 0` stops paging
/// as soon as that many keys have been scanned (the plan compiler sets
/// it when a LIMIT provably bounds the scan): the returned prefix may
/// exceed the limit within the last page but no further page round trips
/// are issued — prefetch is disabled on bounded scans to preserve
/// exactly that guarantee.
Result<std::vector<std::string>> LlmKeyScan(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const ExecutionOptions& options,
    const std::optional<llm::PromptFilter>& filter = std::nullopt,
    KeyScanStats* stats = nullptr, int64_t key_limit = -1);

/// Attribute retrieval node: fetches `column` of the entity identified by
/// `key` and converts the completion to a typed cell via the cleaning
/// layer (or stores the raw string when cleaning is disabled). When
/// `provenance` is non-null the raw prompt/completion are recorded there.
Result<Value> LlmGetAttribute(llm::LanguageModel* model,
                              const catalog::TableDef& table,
                              const std::string& key,
                              const catalog::ColumnDef& column,
                              const ExecutionOptions& options,
                              CellProvenance* provenance = nullptr);

/// Attribute-retrieval phase: fetches `column` for every key in `keys`
/// through the batch scheduler. Semantically identical to calling
/// LlmGetAttribute per key. `provenances`, when non-null, receives one
/// record per key.
Result<std::vector<Value>> LlmGetAttributeBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const ExecutionOptions& options,
    std::vector<CellProvenance>* provenances = nullptr);

/// An in-flight attribute-retrieval phase started by
/// LlmGetAttributeBatchStart. Join blocks for the dispatched prompts and
/// then cleans the completions into typed cells — the result (values,
/// provenance records, errors) is identical to what the synchronous
/// LlmGetAttributeBatch would have returned for the same arguments. Join
/// must be called at most once. The phase owns copies of everything it
/// needs except the model, table and column, which must outlive it.
class AttributePhase {
 public:
  AttributePhase() = default;
  bool valid() const { return handle_.valid(); }
  Result<std::vector<Value>> Join(
      std::vector<CellProvenance>* provenances = nullptr);

 private:
  friend AttributePhase LlmGetAttributeBatchStart(
      llm::LanguageModel* model, const catalog::TableDef& table,
      const std::vector<std::string>& keys,
      const catalog::ColumnDef& column, const ExecutionOptions& options);

  llm::PhaseHandle handle_;
  const catalog::TableDef* table_ = nullptr;
  const catalog::ColumnDef* column_ = nullptr;
  std::vector<std::string> keys_;
  std::vector<std::string> prompt_texts_;  // for provenance records
  ExecutionOptions options_;
};

/// Async counterpart of LlmGetAttributeBatch: builds the same prompt set
/// and dispatches it as a phase future (BatchScheduler::FlushAsync), so
/// several columns retrieve concurrently. Collect the values with
/// AttributePhase::Join.
AttributePhase LlmGetAttributeBatchStart(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const ExecutionOptions& options);

/// An in-flight verdict phase (critic verification) started by
/// LlmVerifyCellBatchStart; Join returns the same 1/0/-1 verdict vector
/// as the synchronous LlmVerifyCellBatch. Join at most once.
class VerdictPhase {
 public:
  VerdictPhase() = default;
  bool valid() const { return handle_.valid() || !error_.ok(); }
  Result<std::vector<int>> Join();

 private:
  friend VerdictPhase LlmVerifyCellBatchStart(
      llm::LanguageModel* model, const catalog::TableDef& table,
      const std::vector<std::string>& keys,
      const catalog::ColumnDef& column,
      const std::vector<Value>& claimed, const ExecutionOptions& options);

  llm::PhaseHandle handle_;
  Status error_ = Status::OK();  // argument errors surfaced at Join
};

/// Async counterpart of LlmVerifyCellBatch: dispatches the critic prompts
/// as a phase future so a column's verification overlaps other columns'
/// retrievals. Argument errors (keys/claimed size mismatch) are deferred
/// to Join, keeping the error surface identical to the sync operator.
VerdictPhase LlmVerifyCellBatchStart(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const std::vector<Value>& claimed,
    const ExecutionOptions& options);

/// Filter-check phase over many keys; returns one verdict (1/0/-1) per
/// key, in order.
Result<std::vector<int>> LlmFilterCheckBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys, const llm::PromptFilter& filter,
    const ExecutionOptions& options);

/// Critic verification (Section 6): asks a second prompt whether the
/// claimed value is true. Returns 1 (confirmed), 0 (rejected) or -1
/// (critic answered "Unknown" — treated as confirmation by callers, the
/// critic abstains).
Result<int> LlmVerifyCell(llm::LanguageModel* model,
                          const catalog::TableDef& table,
                          const std::string& key,
                          const catalog::ColumnDef& column,
                          const Value& claimed);

/// Critic-verification phase: one verdict per (keys[i], claimed[i]) pair
/// for `column`, dispatched through the batch scheduler. `keys` and
/// `claimed` must have equal length.
Result<std::vector<int>> LlmVerifyCellBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const std::vector<Value>& claimed,
    const ExecutionOptions& options);

/// Selection check: asks whether `filter` holds for `key`. Returns 1/0 for
/// yes/no and -1 when the model answers "Unknown" (callers drop unknown
/// keys, matching the closed-world behaviour of a selection).
Result<int> LlmFilterCheck(llm::LanguageModel* model,
                           const catalog::TableDef& table,
                           const std::string& key,
                           const llm::PromptFilter& filter);

}  // namespace galois::core

#endif  // GALOIS_CORE_LLM_OPERATORS_H_
