#include "core/physical_plan.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/llm_operators.h"
#include "core/materialisation_cache.h"
#include "engine/operators.h"

namespace galois::core {

namespace {

using planner::PlanNode;
using planner::PlanOp;

/// The non-NULL cells of one retrieved column, in row order — the input
/// of that column's critic-verification phase.
struct CellSelection {
  std::vector<size_t> idx;        // row indices into the column
  std::vector<std::string> keys;  // surviving key per cell
  std::vector<Value> values;      // claimed value per cell
};

CellSelection SelectNonNullCells(
    const std::vector<Value>& values,
    const std::vector<std::string>& surviving) {
  CellSelection sel;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    sel.idx.push_back(i);
    sel.keys.push_back(surviving[i]);
    sel.values.push_back(values[i]);
  }
  return sel;
}

/// Applies one column's critic verdicts (shared by the sequential and
/// pipelined retrieval paths, so their rejection/provenance semantics
/// cannot diverge): rejected cells become NULL — the critic treats them
/// as hallucinations — and the provenance records, when kept, are tagged.
void ApplyVerdicts(const std::vector<int>& verdicts,
                   const CellSelection& cells, std::vector<Value>* values,
                   std::vector<CellProvenance>* provenances) {
  for (size_t v = 0; v < cells.idx.size(); ++v) {
    size_t i = cells.idx[v];
    if (provenances != nullptr) (*provenances)[i].verified = true;
    if (verdicts[v] == 0) {
      (*values)[i] = Value::Null();
      if (provenances != nullptr) {
        (*provenances)[i].rejected = true;
        (*provenances)[i].value = Value::Null();
      }
    }
  }
}

/// Records an LLM operator's outcome on its DAG node: the nested tap's
/// spend, round trips derived from it (batch round trips when batching
/// was on, prompt count otherwise) and the output row count.
void FinishLlmOp(PhysicalNode* node, const llm::CostTap& tap,
                 size_t rows) {
  if (node == nullptr) return;
  node->stats.executed = true;
  node->stats.cost = tap.cost();
  node->stats.round_trips = node->stats.cost.num_batches > 0
                                ? node->stats.cost.num_batches
                                : node->stats.cost.num_prompts;
  node->stats.rows = static_cast<int64_t>(rows);
}

void FinishRelationalOp(PhysicalNode* node, size_t rows) {
  if (node == nullptr) return;
  node->stats.executed = true;
  node->stats.rows = static_cast<int64_t>(rows);
}

std::string FilterText(const llm::PromptFilter& f) {
  return f.attribute + " " + f.op + " " + f.value.ToString();
}

std::string StatsSummary(const OperatorStats& s) {
  if (s.from_cache) {
    return "cache hit: " + std::to_string(s.rows) +
           " rows, 0 round trips";
  }
  if (s.from_remote) {
    return "remote shard: " + std::to_string(s.rows) +
           " rows, 0 local round trips";
  }
  if (!s.executed) return "not executed";
  std::ostringstream os;
  os << "rows=" << s.rows;
  if (s.cost.num_prompts > 0 || s.cost.num_batches > 0) {
    os << ", round trips=" << s.round_trips
       << ", prompts=" << s.cost.num_prompts << ", tokens="
       << s.cost.prompt_tokens + s.cost.completion_tokens;
    char latency[32];
    std::snprintf(latency, sizeof(latency), "%.1f",
                  s.cost.simulated_latency_ms);
    os << ", latency=" << latency << "ms";
  }
  return os.str();
}

void RenderRec(const PhysicalNode& node, int depth,
               std::ostringstream* os) {
  *os << std::string(static_cast<size_t>(depth) * 2, ' ') << node.label
      << "  [" << StatsSummary(node.stats) << "]\n";
  for (const PhysicalNode* c : node.children) {
    RenderRec(*c, depth + 1, os);
  }
}

}  // namespace

planner::BindingOptions BindingOptionsFor(const ExecutionOptions& options) {
  planner::BindingOptions b;
  b.llm_filter_checks = options.llm_filter_checks;
  b.merge_filter_into_scan =
      options.EffectivePushdown() == PushdownPolicy::kAlways;
  b.merge_filter_auto =
      options.EffectivePushdown() == PushdownPolicy::kAuto;
  b.auto_pushdown_min_rows = options.auto_pushdown_min_rows;
  b.scan_rows_may_drop = options.verify_cells;
  return b;
}

PhysicalNode* PhysicalPlan::NewNode(std::string label) {
  nodes_.emplace_back();
  nodes_.back().label = std::move(label);
  return &nodes_.back();
}

Result<PhysicalPlan> PhysicalPlan::Compile(planner::PlanNodePtr plan,
                                           const catalog::Catalog* catalog,
                                           const ExecutionOptions& options) {
  PhysicalPlan p;
  p.plan_ = std::move(plan);
  p.catalog_ = catalog;
  p.options_ = options;
  PlanNode* root = p.plan_.get();

  // --- classify the logical tree ----------------------------------------
  // BuildLogicalPlan emits at most one of each tail operator and a
  // left-deep join tree; scans surface in FROM order under an in-order
  // walk.
  const PlanNode* where_filter = nullptr;
  const PlanNode* having_filter = nullptr;
  const PlanNode* aggregate = nullptr;
  const PlanNode* project = nullptr;
  const PlanNode* sort = nullptr;
  const PlanNode* distinct = nullptr;
  const PlanNode* limit = nullptr;
  std::vector<const PlanNode*> join_logicals;  // pre-order: topmost first
  std::vector<const PlanNode*> scans;          // FROM order
  std::map<const PlanNode*, const PlanNode*> retrieve_of;  // scan -> node
  std::function<void(const PlanNode*)> classify = [&](const PlanNode* n) {
    switch (n->op) {
      case PlanOp::kFilter:
        if (n->children[0]->op == PlanOp::kAggregate) {
          having_filter = n;
        } else {
          where_filter = n;
        }
        break;
      case PlanOp::kAggregate:
        aggregate = n;
        break;
      case PlanOp::kProject:
        project = n;
        break;
      case PlanOp::kSort:
        sort = n;
        break;
      case PlanOp::kDistinct:
        distinct = n;
        break;
      case PlanOp::kLimit:
        limit = n;
        break;
      case PlanOp::kJoin:
        join_logicals.push_back(n);
        break;
      case PlanOp::kRetrieve:
        retrieve_of[n->children[0].get()] = n;
        break;
      case PlanOp::kScan:
        scans.push_back(n);
        return;  // leaf
    }
    for (const auto& c : n->children) classify(c.get());
  };
  classify(root);

  if (project == nullptr || scans.empty()) {
    return Status::InvalidArgument(
        "physical plan: malformed logical plan (no Project/Scan)");
  }
  if (where_filter != nullptr && !where_filter->annotated) {
    return Status::InvalidArgument(
        "physical plan: logical plan was not annotated — run "
        "planner::BindPhysicalAnnotations before Compile");
  }
  if (join_logicals.size() + 1 != scans.size()) {
    return Status::InvalidArgument(
        "physical plan: join/scan count mismatch");
  }
  // Topmost join executes last: reverse into execution order.
  std::reverse(join_logicals.begin(), join_logicals.end());

  // --- compile one table group per scan ---------------------------------
  p.groups_.reserve(scans.size());
  for (const PlanNode* scan : scans) {
    TableGroup g;
    g.scan = scan;
    GALOIS_ASSIGN_OR_RETURN(g.def, catalog->GetTable(scan->table));
    g.alias = scan->alias;
    g.from_llm = scan->from_llm;
    g.key_limit = scan->scan_key_limit;
    g.push_first_filter = scan->merge_first_filter;
    for (const planner::ScanFilter& f : scan->scan_filters) {
      llm::PromptFilter filter;
      filter.attribute = f.column;
      filter.attribute_description = f.column_description;
      filter.op = f.op;
      filter.value = f.value;
      g.llm_filters.push_back(std::move(filter));
      PredicateConjunct conjunct;
      conjunct.column = f.column;
      conjunct.op = f.op;
      conjunct.value = f.value;
      conjunct.residual_ok = f.residually_checkable;
      g.descriptor.conjuncts.push_back(std::move(conjunct));
    }
    if (scan->merge_first_filter) {
      g.descriptor.pushed_column = scan->scan_filters[0].column;
    }
    g.descriptor.scan_key_limit = scan->scan_key_limit;
    g.descriptor.Canonicalise();
    auto it = retrieve_of.find(scan);
    if (it != retrieve_of.end()) {
      for (const std::string& name : it->second->columns) {
        GALOIS_ASSIGN_OR_RETURN(const catalog::ColumnDef* col,
                                g.def->FindColumn(name));
        g.needed_columns.push_back(col);
      }
    }

    // The group's operator chain, bottom-up: scan, key critic, filter
    // checks, retrieve, cell critic.
    if (!g.from_llm) {
      g.scan_node = p.NewNode("Scan[DB] " + g.def->name +
                              (g.alias != g.def->name
                                   ? " AS " + g.alias
                                   : std::string()));
      g.top = g.scan_node;
      p.groups_.push_back(std::move(g));
      continue;
    }
    {
      std::ostringstream os;
      os << "KeyScan[LLM] " << g.def->name;
      if (g.alias != g.def->name) os << " AS " << g.alias;
      os << " (key '" << g.def->key_column << "' via paged prompts";
      if (g.push_first_filter) {
        os << "; filter merged into scan prompt: "
           << FilterText(g.llm_filters[0]);
      }
      if (g.key_limit >= 0) {
        os << "; paging stops at " << g.key_limit << " keys";
      } else if (options.prefetch_pages > 0) {
        os << "; up to " << options.prefetch_pages
           << " pages prefetched speculatively";
      }
      os << ")";
      g.scan_node = p.NewNode(os.str());
    }
    g.top = g.scan_node;
    if (options.verify_cells) {
      g.key_verify_node = p.NewNode(
          "VerifyKeys " + g.alias + " (critic prompt per scanned key)");
      g.key_verify_node->children.push_back(g.top);
      g.top = g.key_verify_node;
    }
    for (size_t f = g.push_first_filter ? 1 : 0; f < g.llm_filters.size();
         ++f) {
      PhysicalNode* check = p.NewNode(
          "FilterCheck " + g.alias + "." + FilterText(g.llm_filters[f]) +
          " (one prompt per surviving key)");
      check->children.push_back(g.top);
      g.top = check;
      g.check_nodes.push_back(check);
    }
    if (!g.needed_columns.empty()) {
      std::vector<std::string> names;
      for (const catalog::ColumnDef* col : g.needed_columns) {
        names.push_back(col->name);
      }
      g.retrieve_node = p.NewNode(
          "Retrieve " + g.alias + ".{" + Join(names, ", ") +
          "} (one prompt per key per attribute)");
      g.retrieve_node->children.push_back(g.top);
      g.top = g.retrieve_node;
      if (options.verify_cells) {
        g.cell_verify_node = p.NewNode(
            "VerifyCells " + g.alias +
            " (critic prompt per non-NULL cell)");
        g.cell_verify_node->children.push_back(g.top);
        g.top = g.cell_verify_node;
      }
    }
    p.groups_.push_back(std::move(g));
  }

  // --- join chain -------------------------------------------------------
  PhysicalNode* top = p.groups_[0].top;
  for (size_t i = 0; i < join_logicals.size(); ++i) {
    const PlanNode* j = join_logicals[i];
    std::string label;
    if (!j->predicate) {
      label = "CrossJoin";
    } else if (j->join_type == sql::JoinType::kLeft) {
      label = "LeftOuterJoin ON " + j->predicate->ToString();
    } else {
      label = "NestedLoopJoin ON " + j->predicate->ToString();
    }
    PhysicalNode* node = p.NewNode(std::move(label));
    node->children.push_back(top);
    node->children.push_back(p.groups_[i + 1].top);
    p.joins_.push_back({j, node});
    top = node;
  }

  // --- relational tail --------------------------------------------------
  if (where_filter != nullptr && where_filter->residual != nullptr) {
    p.residual_ = where_filter->residual.get();
    p.filter_node_ = p.NewNode("Filter " + p.residual_->ToString());
    p.filter_node_->children.push_back(top);
    top = p.filter_node_;
  }
  if (aggregate != nullptr) {
    p.aggregate_node_ = p.NewNode(aggregate->Describe());
    p.aggregate_node_->children.push_back(top);
    top = p.aggregate_node_;
  }
  if (having_filter != nullptr) {
    p.having_node_ =
        p.NewNode("Having " + having_filter->predicate->ToString());
    p.having_node_->children.push_back(top);
    top = p.having_node_;
  }
  p.project_node_ = p.NewNode(project->Describe());
  p.project_node_->children.push_back(top);
  top = p.project_node_;
  if (sort != nullptr) {
    p.sort_node_ = p.NewNode(sort->Describe());
    p.sort_node_->children.push_back(top);
    top = p.sort_node_;
  }
  if (distinct != nullptr) {
    p.distinct_node_ = p.NewNode(distinct->Describe());
    p.distinct_node_->children.push_back(top);
    top = p.distinct_node_;
  }
  if (limit != nullptr) {
    p.limit_node_ = p.NewNode(limit->Describe());
    p.limit_node_->children.push_back(top);
    top = p.limit_node_;
    p.limit_value_ = limit->limit;
  }
  p.root_ = top;

  // The tail spec borrows the plan's expressions; the stages consume it
  // exactly like the statement-driven engine path.
  for (size_t i = 0; i < project->exprs.size(); ++i) {
    engine::SelectItemView item;
    item.expr = project->exprs[i].get();
    item.alias = i < project->columns.size() ? project->columns[i]
                                             : std::string();
    p.spec_.select.push_back(std::move(item));
  }
  if (having_filter != nullptr) {
    p.spec_.having = having_filter->predicate.get();
  }
  if (sort != nullptr) {
    for (size_t i = 0; i < sort->exprs.size(); ++i) {
      engine::OrderItemView item;
      item.expr = sort->exprs[i].get();
      item.descending =
          i < sort->descending.size() && sort->descending[i];
      p.spec_.order_by.push_back(item);
    }
  }
  if (aggregate != nullptr) {
    for (size_t g = 0; g < aggregate->group_expr_count; ++g) {
      p.spec_.group_by.push_back(aggregate->exprs[g].get());
    }
  }
  return p;
}

Result<Relation> PhysicalPlan::MaterialiseDb(TableGroup& group) {
  GALOIS_ASSIGN_OR_RETURN(const Relation* instance,
                          catalog_->GetInstance(group.def->name));
  Relation rel(group.def->ToSchema(group.alias), instance->rows());
  FinishRelationalOp(group.scan_node, rel.rows().size());
  return rel;
}

Result<std::vector<std::vector<Value>>>
PhysicalPlan::RetrieveColumnsPipelined(
    const TableGroup& group, llm::LanguageModel* attr_model,
    llm::LanguageModel* verify_model,
    const std::vector<std::string>& surviving, ExecutionTrace* trace) {
  const catalog::TableDef& def = *group.def;
  const size_t n = group.needed_columns.size();
  const bool prov = options_.record_provenance;

  // Dispatch every column's attribute phase up front; they all run
  // concurrently on the phase pool.
  std::vector<AttributePhase> attr_phases(n);
  for (size_t i = 0; i < n; ++i) {
    attr_phases[i] = LlmGetAttributeBatchStart(
        attr_model, def, surviving, *group.needed_columns[i], options_);
  }

  // Join columns in order; each column's critic-verify follow-up is
  // dispatched as soon as its values are in, overlapping later columns'
  // retrievals. The error reported is the one with the lowest rank in
  // the sequential op order (attr_0, verify_0, attr_1, ...), so the
  // pipelined and sequential paths fail identically — though, as with
  // concurrent chunk dispatch, phases already in flight when an error
  // surfaces still complete and bill. On error, this table's per-cell
  // provenance is dropped rather than partially recorded.
  std::vector<std::vector<Value>> columns(n);
  std::vector<std::vector<CellProvenance>> provenances(n);
  std::vector<VerdictPhase> verify_phases(n);
  std::vector<CellSelection> cells(n);
  Status first_error = Status::OK();
  size_t first_error_rank = 2 * n;  // past every op
  for (size_t i = 0; i < n; ++i) {
    Result<std::vector<Value>> values =
        attr_phases[i].Join(prov ? &provenances[i] : nullptr);
    if (!values.ok()) {
      if (2 * i < first_error_rank) {
        first_error = values.status();
        first_error_rank = 2 * i;
      }
      continue;
    }
    columns[i] = std::move(values).value();
    if (!options_.verify_cells || !first_error.ok()) continue;
    cells[i] = SelectNonNullCells(columns[i], surviving);
    if (!cells[i].idx.empty()) {
      verify_phases[i] = LlmVerifyCellBatchStart(
          verify_model, def, cells[i].keys, *group.needed_columns[i],
          cells[i].values, options_);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!verify_phases[i].valid()) continue;
    Result<std::vector<int>> verdicts = verify_phases[i].Join();
    if (!verdicts.ok()) {
      if (2 * i + 1 < first_error_rank) {
        first_error = verdicts.status();
        first_error_rank = 2 * i + 1;
      }
      continue;
    }
    ApplyVerdicts(*verdicts, cells[i], &columns[i],
                  prov ? &provenances[i] : nullptr);
  }
  GALOIS_RETURN_IF_ERROR(first_error);
  if (prov) {
    for (size_t i = 0; i < n; ++i) {
      for (CellProvenance& p : provenances[i]) {
        p.table_alias = group.alias;
        trace->cells.push_back(std::move(p));
      }
    }
  }
  return columns;
}

Result<Relation> PhysicalPlan::MaterialiseLlm(TableGroup& group,
                                              llm::LanguageModel* model,
                                              ExecutionTrace* trace) {
  const catalog::TableDef& def = *group.def;
  GALOIS_ASSIGN_OR_RETURN(size_t key_idx, def.KeyIndex());
  const catalog::ColumnDef& key_col = def.columns[key_idx];

  // 1. Leaf access: key scan, optionally with one pushed-down filter and
  // the LIMIT-derived paging bound (both decided by the planner).
  std::optional<llm::PromptFilter> scan_filter;
  size_t first_check = 0;
  if (group.push_first_filter) {
    scan_filter = group.llm_filters[0];
    first_check = 1;
  }
  llm::CostTap scan_tap(model);
  GALOIS_ASSIGN_OR_RETURN(
      std::vector<std::string> keys,
      LlmKeyScan(&scan_tap, def, options_, scan_filter, &group.scan_stats,
                 group.key_limit));
  FinishLlmOp(group.scan_node, scan_tap, keys.size());
  group.scan_node->stats.round_trips = group.scan_stats.pages;

  // Key-range shard slice (cluster scatter-gather): keep the contiguous
  // [n*i/c, n*(i+1)/c) run of the scanned key list. Every shard of a
  // split table runs the identical scan, so the slices partition the
  // same global key order — per-key verdicts are independent, and
  // concatenating the shard relations in slice order reproduces the
  // unsharded row order exactly.
  if (group.slice_count > 1) {
    const size_t n_keys = keys.size();
    const size_t lo = n_keys * static_cast<size_t>(group.slice_index) /
                      static_cast<size_t>(group.slice_count);
    const size_t hi = n_keys * static_cast<size_t>(group.slice_index + 1) /
                      static_cast<size_t>(group.slice_count);
    keys = std::vector<std::string>(
        std::make_move_iterator(keys.begin() + static_cast<int64_t>(lo)),
        std::make_move_iterator(keys.begin() + static_cast<int64_t>(hi)));
  }

  // 2a. Optional critic pass over the scanned keys: "Is it true that the
  // name of the country New Italy is New Italy?" rejects hallucinated
  // entities before any further prompt is spent on them. One scheduler
  // phase over all scanned keys.
  if (options_.verify_cells && !keys.empty()) {
    std::vector<Value> claimed;
    claimed.reserve(keys.size());
    for (const std::string& key : keys) {
      claimed.push_back(Value::String(key));
    }
    llm::CostTap verify_tap(model);
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmVerifyCellBatch(&verify_tap, def, keys, key_col, claimed,
                           options_));
    std::vector<std::string> confirmed;
    confirmed.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (verdicts[i] != 0) confirmed.push_back(std::move(keys[i]));
    }
    keys = std::move(confirmed);
    FinishLlmOp(group.key_verify_node, verify_tap, keys.size());
  } else if (group.key_verify_node != nullptr) {
    FinishRelationalOp(group.key_verify_node, keys.size());
  }

  // 2b. Selection: one filter-check phase per remaining predicate, each
  // over the keys that survived the previous predicates — the same prompt
  // set as the paper prototype's per-key short-circuiting loop, just
  // grouped so the scheduler can dispatch each phase as a batch. Batched
  // and sequential dispatch return identical keys: the model's verdicts
  // are stable per (key, filter). Filter phases chain on each other's
  // survivors, so they stay sequential even under pipeline_phases.
  std::vector<std::string> surviving = keys;
  for (size_t f = first_check; f < group.llm_filters.size(); ++f) {
    if (surviving.empty()) break;
    llm::CostTap check_tap(model);
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmFilterCheckBatch(&check_tap, def, surviving,
                            group.llm_filters[f], options_));
    std::vector<std::string> kept;
    kept.reserve(surviving.size());
    for (size_t i = 0; i < surviving.size(); ++i) {
      if (verdicts[i] == 1) kept.push_back(std::move(surviving[i]));
    }
    surviving = std::move(kept);
    FinishLlmOp(group.check_nodes[f - first_check], check_tap,
                surviving.size());
  }
  if (options_.record_provenance) {
    ScanProvenance scan;
    scan.table_alias = group.alias;
    scan.pages = group.scan_stats.pages;
    scan.keys = keys.size();
    scan.filtered = keys.size() - surviving.size();
    trace->scans.push_back(std::move(scan));
  }

  // 3. Attribute completion: one scheduler phase per needed column
  // retrieves the whole column, optionally followed by a critic
  // verification phase over its non-NULL cells (Section 6 extensions).
  // With pipeline_phases the per-column phase chains run concurrently;
  // the sequential ladder below is the paper prototype's order. Either
  // way, retrieval bills through one per-operator tap and verification
  // through another, so the DAG attributes their spend separately.
  Schema schema;
  schema.AddColumn(Column(key_col.name, key_col.type, group.alias));
  for (const catalog::ColumnDef* col : group.needed_columns) {
    schema.AddColumn(Column(col->name, col->type, group.alias));
  }
  Relation rel(schema);
  llm::CostTap retrieve_tap(model);
  llm::CostTap cell_verify_tap(model);
  std::vector<std::vector<Value>> columns;
  if (options_.pipeline_phases && group.needed_columns.size() > 1) {
    GALOIS_ASSIGN_OR_RETURN(
        columns, RetrieveColumnsPipelined(group, &retrieve_tap,
                                          &cell_verify_tap, surviving,
                                          trace));
  } else {
    columns.reserve(group.needed_columns.size());
    for (const catalog::ColumnDef* col : group.needed_columns) {
      std::vector<CellProvenance> provenances;
      std::vector<CellProvenance>* prov_ptr =
          options_.record_provenance ? &provenances : nullptr;
      GALOIS_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          LlmGetAttributeBatch(&retrieve_tap, def, surviving, *col,
                               options_, prov_ptr));
      if (options_.verify_cells) {
        // Verify the column's non-NULL cells in one phase.
        CellSelection cells = SelectNonNullCells(values, surviving);
        if (!cells.idx.empty()) {
          GALOIS_ASSIGN_OR_RETURN(
              std::vector<int> verdicts,
              LlmVerifyCellBatch(&cell_verify_tap, def, cells.keys, *col,
                                 cells.values, options_));
          ApplyVerdicts(verdicts, cells, &values, prov_ptr);
        }
      }
      if (prov_ptr != nullptr) {
        for (CellProvenance& p : provenances) {
          p.table_alias = group.alias;
          trace->cells.push_back(std::move(p));
        }
      }
      columns.push_back(std::move(values));
    }
  }
  FinishLlmOp(group.retrieve_node, retrieve_tap, surviving.size());
  FinishLlmOp(group.cell_verify_node, cell_verify_tap, surviving.size());
  for (size_t r = 0; r < surviving.size(); ++r) {
    Tuple row;
    row.reserve(1 + columns.size());
    row.push_back(Value::String(surviving[r]));
    // Move the cells out of the column vectors: each value is consumed
    // exactly once, and completions can be long strings.
    for (auto& column : columns) row.push_back(std::move(column[r]));
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

void PhysicalPlan::InsertResidualNode(TableGroup& group,
                                      const MaterialisationLookupInfo& info) {
  std::ostringstream os;
  os << "ResidualFilter ";
  for (size_t i = 0; i < info.residual.size(); ++i) {
    if (i > 0) os << " AND ";
    const PredicateConjunct& c = info.residual[i];
    os << group.alias << "." << c.column << " " << c.op << " "
       << c.value.ToString();
  }
  os << " (in-memory re-check over a subsuming cache entry)";
  PhysicalNode* node = NewNode(os.str());
  // Splice above the group's subtree: every edge (and the root) that
  // pointed at group.top now points at the residual filter. The arena is
  // a deque, so earlier node addresses stay valid across NewNode.
  for (PhysicalNode& n : nodes_) {
    if (&n == node) continue;
    for (PhysicalNode*& child : n.children) {
      if (child == group.top) child = node;
    }
  }
  if (root_ == group.top) root_ = node;
  node->children.push_back(group.top);
  group.top = node;
  node->stats.executed = true;
  node->stats.rows = info.rows_after_residual;
}

Result<std::vector<Relation>> PhysicalPlan::MaterialiseAll(
    llm::LanguageModel* model, MaterialisationCache* cache,
    QueryOutput* out) {
  // Provenance runs bypass the cache: a hit cannot replay the per-cell
  // prompt/completion trace the caller asked for.
  const bool use_cache = cache != nullptr && !options_.record_provenance;

  const size_t n = groups_.size();
  std::vector<std::optional<Relation>> materialised(n);
  std::vector<std::string> base_keys(n);
  std::vector<size_t> pending;  // LLM tables not served from cache
  for (size_t i = 0; i < n; ++i) {
    TableGroup& group = groups_[i];
    if (!group.from_llm) {
      GALOIS_ASSIGN_OR_RETURN(Relation rel, MaterialiseDb(group));
      materialised[i] = std::move(rel);
      continue;
    }
    // Gathered shard overlay: the table was materialised remotely (and
    // billed there); use it verbatim. Checked before the cache so a
    // coordinator-side cache can never shadow the shard the query was
    // actually billed for.
    TableOverlay* overlay = nullptr;
    for (TableOverlay& o : overlays_) {
      if (o.alias == group.alias) {
        overlay = &o;
        break;
      }
    }
    if (overlay != nullptr) {
      const int64_t overlay_rows =
          static_cast<int64_t>(overlay->relation.rows().size());
      for (PhysicalNode* node :
           {group.scan_node, group.key_verify_node, group.retrieve_node,
            group.cell_verify_node}) {
        if (node == nullptr) continue;
        node->stats.from_remote = true;
        node->stats.rows = overlay_rows;
      }
      for (PhysicalNode* node : group.check_nodes) {
        node->stats.from_remote = true;
        node->stats.rows = overlay_rows;
      }
      materialised[i] = std::move(overlay->relation);
      continue;
    }
    if (use_cache) {
      base_keys[i] =
          MaterialisationCache::BaseKey(*group.def, options_, model->name());
      ++out->table_cache_lookups;
      MaterialisationLookupInfo info;
      std::optional<Relation> hit =
          cache->Lookup(base_keys[i], group.descriptor, *group.def,
                        group.needed_columns, group.alias, &info);
      if (hit.has_value()) {
        ++out->table_cache_hits;
        if (info.exact) ++out->table_cache_exact_hits;
        if (info.predicate_subsumed) ++out->table_cache_subsumption_hits;
        if (info.from_store) ++out->table_cache_store_hits;
        // The cached phases produced the entry's rows; on a subsumption
        // hit the residual filter then narrows them, and shows up as
        // its own operator above the group.
        const int64_t cached_rows = info.rows_before_residual;
        for (PhysicalNode* node :
             {group.scan_node, group.key_verify_node, group.retrieve_node,
              group.cell_verify_node}) {
          if (node == nullptr) continue;
          node->stats.from_cache = true;
          node->stats.rows = cached_rows;
        }
        for (PhysicalNode* node : group.check_nodes) {
          node->stats.from_cache = true;
          node->stats.rows = cached_rows;
        }
        if (info.predicate_subsumed && info.residual_conjuncts > 0) {
          InsertResidualNode(group, info);
        }
        materialised[i] = std::move(*hit);
        continue;
      }
    }
    pending.push_back(i);
  }

  if (options_.pipeline_phases && pending.size() > 1) {
    // Independent tables materialise concurrently, one task per table on
    // the phase pool. Each task records provenance into its own trace;
    // the traces merge in FROM order afterwards, so the combined trace is
    // identical to the sequential path's. On error every task is still
    // joined (abandoning one would leave prompts in flight) and the
    // error of the first table in FROM order is reported —
    // deterministically the one the sequential path reports. Tasks touch
    // disjoint table groups (and the thread-safe query tap), so the
    // per-operator stats need no locking.
    std::vector<ExecutionTrace> traces(pending.size());
    std::vector<TaskHandle<Result<Relation>>> tasks;
    tasks.reserve(pending.size());
    for (size_t t = 0; t < pending.size(); ++t) {
      TableGroup* group = &groups_[pending[t]];
      ExecutionTrace* trace = &traces[t];
      tasks.push_back(TaskHandle<Result<Relation>>::Launch(
          ThreadPool::SharedPhase(), [this, model, group, trace] {
            return MaterialiseLlm(*group, model, trace);
          }));
    }
    Status first_error = Status::OK();
    for (size_t t = 0; t < pending.size(); ++t) {
      Result<Relation> rel = tasks[t].Join();
      if (!rel.ok()) {
        if (first_error.ok()) first_error = rel.status();
        continue;
      }
      materialised[pending[t]] = std::move(rel).value();
    }
    GALOIS_RETURN_IF_ERROR(first_error);
    for (ExecutionTrace& trace : traces) {
      for (ScanProvenance& s : trace.scans) {
        out->trace.scans.push_back(std::move(s));
      }
      for (CellProvenance& c : trace.cells) {
        out->trace.cells.push_back(std::move(c));
      }
    }
  } else {
    for (size_t i : pending) {
      GALOIS_ASSIGN_OR_RETURN(
          Relation rel, MaterialiseLlm(groups_[i], model, &out->trace));
      materialised[i] = std::move(rel);
    }
  }

  for (size_t i : pending) {
    out->scan_pages_prefetched += groups_[i].scan_stats.prefetched;
    out->scan_pages_overfetched += groups_[i].scan_stats.overfetched;
  }
  if (use_cache) {
    for (size_t i : pending) {
      cache->Insert(base_keys[i], groups_[i].descriptor,
                    groups_[i].needed_columns, *materialised[i]);
    }
  }

  std::vector<Relation> rels;
  rels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rels.push_back(std::move(*materialised[i]));
  }
  return rels;
}

Result<QueryOutput> PhysicalPlan::Execute(llm::LanguageModel* model,
                                          MaterialisationCache* cache) {
  QueryOutput out;
  GALOIS_ASSIGN_OR_RETURN(std::vector<Relation> rels,
                          MaterialiseAll(model, cache, &out));
  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));

  // Relational tail: the same stages, in the same order, as the
  // statement-driven engine path (engine::ExecuteOnRelations).
  Relation working = std::move(rels[0]);
  for (size_t i = 0; i < joins_.size(); ++i) {
    const PlanNode* j = joins_[i].logical;
    const Relation& right = rels[i + 1];
    if (!j->predicate) {
      GALOIS_ASSIGN_OR_RETURN(working, engine::CrossJoin(working, right));
    } else if (j->join_type == sql::JoinType::kLeft) {
      GALOIS_ASSIGN_OR_RETURN(
          working, engine::LeftOuterJoin(working, right, *j->predicate));
    } else {
      GALOIS_ASSIGN_OR_RETURN(
          working, engine::NestedLoopJoin(working, right, *j->predicate));
    }
    FinishRelationalOp(joins_[i].node, working.rows().size());
  }
  if (residual_ != nullptr) {
    GALOIS_ASSIGN_OR_RETURN(working, engine::Filter(working, *residual_));
    FinishRelationalOp(filter_node_, working.rows().size());
  }

  engine::ProjectionExprs proj = engine::ExpandSelect(spec_, working.schema());
  Relation source;
  bool use_agg_env = false;
  engine::AggregationPlan aplan;
  if (engine::NeedsAggregation(spec_)) {
    aplan = engine::PlanAggregation(spec_);
    GALOIS_ASSIGN_OR_RETURN(
        source,
        engine::HashAggregate(working, aplan.group_exprs, aplan.specs));
    use_agg_env = true;
    FinishRelationalOp(aggregate_node_, source.rows().size());
  } else {
    source = std::move(working);
  }

  GALOIS_ASSIGN_OR_RETURN(
      engine::ProjectedRows prows,
      engine::ProjectAndFilter(source, proj, spec_, use_agg_env,
                               aplan.agg_keys, aplan.group_exprs.size()));
  // HAVING and projection run fused (one per-row loop); both operators
  // report the fused stage's output.
  FinishRelationalOp(having_node_, prows.values.size());
  FinishRelationalOp(project_node_, prows.values.size());
  engine::SortProjected(&prows, spec_);
  FinishRelationalOp(sort_node_, prows.values.size());
  Relation rel =
      engine::FinishProjection(source.schema(), proj, std::move(prows));

  if (distinct_node_ != nullptr) {
    rel = engine::Distinct(rel);
    FinishRelationalOp(distinct_node_, rel.rows().size());
  }
  if (limit_node_ != nullptr && limit_value_ >= 0) {
    rel = engine::Limit(rel, static_cast<size_t>(limit_value_));
    FinishRelationalOp(limit_node_, rel.rows().size());
  } else {
    FinishRelationalOp(limit_node_, rel.rows().size());
  }
  out.relation = std::move(rel);
  return out;
}

std::string PhysicalPlan::Render() const {
  std::ostringstream os;
  if (root_ != nullptr) RenderRec(*root_, 0, &os);
  return os.str();
}

std::vector<ShardSpec> PhysicalPlan::LlmShards() const {
  std::vector<ShardSpec> shards;
  for (const TableGroup& group : groups_) {
    if (!group.from_llm) continue;
    ShardSpec spec;
    spec.table = group.def->name;
    spec.alias = group.alias;
    spec.columns.reserve(group.needed_columns.size());
    for (const catalog::ColumnDef* col : group.needed_columns) {
      spec.columns.push_back(col->name);
    }
    spec.descriptor = group.descriptor.Encode();
    shards.push_back(std::move(spec));
  }
  return shards;
}

void PhysicalPlan::SetOverlays(std::vector<TableOverlay> overlays) {
  overlays_ = std::move(overlays);
}

Result<QueryOutput> PhysicalPlan::ExecuteShard(const ShardRequest& request,
                                               llm::LanguageModel* model,
                                               MaterialisationCache* cache) {
  TableGroup* group = nullptr;
  for (TableGroup& g : groups_) {
    if (g.alias == request.alias) {
      group = &g;
      break;
    }
  }
  if (group == nullptr || !group->from_llm) {
    return Status::InvalidArgument("shard: no LLM table aliased \"" +
                                   request.alias + "\" in this query");
  }
  // Version-skew defence: the locally compiled shard must match the
  // request byte-for-byte — same table, same needed columns, same
  // canonical predicate descriptor. A mismatch means the coordinator
  // planned against a different catalog or planner version; executing
  // anyway would return a well-formed but wrong partial relation.
  std::vector<std::string> columns;
  columns.reserve(group->needed_columns.size());
  for (const catalog::ColumnDef* col : group->needed_columns) {
    columns.push_back(col->name);
  }
  if (group->def->name != request.table || columns != request.columns ||
      group->descriptor.Encode() != request.descriptor) {
    return Status::InvalidArgument(
        "shard: compiled plan for alias \"" + request.alias +
        "\" does not match the request (catalog or planner version skew)");
  }
  if (request.slice_count < 1 || request.slice_index < 0 ||
      request.slice_index >= request.slice_count) {
    return Status::InvalidArgument(
        "shard: slice " + std::to_string(request.slice_index) + "/" +
        std::to_string(request.slice_count) + " out of range");
  }
  group->slice_index = request.slice_index;
  group->slice_count = request.slice_count;

  QueryOutput out;
  // Key-range slices bypass the cache: a slice inserted under the full
  // descriptor would later be served as the whole table.
  const bool use_cache = cache != nullptr && !options_.record_provenance &&
                         request.slice_count == 1;
  std::string base_key;
  if (use_cache) {
    base_key =
        MaterialisationCache::BaseKey(*group->def, options_, model->name());
    ++out.table_cache_lookups;
    MaterialisationLookupInfo info;
    std::optional<Relation> hit =
        cache->Lookup(base_key, group->descriptor, *group->def,
                      group->needed_columns, group->alias, &info);
    if (hit.has_value()) {
      ++out.table_cache_hits;
      if (info.exact) ++out.table_cache_exact_hits;
      if (info.predicate_subsumed) ++out.table_cache_subsumption_hits;
      if (info.from_store) ++out.table_cache_store_hits;
      out.relation = std::move(*hit);
      return out;
    }
  }
  GALOIS_ASSIGN_OR_RETURN(Relation rel,
                          MaterialiseLlm(*group, model, &out.trace));
  out.scan_pages_prefetched = group->scan_stats.prefetched;
  out.scan_pages_overfetched = group->scan_stats.overfetched;
  if (use_cache) {
    cache->Insert(base_key, group->descriptor, group->needed_columns, rel);
  }
  out.relation = std::move(rel);
  return out;
}

}  // namespace galois::core
