#include "core/galois_executor.h"

#include <map>
#include <set>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/llm_operators.h"
#include "core/materialisation_cache.h"
#include "llm/metering.h"
#include "sql/parser.h"

namespace galois::core {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// SQL symbol for a comparison operator usable in prompt filters; empty
/// when the operator is not a simple comparison.
std::string ComparisonSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kLike:
      return "LIKE";
    default:
      return "";
  }
}

/// Mirror of a comparison when operands are swapped (lit op col ->
/// col op' lit).
std::string MirrorSymbol(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  if (op == "=" || op == "!=") return op;
  return "";  // LIKE cannot be mirrored
}

/// Deep-copies a statement, replacing WHERE with `new_where` (may be
/// null).
SelectStatement CloneWithWhere(const SelectStatement& stmt,
                               sql::ExprPtr new_where) {
  SelectStatement out;
  out.distinct = stmt.distinct;
  for (const auto& item : stmt.select_list) {
    sql::SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    out.select_list.push_back(std::move(copy));
  }
  out.from = stmt.from;
  for (const auto& j : stmt.joins) {
    sql::JoinClause copy;
    copy.type = j.type;
    copy.table = j.table;
    copy.condition = j.condition ? j.condition->Clone() : nullptr;
    out.joins.push_back(std::move(copy));
  }
  out.where = std::move(new_where);
  for (const auto& g : stmt.group_by) out.group_by.push_back(g->Clone());
  out.having = stmt.having ? stmt.having->Clone() : nullptr;
  for (const auto& o : stmt.order_by) {
    sql::OrderItem copy;
    copy.expr = o.expr->Clone();
    copy.descending = o.descending;
    out.order_by.push_back(std::move(copy));
  }
  out.limit = stmt.limit;
  return out;
}

/// The non-NULL cells of one retrieved column, in row order — the input
/// of that column's critic-verification phase.
struct CellSelection {
  std::vector<size_t> idx;        // row indices into the column
  std::vector<std::string> keys;  // surviving key per cell
  std::vector<Value> values;      // claimed value per cell
};

CellSelection SelectNonNullCells(
    const std::vector<Value>& values,
    const std::vector<std::string>& surviving) {
  CellSelection sel;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    sel.idx.push_back(i);
    sel.keys.push_back(surviving[i]);
    sel.values.push_back(values[i]);
  }
  return sel;
}

/// Applies one column's critic verdicts (shared by the sequential ladder
/// and the pipelined path, so their rejection/provenance semantics cannot
/// diverge): rejected cells become NULL — the critic treats them as
/// hallucinations — and the provenance records, when kept, are tagged.
void ApplyVerdicts(const std::vector<int>& verdicts,
                   const CellSelection& cells, std::vector<Value>* values,
                   std::vector<CellProvenance>* provenances) {
  for (size_t v = 0; v < cells.idx.size(); ++v) {
    size_t i = cells.idx[v];
    if (provenances != nullptr) (*provenances)[i].verified = true;
    if (verdicts[v] == 0) {
      (*values)[i] = Value::Null();
      if (provenances != nullptr) {
        (*provenances)[i].rejected = true;
        (*provenances)[i].value = Value::Null();
      }
    }
  }
}

}  // namespace

GaloisExecutor::GaloisExecutor(llm::LanguageModel* model,
                               const catalog::Catalog* catalog,
                               ExecutionOptions options)
    : model_(model), catalog_(catalog), options_(options) {}

Result<QueryOutput> GaloisExecutor::RunSql(const std::string& sql) const {
  GALOIS_ASSIGN_OR_RETURN(SelectStatement stmt, sql::ParseSelect(sql));
  return Run(stmt);
}

Result<Relation> GaloisExecutor::ExecuteSql(const std::string& sql) const {
  GALOIS_ASSIGN_OR_RETURN(QueryOutput out, RunSql(sql));
  return std::move(out).relation;
}

Result<Relation> GaloisExecutor::Execute(
    const SelectStatement& stmt) const {
  GALOIS_ASSIGN_OR_RETURN(QueryOutput out, Run(stmt));
  return std::move(out).relation;
}

Result<GaloisExecutor::TablePlan> GaloisExecutor::PlanTables(
    const SelectStatement& stmt) const {
  TablePlan plan;
  std::vector<TableContext>& ctxs = plan.tables;
  auto add_ref = [&](const sql::TableRef& ref) -> Status {
    TableContext ctx;
    ctx.ref = ref;
    GALOIS_ASSIGN_OR_RETURN(ctx.def, catalog_->GetTable(ref.table));
    ctx.alias = ref.EffectiveAlias();
    if (ref.source == "LLM") {
      ctx.from_llm = true;
    } else if (ref.source == "DB") {
      ctx.from_llm = false;
    } else if (!ref.source.empty()) {
      return Status::BindError("unknown source qualifier '" + ref.source +
                               "' (expected LLM or DB)");
    } else {
      ctx.from_llm =
          ctx.def->default_source == catalog::SourceKind::kLlm;
    }
    ctxs.push_back(std::move(ctx));
    return Status::OK();
  };
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_RETURN_IF_ERROR(add_ref(ref));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_RETURN_IF_ERROR(add_ref(j.table));
  }

  // Resolve a column reference to one of the table contexts: by alias when
  // qualified, otherwise by unique column-name lookup across the defs.
  auto resolve = [&ctxs](const Expr& ref) -> TableContext* {
    if (!ref.table.empty()) {
      for (TableContext& ctx : ctxs) {
        if (EqualsIgnoreCase(ctx.alias, ref.table)) return &ctx;
      }
      return nullptr;
    }
    TableContext* found = nullptr;
    for (TableContext& ctx : ctxs) {
      if (ctx.def->FindColumn(ref.column).ok()) {
        if (found != nullptr) return nullptr;  // ambiguous
        found = &ctx;
      }
    }
    return found;
  };

  // --- split WHERE into LLM-executed filters and engine-side residue ----
  std::vector<const Expr*> conjuncts;
  if (stmt.where) FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::set<const Expr*>& consumed = plan.consumed;
  if (options_.llm_filter_checks) {
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kBinary) continue;
      std::string op = ComparisonSymbol(c->binary_op);
      if (op.empty()) continue;
      const Expr* lhs = c->children[0].get();
      const Expr* rhs = c->children[1].get();
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (lhs->kind == ExprKind::kColumnRef &&
          rhs->kind == ExprKind::kLiteral) {
        col = lhs;
        lit = rhs;
      } else if (rhs->kind == ExprKind::kColumnRef &&
                 lhs->kind == ExprKind::kLiteral) {
        col = rhs;
        lit = lhs;
        op = MirrorSymbol(op);
        if (op.empty()) continue;
      } else {
        continue;
      }
      TableContext* ctx = resolve(*col);
      if (ctx == nullptr || !ctx->from_llm) continue;
      auto coldef = ctx->def->FindColumn(col->column);
      if (!coldef.ok()) continue;
      llm::PromptFilter filter;
      filter.attribute = coldef.value()->name;
      filter.attribute_description = coldef.value()->description;
      filter.op = op;
      filter.value = lit->literal;
      ctx->llm_filters.push_back(std::move(filter));
      consumed.insert(c);
    }
  }

  // --- collect the columns each table must materialise ------------------
  auto mark_needed = [&](const Expr& e) {
    sql::VisitExpr(e, [&](const Expr& node) {
      if (node.kind == ExprKind::kStar) {
        for (TableContext& ctx : ctxs) {
          if (node.table.empty() ||
              EqualsIgnoreCase(ctx.alias, node.table)) {
            ctx.needs_all_columns = true;
          }
        }
        return;
      }
      if (node.kind != ExprKind::kColumnRef) return;
      TableContext* ctx = resolve(node);
      if (ctx == nullptr) return;  // select-alias refs etc.; engine binds
      auto coldef = ctx->def->FindColumn(node.column);
      if (!coldef.ok()) return;
      if (EqualsIgnoreCase(coldef.value()->name, ctx->def->key_column)) {
        return;  // the key is always retrieved
      }
      for (const catalog::ColumnDef* existing : ctx->needed_columns) {
        if (existing == coldef.value()) return;
      }
      ctx->needed_columns.push_back(coldef.value());
    });
  };
  for (const auto& item : stmt.select_list) mark_needed(*item.expr);
  for (const auto& j : stmt.joins) {
    if (j.condition) mark_needed(*j.condition);
  }
  for (const Expr* c : conjuncts) {
    if (consumed.count(c) == 0) mark_needed(*c);
  }
  for (const auto& g : stmt.group_by) mark_needed(*g);
  if (stmt.having) mark_needed(*stmt.having);
  for (const auto& o : stmt.order_by) mark_needed(*o.expr);

  // Keep needed_columns in definition order for stable schemas.
  for (TableContext& ctx : ctxs) {
    if (ctx.needs_all_columns) {
      ctx.needed_columns.clear();
      GALOIS_ASSIGN_OR_RETURN(size_t key_idx, ctx.def->KeyIndex());
      for (size_t i = 0; i < ctx.def->columns.size(); ++i) {
        if (i == key_idx) continue;
        ctx.needed_columns.push_back(&ctx.def->columns[i]);
      }
      continue;
    }
    std::vector<const catalog::ColumnDef*> ordered;
    for (const catalog::ColumnDef& col : ctx.def->columns) {
      for (const catalog::ColumnDef* needed : ctx.needed_columns) {
        if (needed == &col) {
          ordered.push_back(needed);
          break;
        }
      }
    }
    ctx.needed_columns = std::move(ordered);
  }
  return plan;
}

bool GaloisExecutor::ShouldPushFirstFilter(const TableContext& ctx) const {
  // The pushdown decision follows the configured policy; kAuto merges
  // only when the scan is expected to be large enough that the saved
  // per-key prompts outweigh the merged prompt's accuracy penalty.
  PushdownPolicy policy = options_.EffectivePushdown();
  bool push = policy == PushdownPolicy::kAlways ||
              (policy == PushdownPolicy::kAuto &&
               ctx.def->expected_rows >= options_.auto_pushdown_min_rows);
  return push && !ctx.llm_filters.empty();
}

Result<std::vector<std::vector<Value>>>
GaloisExecutor::RetrieveColumnsPipelined(
    llm::LanguageModel* model, const TableContext& ctx,
    const std::vector<std::string>& surviving,
    ExecutionTrace* trace) const {
  const catalog::TableDef& def = *ctx.def;
  const size_t n = ctx.needed_columns.size();
  const bool prov = options_.record_provenance;

  // Dispatch every column's attribute phase up front; they all run
  // concurrently on the phase pool.
  std::vector<AttributePhase> attr_phases(n);
  for (size_t i = 0; i < n; ++i) {
    attr_phases[i] = LlmGetAttributeBatchStart(
        model, def, surviving, *ctx.needed_columns[i], options_);
  }

  // Join columns in order; each column's critic-verify follow-up is
  // dispatched as soon as its values are in, overlapping later columns'
  // retrievals. The error reported is the one with the lowest rank in
  // the sequential ladder's op order (attr_0, verify_0, attr_1, ...), so
  // the pipelined and sequential paths fail identically — though, as
  // with concurrent chunk dispatch, phases already in flight when an
  // error surfaces still complete and bill. On error, this table's
  // per-cell provenance is dropped rather than partially recorded.
  std::vector<std::vector<Value>> columns(n);
  std::vector<std::vector<CellProvenance>> provenances(n);
  std::vector<VerdictPhase> verify_phases(n);
  std::vector<CellSelection> cells(n);
  Status first_error = Status::OK();
  size_t first_error_rank = 2 * n;  // past every op
  for (size_t i = 0; i < n; ++i) {
    Result<std::vector<Value>> values =
        attr_phases[i].Join(prov ? &provenances[i] : nullptr);
    if (!values.ok()) {
      if (2 * i < first_error_rank) {
        first_error = values.status();
        first_error_rank = 2 * i;
      }
      continue;
    }
    columns[i] = std::move(values).value();
    if (!options_.verify_cells || !first_error.ok()) continue;
    cells[i] = SelectNonNullCells(columns[i], surviving);
    if (!cells[i].idx.empty()) {
      verify_phases[i] = LlmVerifyCellBatchStart(
          model, def, cells[i].keys, *ctx.needed_columns[i],
          cells[i].values, options_);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!verify_phases[i].valid()) continue;
    Result<std::vector<int>> verdicts = verify_phases[i].Join();
    if (!verdicts.ok()) {
      if (2 * i + 1 < first_error_rank) {
        first_error = verdicts.status();
        first_error_rank = 2 * i + 1;
      }
      continue;
    }
    ApplyVerdicts(*verdicts, cells[i], &columns[i],
                  prov ? &provenances[i] : nullptr);
  }
  GALOIS_RETURN_IF_ERROR(first_error);
  if (prov) {
    for (size_t i = 0; i < n; ++i) {
      for (CellProvenance& p : provenances[i]) {
        p.table_alias = ctx.alias;
        trace->cells.push_back(std::move(p));
      }
    }
  }
  return columns;
}

Result<Relation> GaloisExecutor::MaterialiseLlmTable(
    llm::LanguageModel* model, const TableContext& ctx,
    ExecutionTrace* trace) const {
  const catalog::TableDef& def = *ctx.def;
  GALOIS_ASSIGN_OR_RETURN(size_t key_idx, def.KeyIndex());
  const catalog::ColumnDef& key_col = def.columns[key_idx];

  // 1. Leaf access: key scan, optionally with one pushed-down filter
  // (see ShouldPushFirstFilter for the policy).
  std::optional<llm::PromptFilter> scan_filter;
  size_t first_check = 0;
  if (ShouldPushFirstFilter(ctx)) {
    scan_filter = ctx.llm_filters[0];
    first_check = 1;
  }
  int scan_pages = 0;
  GALOIS_ASSIGN_OR_RETURN(
      std::vector<std::string> keys,
      LlmKeyScan(model, def, options_, scan_filter, &scan_pages));

  // 2a. Optional critic pass over the scanned keys: "Is it true that the
  // name of the country New Italy is New Italy?" rejects hallucinated
  // entities before any further prompt is spent on them. One scheduler
  // phase over all scanned keys.
  if (options_.verify_cells && !keys.empty()) {
    std::vector<Value> claimed;
    claimed.reserve(keys.size());
    for (const std::string& key : keys) {
      claimed.push_back(Value::String(key));
    }
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmVerifyCellBatch(model, def, keys, key_col, claimed, options_));
    std::vector<std::string> confirmed;
    confirmed.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (verdicts[i] != 0) confirmed.push_back(std::move(keys[i]));
    }
    keys = std::move(confirmed);
  }

  // 2b. Selection: one filter-check phase per remaining predicate, each
  // over the keys that survived the previous predicates — the same prompt
  // set as the paper prototype's per-key short-circuiting loop, just
  // grouped so the scheduler can dispatch each phase as a batch. Batched
  // and sequential dispatch return identical keys: the model's verdicts
  // are stable per (key, filter). Filter phases chain on each other's
  // survivors, so they stay sequential even under pipeline_phases.
  std::vector<std::string> surviving = keys;
  for (size_t f = first_check; f < ctx.llm_filters.size(); ++f) {
    if (surviving.empty()) break;
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmFilterCheckBatch(model, def, surviving, ctx.llm_filters[f],
                            options_));
    std::vector<std::string> kept;
    kept.reserve(surviving.size());
    for (size_t i = 0; i < surviving.size(); ++i) {
      if (verdicts[i] == 1) kept.push_back(std::move(surviving[i]));
    }
    surviving = std::move(kept);
  }
  if (options_.record_provenance) {
    ScanProvenance scan;
    scan.table_alias = ctx.alias;
    scan.pages = scan_pages;
    scan.keys = keys.size();
    scan.filtered = keys.size() - surviving.size();
    trace->scans.push_back(std::move(scan));
  }

  // 3. Attribute completion: one scheduler phase per needed column
  // retrieves the whole column, optionally followed by a critic
  // verification phase over its non-NULL cells (Section 6 extensions).
  // With pipeline_phases the per-column phase chains run concurrently;
  // the sequential ladder below is the paper prototype's order.
  Schema schema;
  schema.AddColumn(Column(key_col.name, key_col.type, ctx.alias));
  for (const catalog::ColumnDef* col : ctx.needed_columns) {
    schema.AddColumn(Column(col->name, col->type, ctx.alias));
  }
  Relation rel(schema);
  std::vector<std::vector<Value>> columns;
  if (options_.pipeline_phases && ctx.needed_columns.size() > 1) {
    GALOIS_ASSIGN_OR_RETURN(
        columns, RetrieveColumnsPipelined(model, ctx, surviving, trace));
  } else {
    columns.reserve(ctx.needed_columns.size());
    for (const catalog::ColumnDef* col : ctx.needed_columns) {
      std::vector<CellProvenance> provenances;
      std::vector<CellProvenance>* prov_ptr =
          options_.record_provenance ? &provenances : nullptr;
      GALOIS_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          LlmGetAttributeBatch(model, def, surviving, *col, options_,
                               prov_ptr));
      if (options_.verify_cells) {
        // Verify the column's non-NULL cells in one phase.
        CellSelection cells = SelectNonNullCells(values, surviving);
        if (!cells.idx.empty()) {
          GALOIS_ASSIGN_OR_RETURN(
              std::vector<int> verdicts,
              LlmVerifyCellBatch(model, def, cells.keys, *col,
                                 cells.values, options_));
          ApplyVerdicts(verdicts, cells, &values, prov_ptr);
        }
      }
      if (prov_ptr != nullptr) {
        for (CellProvenance& p : provenances) {
          p.table_alias = ctx.alias;
          trace->cells.push_back(std::move(p));
        }
      }
      columns.push_back(std::move(values));
    }
  }
  for (size_t r = 0; r < surviving.size(); ++r) {
    Tuple row;
    row.reserve(1 + columns.size());
    row.push_back(Value::String(surviving[r]));
    // Move the cells out of the column vectors: each value is consumed
    // exactly once, and completions can be long strings.
    for (auto& column : columns) row.push_back(std::move(column[r]));
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

Result<Relation> GaloisExecutor::MaterialiseDbTable(
    const TableContext& ctx) const {
  GALOIS_ASSIGN_OR_RETURN(const Relation* instance,
                          catalog_->GetInstance(ctx.def->name));
  return Relation(ctx.def->ToSchema(ctx.alias), instance->rows());
}

Result<std::vector<engine::BoundRelation>>
GaloisExecutor::MaterialiseTables(const std::vector<TableContext>& ctxs,
                                  QueryContext* qctx) const {
  // Provenance runs bypass the cache: a hit cannot replay the per-cell
  // prompt/completion trace the caller asked for.
  const bool use_cache =
      materialisation_cache_ != nullptr && !options_.record_provenance;

  std::vector<std::optional<Relation>> materialised(ctxs.size());
  std::vector<std::string> fingerprints(ctxs.size());
  std::vector<size_t> pending;  // LLM tables not served from cache
  for (size_t i = 0; i < ctxs.size(); ++i) {
    const TableContext& ctx = ctxs[i];
    if (!ctx.from_llm) {
      GALOIS_ASSIGN_OR_RETURN(Relation rel, MaterialiseDbTable(ctx));
      materialised[i] = std::move(rel);
      continue;
    }
    if (use_cache) {
      fingerprints[i] = MaterialisationCache::Fingerprint(
          *ctx.def, ctx.llm_filters, ShouldPushFirstFilter(ctx), options_,
          model_->name());
      ++qctx->table_cache_lookups;
      std::optional<Relation> hit = materialisation_cache_->Lookup(
          fingerprints[i], *ctx.def, ctx.needed_columns, ctx.alias);
      if (hit.has_value()) {
        ++qctx->table_cache_hits;
        materialised[i] = std::move(*hit);
        continue;
      }
    }
    pending.push_back(i);
  }

  if (options_.pipeline_phases && pending.size() > 1) {
    // Independent tables materialise concurrently, one task per table on
    // the phase pool. Each task records provenance into its own trace;
    // the traces merge in FROM order afterwards, so the combined trace is
    // identical to the sequential ladder's. On error every task is still
    // joined (abandoning one would leave prompts in flight) and the
    // error of the first table in FROM order is reported —
    // deterministically the one the sequential path reports.
    std::vector<ExecutionTrace> traces(pending.size());
    std::vector<TaskHandle<Result<Relation>>> tasks;
    tasks.reserve(pending.size());
    for (size_t t = 0; t < pending.size(); ++t) {
      const TableContext* ctx = &ctxs[pending[t]];
      ExecutionTrace* trace = &traces[t];
      llm::LanguageModel* model = qctx->model;
      tasks.push_back(TaskHandle<Result<Relation>>::Launch(
          ThreadPool::SharedPhase(), [this, model, ctx, trace] {
            return MaterialiseLlmTable(model, *ctx, trace);
          }));
    }
    Status first_error = Status::OK();
    for (size_t t = 0; t < pending.size(); ++t) {
      Result<Relation> rel = tasks[t].Join();
      if (!rel.ok()) {
        if (first_error.ok()) first_error = rel.status();
        continue;
      }
      materialised[pending[t]] = std::move(rel).value();
    }
    GALOIS_RETURN_IF_ERROR(first_error);
    for (ExecutionTrace& trace : traces) {
      for (ScanProvenance& s : trace.scans) {
        qctx->trace.scans.push_back(std::move(s));
      }
      for (CellProvenance& c : trace.cells) {
        qctx->trace.cells.push_back(std::move(c));
      }
    }
  } else {
    for (size_t i : pending) {
      GALOIS_ASSIGN_OR_RETURN(
          Relation rel,
          MaterialiseLlmTable(qctx->model, ctxs[i], &qctx->trace));
      materialised[i] = std::move(rel);
    }
  }

  if (use_cache) {
    for (size_t i : pending) {
      materialisation_cache_->Insert(fingerprints[i],
                                     ctxs[i].needed_columns,
                                     *materialised[i]);
    }
  }

  std::vector<engine::BoundRelation> bases;
  bases.reserve(ctxs.size());
  for (size_t i = 0; i < ctxs.size(); ++i) {
    bases.emplace_back(ctxs[i].alias, std::move(*materialised[i]));
  }
  return bases;
}

Result<QueryOutput> GaloisExecutor::Run(const SelectStatement& stmt) const {
  // Per-query cost attribution: every round trip goes through this tap,
  // so the meter below is exactly this query's spend even when other
  // queries bill the same shared model stack concurrently (the old
  // snapshot-and-diff of the shared meter was racy).
  llm::CostTap tap(model_);
  QueryContext qctx;
  qctx.model = &tap;

  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));
  GALOIS_ASSIGN_OR_RETURN(TablePlan plan, PlanTables(stmt));

  GALOIS_ASSIGN_OR_RETURN(std::vector<engine::BoundRelation> bases,
                          MaterialiseTables(plan.tables, &qctx));
  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));

  // Rebuild WHERE from the conjuncts that were not executed via the LLM.
  // The consumed set comes straight from PlanTables — the one place that
  // decides what is pushed — so a conjunct is dropped here iff a prompt
  // filter was actually planned for it.
  sql::ExprPtr residual;
  if (stmt.where) {
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(stmt.where.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      if (plan.consumed.count(c) > 0) continue;
      sql::ExprPtr clone = c->Clone();
      residual = residual
                     ? Expr::MakeBinary(BinaryOp::kAnd,
                                        std::move(residual),
                                        std::move(clone))
                     : std::move(clone);
    }
  }
  SelectStatement residual_stmt = CloneWithWhere(stmt, std::move(residual));
  GALOIS_ASSIGN_OR_RETURN(Relation relation,
                          engine::ExecuteOnRelations(residual_stmt, bases));
  QueryOutput out;
  out.relation = std::move(relation);
  out.cost = tap.cost();
  out.trace = std::move(qctx.trace);
  out.table_cache_lookups = qctx.table_cache_lookups;
  out.table_cache_hits = qctx.table_cache_hits;
  return out;
}

}  // namespace galois::core
