#include "core/galois_executor.h"

#include <utility>

#include "core/physical_plan.h"
#include "planner/planner.h"
#include "sql/parser.h"

namespace galois::core {

GaloisExecutor::GaloisExecutor(llm::LanguageModel* model,
                               const catalog::Catalog* catalog,
                               ExecutionOptions options)
    : model_(model), catalog_(catalog), options_(options) {}

Result<QueryOutput> GaloisExecutor::RunSql(const std::string& sql) const {
  GALOIS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  return Run(stmt);
}

Result<Relation> GaloisExecutor::ExecuteSql(const std::string& sql) const {
  GALOIS_ASSIGN_OR_RETURN(QueryOutput out, RunSql(sql));
  return std::move(out).relation;
}

Result<Relation> GaloisExecutor::Execute(
    const sql::SelectStatement& stmt) const {
  GALOIS_ASSIGN_OR_RETURN(QueryOutput out, Run(stmt));
  return std::move(out).relation;
}

namespace {

/// Parse -> logical plan -> physical annotations -> physical DAG, the
/// same three steps Run performs. The logical plan deep-clones every
/// statement expression, so the returned PhysicalPlan is self-contained.
Result<PhysicalPlan> CompileSql(const std::string& sql,
                                const catalog::Catalog* catalog,
                                const ExecutionOptions& options) {
  GALOIS_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  GALOIS_ASSIGN_OR_RETURN(planner::PlanNodePtr plan,
                          planner::BuildLogicalPlan(stmt, *catalog));
  GALOIS_RETURN_IF_ERROR(
      planner::BindPhysicalAnnotations(plan.get(), *catalog,
                                       BindingOptionsFor(options))
          .status());
  return PhysicalPlan::Compile(std::move(plan), catalog, options);
}

}  // namespace

Result<std::vector<ShardSpec>> GaloisExecutor::PlanShards(
    const std::string& sql) const {
  GALOIS_ASSIGN_OR_RETURN(PhysicalPlan physical,
                          CompileSql(sql, catalog_, options_));
  return physical.LlmShards();
}

Result<QueryOutput> GaloisExecutor::RunShard(
    const ShardRequest& request) const {
  llm::CostTap tap(model_);
  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));
  GALOIS_ASSIGN_OR_RETURN(PhysicalPlan physical,
                          CompileSql(request.sql, catalog_, options_));
  GALOIS_ASSIGN_OR_RETURN(
      QueryOutput out,
      physical.ExecuteShard(request, &tap, materialisation_cache_));
  out.cost = tap.cost();
  return out;
}

Result<QueryOutput> GaloisExecutor::RunSqlWithOverlays(
    const std::string& sql, std::vector<TableOverlay> overlays) const {
  llm::CostTap tap(model_);
  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));
  GALOIS_ASSIGN_OR_RETURN(PhysicalPlan physical,
                          CompileSql(sql, catalog_, options_));
  physical.SetOverlays(std::move(overlays));
  GALOIS_ASSIGN_OR_RETURN(QueryOutput out,
                          physical.Execute(&tap, materialisation_cache_));
  out.cost = tap.cost();
  out.physical_plan = physical.Render();
  return out;
}

Result<QueryOutput> GaloisExecutor::Run(
    const sql::SelectStatement& stmt) const {
  // Per-query cost attribution: every round trip goes through this tap,
  // so the meter below is exactly this query's spend even when other
  // queries bill the same shared model stack concurrently.
  llm::CostTap tap(model_);

  GALOIS_RETURN_IF_ERROR(CheckCancel(options_.control));

  // Plan-driven execution: logical plan -> physical annotations ->
  // physical operator DAG. The annotation pass is the only place that
  // decides pushdown, consumed conjuncts and retrieve columns; the
  // compiler and DAG merely carry those decisions out.
  GALOIS_ASSIGN_OR_RETURN(planner::PlanNodePtr plan,
                          planner::BuildLogicalPlan(stmt, *catalog_));
  GALOIS_RETURN_IF_ERROR(
      planner::BindPhysicalAnnotations(plan.get(), *catalog_,
                                       BindingOptionsFor(options_))
          .status());
  GALOIS_ASSIGN_OR_RETURN(
      PhysicalPlan physical,
      PhysicalPlan::Compile(std::move(plan), catalog_, options_));

  GALOIS_ASSIGN_OR_RETURN(QueryOutput out,
                          physical.Execute(&tap, materialisation_cache_));
  out.cost = tap.cost();
  out.physical_plan = physical.Render();
  return out;
}

}  // namespace galois::core
