#include "core/galois_executor.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "core/llm_operators.h"
#include "sql/parser.h"

namespace galois::core {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// SQL symbol for a comparison operator usable in prompt filters; empty
/// when the operator is not a simple comparison.
std::string ComparisonSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kLike:
      return "LIKE";
    default:
      return "";
  }
}

/// Mirror of a comparison when operands are swapped (lit op col ->
/// col op' lit).
std::string MirrorSymbol(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  if (op == "=" || op == "!=") return op;
  return "";  // LIKE cannot be mirrored
}

/// Deep-copies a statement, replacing WHERE with `new_where` (may be
/// null).
SelectStatement CloneWithWhere(const SelectStatement& stmt,
                               sql::ExprPtr new_where) {
  SelectStatement out;
  out.distinct = stmt.distinct;
  for (const auto& item : stmt.select_list) {
    sql::SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    out.select_list.push_back(std::move(copy));
  }
  out.from = stmt.from;
  for (const auto& j : stmt.joins) {
    sql::JoinClause copy;
    copy.type = j.type;
    copy.table = j.table;
    copy.condition = j.condition ? j.condition->Clone() : nullptr;
    out.joins.push_back(std::move(copy));
  }
  out.where = std::move(new_where);
  for (const auto& g : stmt.group_by) out.group_by.push_back(g->Clone());
  out.having = stmt.having ? stmt.having->Clone() : nullptr;
  for (const auto& o : stmt.order_by) {
    sql::OrderItem copy;
    copy.expr = o.expr->Clone();
    copy.descending = o.descending;
    out.order_by.push_back(std::move(copy));
  }
  out.limit = stmt.limit;
  return out;
}

}  // namespace

GaloisExecutor::GaloisExecutor(llm::LanguageModel* model,
                               const catalog::Catalog* catalog,
                               ExecutionOptions options)
    : model_(model), catalog_(catalog), options_(options) {}

Result<Relation> GaloisExecutor::ExecuteSql(const std::string& sql) {
  GALOIS_ASSIGN_OR_RETURN(SelectStatement stmt, sql::ParseSelect(sql));
  return Execute(stmt);
}

Result<std::vector<GaloisExecutor::TableContext>>
GaloisExecutor::PlanTables(const SelectStatement& stmt) const {
  std::vector<TableContext> ctxs;
  auto add_ref = [&](const sql::TableRef& ref) -> Status {
    TableContext ctx;
    ctx.ref = ref;
    GALOIS_ASSIGN_OR_RETURN(ctx.def, catalog_->GetTable(ref.table));
    ctx.alias = ref.EffectiveAlias();
    if (ref.source == "LLM") {
      ctx.from_llm = true;
    } else if (ref.source == "DB") {
      ctx.from_llm = false;
    } else if (!ref.source.empty()) {
      return Status::BindError("unknown source qualifier '" + ref.source +
                               "' (expected LLM or DB)");
    } else {
      ctx.from_llm =
          ctx.def->default_source == catalog::SourceKind::kLlm;
    }
    ctxs.push_back(std::move(ctx));
    return Status::OK();
  };
  for (const sql::TableRef& ref : stmt.from) {
    GALOIS_RETURN_IF_ERROR(add_ref(ref));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    GALOIS_RETURN_IF_ERROR(add_ref(j.table));
  }

  // Resolve a column reference to one of the table contexts: by alias when
  // qualified, otherwise by unique column-name lookup across the defs.
  auto resolve = [&ctxs](const Expr& ref) -> TableContext* {
    if (!ref.table.empty()) {
      for (TableContext& ctx : ctxs) {
        if (EqualsIgnoreCase(ctx.alias, ref.table)) return &ctx;
      }
      return nullptr;
    }
    TableContext* found = nullptr;
    for (TableContext& ctx : ctxs) {
      if (ctx.def->FindColumn(ref.column).ok()) {
        if (found != nullptr) return nullptr;  // ambiguous
        found = &ctx;
      }
    }
    return found;
  };

  // --- split WHERE into LLM-executed filters and engine-side residue ----
  std::vector<const Expr*> conjuncts;
  if (stmt.where) FlattenConjuncts(stmt.where.get(), &conjuncts);
  std::set<const Expr*> consumed;
  if (options_.llm_filter_checks) {
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kBinary) continue;
      std::string op = ComparisonSymbol(c->binary_op);
      if (op.empty()) continue;
      const Expr* lhs = c->children[0].get();
      const Expr* rhs = c->children[1].get();
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (lhs->kind == ExprKind::kColumnRef &&
          rhs->kind == ExprKind::kLiteral) {
        col = lhs;
        lit = rhs;
      } else if (rhs->kind == ExprKind::kColumnRef &&
                 lhs->kind == ExprKind::kLiteral) {
        col = rhs;
        lit = lhs;
        op = MirrorSymbol(op);
        if (op.empty()) continue;
      } else {
        continue;
      }
      TableContext* ctx = resolve(*col);
      if (ctx == nullptr || !ctx->from_llm) continue;
      auto coldef = ctx->def->FindColumn(col->column);
      if (!coldef.ok()) continue;
      llm::PromptFilter filter;
      filter.attribute = coldef.value()->name;
      filter.attribute_description = coldef.value()->description;
      filter.op = op;
      filter.value = lit->literal;
      ctx->llm_filters.push_back(std::move(filter));
      consumed.insert(c);
    }
  }

  // --- collect the columns each table must materialise ------------------
  auto mark_needed = [&](const Expr& e) {
    sql::VisitExpr(e, [&](const Expr& node) {
      if (node.kind == ExprKind::kStar) {
        for (TableContext& ctx : ctxs) {
          if (node.table.empty() ||
              EqualsIgnoreCase(ctx.alias, node.table)) {
            ctx.needs_all_columns = true;
          }
        }
        return;
      }
      if (node.kind != ExprKind::kColumnRef) return;
      TableContext* ctx = resolve(node);
      if (ctx == nullptr) return;  // select-alias refs etc.; engine binds
      auto coldef = ctx->def->FindColumn(node.column);
      if (!coldef.ok()) return;
      if (EqualsIgnoreCase(coldef.value()->name, ctx->def->key_column)) {
        return;  // the key is always retrieved
      }
      for (const catalog::ColumnDef* existing : ctx->needed_columns) {
        if (existing == coldef.value()) return;
      }
      ctx->needed_columns.push_back(coldef.value());
    });
  };
  for (const auto& item : stmt.select_list) mark_needed(*item.expr);
  for (const auto& j : stmt.joins) {
    if (j.condition) mark_needed(*j.condition);
  }
  for (const Expr* c : conjuncts) {
    if (consumed.count(c) == 0) mark_needed(*c);
  }
  for (const auto& g : stmt.group_by) mark_needed(*g);
  if (stmt.having) mark_needed(*stmt.having);
  for (const auto& o : stmt.order_by) mark_needed(*o.expr);

  // Keep needed_columns in definition order for stable schemas.
  for (TableContext& ctx : ctxs) {
    if (ctx.needs_all_columns) {
      ctx.needed_columns.clear();
      GALOIS_ASSIGN_OR_RETURN(size_t key_idx, ctx.def->KeyIndex());
      for (size_t i = 0; i < ctx.def->columns.size(); ++i) {
        if (i == key_idx) continue;
        ctx.needed_columns.push_back(&ctx.def->columns[i]);
      }
      continue;
    }
    std::vector<const catalog::ColumnDef*> ordered;
    for (const catalog::ColumnDef& col : ctx.def->columns) {
      for (const catalog::ColumnDef* needed : ctx.needed_columns) {
        if (needed == &col) {
          ordered.push_back(needed);
          break;
        }
      }
    }
    ctx.needed_columns = std::move(ordered);
  }
  return ctxs;
}

Result<Relation> GaloisExecutor::MaterialiseLlmTable(
    const TableContext& ctx) {
  const catalog::TableDef& def = *ctx.def;
  GALOIS_ASSIGN_OR_RETURN(size_t key_idx, def.KeyIndex());
  const catalog::ColumnDef& key_col = def.columns[key_idx];

  // 1. Leaf access: key scan, optionally with one pushed-down filter.
  // The pushdown decision follows the configured policy; kAuto merges
  // only when the scan is expected to be large enough that the saved
  // per-key prompts outweigh the merged prompt's accuracy penalty.
  std::optional<llm::PromptFilter> scan_filter;
  size_t first_check = 0;
  PushdownPolicy policy = options_.EffectivePushdown();
  bool push = policy == PushdownPolicy::kAlways ||
              (policy == PushdownPolicy::kAuto &&
               def.expected_rows >= options_.auto_pushdown_min_rows);
  if (push && !ctx.llm_filters.empty()) {
    scan_filter = ctx.llm_filters[0];
    first_check = 1;
  }
  int scan_pages = 0;
  GALOIS_ASSIGN_OR_RETURN(
      std::vector<std::string> keys,
      LlmKeyScan(model_, def, options_, scan_filter, &scan_pages));

  // 2a. Optional critic pass over the scanned keys: "Is it true that the
  // name of the country New Italy is New Italy?" rejects hallucinated
  // entities before any further prompt is spent on them. One scheduler
  // phase over all scanned keys.
  if (options_.verify_cells && !keys.empty()) {
    std::vector<Value> claimed;
    claimed.reserve(keys.size());
    for (const std::string& key : keys) {
      claimed.push_back(Value::String(key));
    }
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmVerifyCellBatch(model_, def, keys, key_col, claimed, options_));
    std::vector<std::string> confirmed;
    confirmed.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      if (verdicts[i] != 0) confirmed.push_back(std::move(keys[i]));
    }
    keys = std::move(confirmed);
  }

  // 2b. Selection: one filter-check phase per remaining predicate, each
  // over the keys that survived the previous predicates — the same prompt
  // set as the paper prototype's per-key short-circuiting loop, just
  // grouped so the scheduler can dispatch each phase as a batch. Batched
  // and sequential dispatch return identical keys: the model's verdicts
  // are stable per (key, filter).
  std::vector<std::string> surviving = keys;
  for (size_t f = first_check; f < ctx.llm_filters.size(); ++f) {
    if (surviving.empty()) break;
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<int> verdicts,
        LlmFilterCheckBatch(model_, def, surviving, ctx.llm_filters[f],
                            options_));
    std::vector<std::string> kept;
    kept.reserve(surviving.size());
    for (size_t i = 0; i < surviving.size(); ++i) {
      if (verdicts[i] == 1) kept.push_back(std::move(surviving[i]));
    }
    surviving = std::move(kept);
  }
  if (options_.record_provenance) {
    ScanProvenance scan;
    scan.table_alias = ctx.alias;
    scan.pages = scan_pages;
    scan.keys = keys.size();
    scan.filtered = keys.size() - surviving.size();
    last_trace_.scans.push_back(std::move(scan));
  }

  // 3. Attribute completion: one scheduler phase per needed column
  // retrieves the whole column, optionally followed by a critic
  // verification phase over its non-NULL cells (Section 6 extensions).
  Schema schema;
  schema.AddColumn(Column(key_col.name, key_col.type, ctx.alias));
  for (const catalog::ColumnDef* col : ctx.needed_columns) {
    schema.AddColumn(Column(col->name, col->type, ctx.alias));
  }
  Relation rel(schema);
  std::vector<std::vector<Value>> columns;
  columns.reserve(ctx.needed_columns.size());
  for (const catalog::ColumnDef* col : ctx.needed_columns) {
    std::vector<CellProvenance> provenances;
    std::vector<CellProvenance>* prov_ptr =
        options_.record_provenance ? &provenances : nullptr;
    GALOIS_ASSIGN_OR_RETURN(
        std::vector<Value> values,
        LlmGetAttributeBatch(model_, def, surviving, *col, options_,
                             prov_ptr));
    if (options_.verify_cells) {
      // Verify the column's non-NULL cells in one phase.
      std::vector<size_t> cell_idx;
      std::vector<std::string> cell_keys;
      std::vector<Value> cell_values;
      for (size_t i = 0; i < values.size(); ++i) {
        if (values[i].is_null()) continue;
        cell_idx.push_back(i);
        cell_keys.push_back(surviving[i]);
        cell_values.push_back(values[i]);
      }
      if (!cell_idx.empty()) {
        GALOIS_ASSIGN_OR_RETURN(
            std::vector<int> verdicts,
            LlmVerifyCellBatch(model_, def, cell_keys, *col, cell_values,
                               options_));
        for (size_t v = 0; v < cell_idx.size(); ++v) {
          size_t i = cell_idx[v];
          if (prov_ptr != nullptr) provenances[i].verified = true;
          if (verdicts[v] == 0) {
            // The critic rejected the value: treat it as a hallucination.
            values[i] = Value::Null();
            if (prov_ptr != nullptr) {
              provenances[i].rejected = true;
              provenances[i].value = Value::Null();
            }
          }
        }
      }
    }
    if (prov_ptr != nullptr) {
      for (CellProvenance& p : provenances) {
        p.table_alias = ctx.alias;
        last_trace_.cells.push_back(std::move(p));
      }
    }
    columns.push_back(std::move(values));
  }
  for (size_t r = 0; r < surviving.size(); ++r) {
    Tuple row;
    row.reserve(1 + columns.size());
    row.push_back(Value::String(surviving[r]));
    for (auto& column : columns) row.push_back(column[r]);
    rel.AddRowUnchecked(std::move(row));
  }
  return rel;
}

Result<Relation> GaloisExecutor::MaterialiseDbTable(
    const TableContext& ctx) const {
  GALOIS_ASSIGN_OR_RETURN(const Relation* instance,
                          catalog_->GetInstance(ctx.def->name));
  return Relation(ctx.def->ToSchema(ctx.alias), instance->rows());
}

Result<Relation> GaloisExecutor::Execute(const SelectStatement& stmt) {
  llm::CostMeter before = model_->cost();
  last_trace_.Clear();
  GALOIS_ASSIGN_OR_RETURN(std::vector<TableContext> ctxs,
                          PlanTables(stmt));

  std::vector<engine::BoundRelation> bases;
  bases.reserve(ctxs.size());
  for (TableContext& ctx : ctxs) {
    if (ctx.from_llm) {
      GALOIS_ASSIGN_OR_RETURN(Relation rel, MaterialiseLlmTable(ctx));
      bases.emplace_back(ctx.alias, std::move(rel));
    } else {
      GALOIS_ASSIGN_OR_RETURN(Relation rel, MaterialiseDbTable(ctx));
      bases.emplace_back(ctx.alias, std::move(rel));
    }
  }

  // Rebuild WHERE from the conjuncts that were not executed via the LLM.
  sql::ExprPtr residual;
  if (stmt.where) {
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(stmt.where.get(), &conjuncts);
    // Recompute which conjuncts were consumed: a conjunct is consumed iff
    // it matches one of the planned llm_filters (same rendering).
    std::set<std::string> llm_filter_keys;
    for (const TableContext& ctx : ctxs) {
      for (const llm::PromptFilter& f : ctx.llm_filters) {
        llm_filter_keys.insert(ctx.alias + "|" + f.attribute + f.op +
                               f.value.ToString());
      }
    }
    for (const Expr* c : conjuncts) {
      bool is_consumed = false;
      if (c->kind == ExprKind::kBinary) {
        std::string op = ComparisonSymbol(c->binary_op);
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        if (!op.empty()) {
          const Expr* lhs = c->children[0].get();
          const Expr* rhs = c->children[1].get();
          if (lhs->kind == ExprKind::kColumnRef &&
              rhs->kind == ExprKind::kLiteral) {
            col = lhs;
            lit = rhs;
          } else if (rhs->kind == ExprKind::kColumnRef &&
                     lhs->kind == ExprKind::kLiteral) {
            col = rhs;
            lit = lhs;
            op = MirrorSymbol(op);
          }
        }
        if (col != nullptr && lit != nullptr && !op.empty()) {
          for (const TableContext& ctx : ctxs) {
            // Match alias (or unqualified ref against a unique table).
            bool alias_match =
                col->table.empty()
                    ? ctx.def->FindColumn(col->column).ok()
                    : EqualsIgnoreCase(ctx.alias, col->table);
            if (!alias_match) continue;
            auto coldef = ctx.def->FindColumn(col->column);
            if (!coldef.ok()) continue;
            std::string key = ctx.alias + "|" + coldef.value()->name + op +
                              lit->literal.ToString();
            if (llm_filter_keys.count(key) > 0) {
              is_consumed = true;
              break;
            }
          }
        }
      }
      if (!is_consumed) {
        sql::ExprPtr clone = c->Clone();
        residual = residual
                       ? Expr::MakeBinary(BinaryOp::kAnd,
                                          std::move(residual),
                                          std::move(clone))
                       : std::move(clone);
      }
    }
  }
  SelectStatement residual_stmt = CloneWithWhere(stmt, std::move(residual));
  Result<Relation> result =
      engine::ExecuteOnRelations(residual_stmt, bases);
  last_cost_ = model_->cost() - before;
  return result;
}

}  // namespace galois::core
