#include "core/options.h"

#include <sstream>

namespace galois::core {

const char* PushdownPolicyName(PushdownPolicy p) {
  switch (p) {
    case PushdownPolicy::kNever:
      return "never";
    case PushdownPolicy::kAlways:
      return "always";
    case PushdownPolicy::kAuto:
      return "auto";
  }
  return "?";
}

std::string ExecutionOptions::ToString() const {
  std::ostringstream os;
  os << "pushdown=" << PushdownPolicyName(EffectivePushdown())
     << " cleaning=" << (enable_cleaning ? "on" : "off")
     << " domains=" << (enforce_domains ? "on" : "off")
     << " llm_filters=" << (llm_filter_checks ? "on" : "off")
     << " verify=" << (verify_cells ? "on" : "off")
     << " batching=" << (batch_prompts ? "on" : "off")
     << " max_batch=" << max_batch_size
     << " parallel_batches=" << parallel_batches
     << " pipeline=" << (pipeline_phases ? "on" : "off")
     << " provenance=" << (record_provenance ? "on" : "off")
     << " max_pages=" << max_scan_pages
     << " prefetch=" << prefetch_pages;
  if (!phase_models.empty()) {
    os << " routes=";
    bool first = true;
    for (const auto& [phase, model] : phase_models) {
      os << (first ? "" : ",") << phase << "->" << model;
      first = false;
    }
  }
  return os.str();
}

}  // namespace galois::core
