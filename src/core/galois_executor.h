#ifndef GALOIS_CORE_GALOIS_EXECUTOR_H_
#define GALOIS_CORE_GALOIS_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/options.h"
#include "core/provenance.h"
#include "llm/language_model.h"
#include "sql/ast.h"
#include "types/relation.h"

namespace galois::core {

class MaterialisationCache;

/// Everything one query execution produced, as a self-contained value:
/// the relation plus the query's own cost meter, provenance trace,
/// physical-plan report and materialisation-cache traffic. Returned by
/// GaloisExecutor::Run, and the engine-level half of the public
/// galois::QueryResult. Because the result is a value (not accessors on
/// the executor), concurrent queries against one executor can never read
/// each other's measurements.
struct QueryOutput {
  Relation relation;

  /// Exactly this query's LLM spend, attributed per round trip through a
  /// per-query llm::CostTap — correct even when other queries bill the
  /// same shared model stack concurrently.
  llm::CostMeter cost;

  /// Per-cell provenance; populated only when
  /// ExecutionOptions::record_provenance is set.
  ExecutionTrace trace;

  /// Rendering of the executed physical operator DAG with per-operator
  /// rows / round trips / cost (PhysicalPlan::Render) — what the shell's
  /// `.explain` shows for the last query.
  std::string physical_plan;

  /// Materialisation-cache traffic of this query: LLM tables looked up,
  /// and tables served without any LLM round trip. Both 0 when no cache
  /// is attached. Hits split by kind: `table_cache_exact_hits` matched
  /// the (base key, predicate descriptor) pair byte-for-byte;
  /// `table_cache_subsumption_hits` were served from an entry cached
  /// under a weaker filter, with the residual conjuncts re-applied in
  /// memory (still zero LLM round trips). `table_cache_store_hits`
  /// counts the hits served by entries the cache warm-started from the
  /// persistent store — tables this *process* never paid for.
  int64_t table_cache_lookups = 0;
  int64_t table_cache_hits = 0;
  int64_t table_cache_exact_hits = 0;
  int64_t table_cache_subsumption_hits = 0;
  int64_t table_cache_store_hits = 0;

  /// Speculative key-scan paging (ExecutionOptions::prefetch_pages):
  /// pages whose round trip was issued before the previous page's answer
  /// had been consumed, and the subset bought past the page that
  /// terminated the scan (paid for, parked in the prompt cache). Both 0
  /// when prefetch is off.
  int64_t scan_pages_prefetched = 0;
  int64_t scan_pages_overfetched = 0;
};

/// One LLM base table of a compiled plan, described precisely enough for
/// a cluster coordinator to dispatch its materialisation to another node
/// — and for that node to prove it compiled the *same* shard before
/// spending a single prompt. Everything that decides what the
/// materialisation produces is captured: the catalog table, the FROM
/// alias (which qualifies the output schema), the needed non-key columns
/// in definition order, and the canonical predicate descriptor
/// (PredicateDescriptor::Encode() bytes — pushed/checked conjuncts plus
/// the LIMIT paging bound). A byte-for-byte match means coordinator and
/// node agree on catalog and planner version; a mismatch is version
/// skew, a deterministic error.
struct ShardSpec {
  std::string table;
  std::string alias;
  std::vector<std::string> columns;
  std::string descriptor;
};

/// A pre-materialised base table injected into execution in place of the
/// engine's own LLM materialisation — the gather half of scatter-gather.
/// The relation must be shaped exactly as MaterialiseLlm produces it:
/// alias-qualified key column first, then the needed columns in
/// definition order.
struct TableOverlay {
  std::string alias;
  Relation relation;
};

/// A shard execution request as a cluster node receives it off the wire:
/// the full query (the node re-plans it against its own catalog), the
/// shard spec to validate the local plan against, and an optional
/// contiguous key-range slice [slice_index, slice_count).
struct ShardRequest {
  std::string sql;
  std::string table;
  std::string alias;
  std::vector<std::string> columns;
  std::string descriptor;
  int64_t slice_index = 0;
  int64_t slice_count = 1;
};

/// The Galois executor (the paper's primary contribution, Section 4).
///
/// Executes SPJA SQL where some or all base relations live in a language
/// model. Execution is plan-driven end to end: Run parses the statement,
/// builds the logical plan (planner::BuildLogicalPlan), annotates it with
/// the physical decisions (planner::BindPhysicalAnnotations — pushdown,
/// consumed conjuncts, retrieve columns, the LIMIT paging bound), and
/// compiles it into a physical operator DAG (core/physical_plan) whose
/// stages decompose the task chain-of-thought style:
///
///   1. leaf access — retrieve the key-attribute values of each LLM table
///      with iterative key-scan prompts (bounded by LIMIT when the plan
///      proves that safe);
///   2. selection — simple predicates on LLM tables become per-key
///      filter-check prompts (or are pushed into the scan prompt when the
///      pushdown optimisation is on);
///   3. attribute completion — every non-key attribute the rest of the
///      plan needs is retrieved with one prompt per (key, attribute) and
///      cleaned into a typed cell;
///   4. relational tail — joins, aggregates, ORDER BY etc. run on the
///      classic engine over the materialised tuples ("traditional
///      algorithms for any operator involving attributes that have already
///      been retrieved").
///
/// The planner is the single source of truth for what executes where:
/// the executor never re-derives pushdown or column decisions (the
/// hardwired pre-plan ladder that did is retired).
///
/// Hybrid queries mix `LLM.` and `DB.` tables: DB tables are read from the
/// catalog instances, exactly like the intro's
/// `SELECT c.GDP, AVG(e.salary) FROM LLM.country c, DB.Employees e ...`.
///
/// With ExecutionOptions::pipeline_phases the DAG executes as a pipeline
/// instead of a ladder of barriers: independent LLM tables materialise
/// concurrently, and within one table the needed-column attribute phases
/// (and their critic-verify follow-ups) are dispatched as async phase
/// futures. Results, provenance order and cost accounting are identical
/// to the sequential plan. A MaterialisationCache attached via
/// set_materialisation_cache adds cross-query reuse on top: a table is
/// served with zero LLM round trips when its (base key, predicate
/// descriptor) pair — definition, result-affecting options, model, plus
/// the canonicalised pushed conjuncts and paging bound — was already
/// materialised, either exactly, by projection from a wider cached
/// column set, or by predicate subsumption from an entry cached under a
/// weaker filter (the residual conjuncts re-applied in memory and
/// billed as a residual-filter operator in the explain DAG).
///
/// Threading model: the executor is immutable after setup (construction
/// plus an optional set_materialisation_cache). Run/Execute are const,
/// compile a fresh physical plan per call, and keep all per-query state —
/// meter, trace, operator stats, cache counters — in that plan and the
/// returned QueryOutput, so one executor instance may run any number of
/// queries concurrently from different threads. This is the engine
/// beneath galois::Database / galois::Session (src/api/database.h), which
/// is the intended public entry point; the executor remains available for
/// tests and benches that drive the engine directly.
class GaloisExecutor {
 public:
  /// `model` and `catalog` must outlive the executor. `options` are fixed
  /// for the executor's lifetime — per-query variation is the Session's
  /// job (it snapshots its options into a fresh executor per query).
  GaloisExecutor(llm::LanguageModel* model,
                 const catalog::Catalog* catalog,
                 ExecutionOptions options = ExecutionOptions());

  /// Parses and executes `sql`, returning the self-contained result.
  /// Thread-safe: may be called concurrently with itself.
  Result<QueryOutput> RunSql(const std::string& sql) const;

  /// Executes a parsed statement.
  Result<QueryOutput> Run(const sql::SelectStatement& stmt) const;

  /// Relation-only conveniences for callers that need no measurements.
  Result<Relation> ExecuteSql(const std::string& sql) const;
  Result<Relation> Execute(const sql::SelectStatement& stmt) const;

  /// Compiles `sql` and lists its LLM base tables as shard specs, in
  /// FROM order — the scatter plan a cluster coordinator dispatches.
  /// Empty when the query touches no LLM table (run it locally).
  /// Thread-safe, spends nothing.
  Result<std::vector<ShardSpec>> PlanShards(const std::string& sql) const;

  /// Executes exactly one shard of `request.sql`: re-plans the query,
  /// validates the compiled shard under `request.alias` against the
  /// request's table/columns/descriptor (mismatch = version skew,
  /// kInvalidArgument), and materialises that single table — through the
  /// attached materialisation cache for whole-table shards, bypassing it
  /// for key-range slices (a slice under the full descriptor would
  /// poison the cache). The output's relation is the shard's
  /// materialised table; cost is exactly the shard's spend.
  Result<QueryOutput> RunShard(const ShardRequest& request) const;

  /// Executes `sql` with the given tables pre-materialised: overlaid
  /// aliases skip their LLM materialisation (and the cache) entirely and
  /// cost nothing; everything else — DB tables, non-overlaid LLM tables,
  /// the whole relational tail — runs as usual. The coordinator's merge
  /// step: with every LLM table overlaid, the run spends zero prompts.
  Result<QueryOutput> RunSqlWithOverlays(
      const std::string& sql, std::vector<TableOverlay> overlays) const;

  const ExecutionOptions& options() const { return options_; }

  /// Attaches a cross-query materialisation cache (nullptr detaches).
  /// Non-owning; the cache is thread-safe and may be shared by several
  /// executors. Setup-time only: do not call with queries in flight.
  /// Bypassed while options().record_provenance is on (a cache hit
  /// cannot replay per-cell prompt traces).
  void set_materialisation_cache(MaterialisationCache* cache) {
    materialisation_cache_ = cache;
  }
  MaterialisationCache* materialisation_cache() const {
    return materialisation_cache_;
  }

 private:
  llm::LanguageModel* model_;
  const catalog::Catalog* catalog_;
  ExecutionOptions options_;
  MaterialisationCache* materialisation_cache_ = nullptr;
};

}  // namespace galois::core

#endif  // GALOIS_CORE_GALOIS_EXECUTOR_H_
