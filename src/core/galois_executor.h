#ifndef GALOIS_CORE_GALOIS_EXECUTOR_H_
#define GALOIS_CORE_GALOIS_EXECUTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/options.h"
#include "core/provenance.h"
#include "engine/executor.h"
#include "llm/language_model.h"
#include "sql/ast.h"
#include "types/relation.h"

namespace galois::core {

/// The Galois executor (the paper's primary contribution, Section 4).
///
/// Executes SPJA SQL where some or all base relations live in a language
/// model. The query plan decomposes the task chain-of-thought style:
///
///   1. leaf access — retrieve the key-attribute values of each LLM table
///      with iterative key-scan prompts;
///   2. selection — simple predicates on LLM tables become per-key
///      filter-check prompts (or are pushed into the scan prompt when the
///      pushdown optimisation is on);
///   3. attribute completion — every non-key attribute the rest of the
///      plan needs is retrieved with one prompt per (key, attribute) and
///      cleaned into a typed cell;
///   4. relational tail — joins, aggregates, ORDER BY etc. run on the
///      classic engine over the materialised tuples ("traditional
///      algorithms for any operator involving attributes that have already
///      been retrieved").
///
/// Hybrid queries mix `LLM.` and `DB.` tables: DB tables are read from the
/// catalog instances, exactly like the intro's
/// `SELECT c.GDP, AVG(e.salary) FROM LLM.country c, DB.Employees e ...`.
class GaloisExecutor {
 public:
  /// `model` and `catalog` must outlive the executor.
  GaloisExecutor(llm::LanguageModel* model,
                 const catalog::Catalog* catalog,
                 ExecutionOptions options = ExecutionOptions());

  /// Parses and executes `sql`.
  Result<Relation> ExecuteSql(const std::string& sql);

  /// Executes a parsed statement.
  Result<Relation> Execute(const sql::SelectStatement& stmt);

  /// Cost incurred by the most recent Execute call.
  const llm::CostMeter& last_cost() const { return last_cost_; }

  /// Provenance of the most recent Execute call; populated only when
  /// options().record_provenance is set (Section 6, "Provenance").
  const ExecutionTrace& last_trace() const { return last_trace_; }

  const ExecutionOptions& options() const { return options_; }
  void set_options(ExecutionOptions options) { options_ = options; }

 private:
  /// Per-table execution context assembled during planning.
  struct TableContext {
    sql::TableRef ref;
    const catalog::TableDef* def = nullptr;
    std::string alias;
    bool from_llm = true;
    /// Non-key columns the rest of the plan needs, in def order.
    std::vector<const catalog::ColumnDef*> needed_columns;
    /// Predicates executed through the LLM (not by the engine).
    std::vector<llm::PromptFilter> llm_filters;
    bool needs_all_columns = false;
  };

  Result<std::vector<TableContext>> PlanTables(
      const sql::SelectStatement& stmt) const;

  /// Materialises one LLM-backed base relation (steps 1-3 above).
  Result<Relation> MaterialiseLlmTable(const TableContext& ctx);

  /// Materialises a DB-backed base relation from the catalog instance.
  Result<Relation> MaterialiseDbTable(const TableContext& ctx) const;

  llm::LanguageModel* model_;
  const catalog::Catalog* catalog_;
  ExecutionOptions options_;
  llm::CostMeter last_cost_;
  ExecutionTrace last_trace_;
};

}  // namespace galois::core

#endif  // GALOIS_CORE_GALOIS_EXECUTOR_H_
