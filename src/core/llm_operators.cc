#include "core/llm_operators.h"

#include <unordered_set>

#include "clean/normalize.h"
#include "llm/prompt_templates.h"

namespace galois::core {

llm::BatchPolicy BatchPolicyFor(const ExecutionOptions& options) {
  llm::BatchPolicy policy;
  policy.batch = options.batch_prompts;
  policy.max_batch_size = options.max_batch_size;
  policy.parallel_batches =
      options.parallel_batches < 1 ? 1 : options.parallel_batches;
  policy.control = options.control;
  return policy;
}

namespace {

/// Parses a yes/no/Unknown completion into the 1/0/-1 verdict shared by
/// the filter-check and critic operators.
int ParseVerdict(const std::string& completion) {
  if (clean::IsUnknown(completion)) return -1;
  auto b = clean::ParseBool(completion);
  if (!b.ok()) return -1;
  return b.value() ? 1 : 0;
}

/// Converts one completion into a typed cell (shared by the scalar and
/// batched attribute paths).
Result<Value> CleanAttributeCompletion(const std::string& completion,
                                       const catalog::ColumnDef& column,
                                       const ExecutionOptions& options) {
  if (!options.enable_cleaning) {
    if (clean::IsUnknown(completion)) return Value::Null();
    return Value::String(completion);
  }
  clean::DomainConstraint domain =
      clean::DefaultDomainForColumn(column.name);
  return clean::NormalizeCell(completion, column.type,
                              options.enforce_domains ? &domain : nullptr);
}

/// The prompt set of one attribute-retrieval phase (shared by the sync
/// and async dispatch paths, so both issue byte-identical prompts).
std::vector<llm::Prompt> BuildAttributePrompts(
    const catalog::TableDef& table, const std::vector<std::string>& keys,
    const catalog::ColumnDef& column) {
  std::vector<llm::Prompt> prompts;
  prompts.reserve(keys.size());
  for (const std::string& key : keys) {
    llm::AttributeGetIntent intent;
    intent.concept_name = table.entity_type;
    intent.key = key;
    intent.attribute = column.name;
    intent.attribute_description = column.description;
    intent.expected_type = column.type;
    prompts.push_back(llm::BuildAttributePrompt(intent));
  }
  return prompts;
}

/// The prompt set of one critic-verification phase.
std::vector<llm::Prompt> BuildVerifyPrompts(
    const catalog::TableDef& table, const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const std::vector<Value>& claimed) {
  std::vector<llm::Prompt> prompts;
  prompts.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    llm::VerifyIntent intent;
    intent.concept_name = table.entity_type;
    intent.key = keys[i];
    intent.attribute = column.name;
    intent.attribute_description = column.description;
    intent.claimed = claimed[i];
    prompts.push_back(llm::BuildVerifyPrompt(intent));
  }
  return prompts;
}

/// Cleans one attribute phase's completions into typed cells and optional
/// provenance records (shared post-processing of the sync and async
/// paths).
Result<std::vector<Value>> CleanAttributeCompletions(
    const std::vector<llm::Completion>& completions,
    const std::vector<std::string>& prompt_texts,
    const catalog::TableDef& table, const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const ExecutionOptions& options,
    std::vector<CellProvenance>* provenances) {
  std::vector<Value> values;
  values.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    GALOIS_ASSIGN_OR_RETURN(
        Value v,
        CleanAttributeCompletion(completions[i].text, column, options));
    if (provenances != nullptr) {
      CellProvenance p;
      p.table_alias = table.name;
      p.key = keys[i];
      p.column = column.name;
      p.prompt = prompt_texts[i];
      p.completion = completions[i].text;
      p.value = v;
      provenances->push_back(std::move(p));
    }
    values.push_back(std::move(v));
  }
  return values;
}

std::vector<int> ParseVerdicts(
    const std::vector<llm::Completion>& completions) {
  std::vector<int> verdicts;
  verdicts.reserve(completions.size());
  for (const llm::Completion& c : completions) {
    verdicts.push_back(ParseVerdict(c.text));
  }
  return verdicts;
}

}  // namespace

namespace {

/// Builds the page-k scan prompt (shared by the sequential and
/// speculative paging paths, so both issue byte-identical prompts).
llm::Prompt BuildScanPagePrompt(const catalog::TableDef& table,
                                const std::optional<llm::PromptFilter>& filter,
                                int page) {
  llm::KeyScanIntent intent;
  intent.concept_name = table.entity_type;
  intent.key_attribute = table.key_column;
  intent.page = page;
  intent.filter = filter;
  return llm::BuildKeyScanPrompt(intent);
}

/// Folds one page's completion into the deduplicated key list. Returns
/// true when the scan should keep paging (new keys appeared and the
/// model did not signal the end of its enumeration).
bool ConsumeScanPage(const llm::Completion& completion,
                     std::vector<std::string>* keys,
                     std::unordered_set<std::string>* seen) {
  if (clean::IsNoMoreResults(completion.text)) return false;
  std::vector<std::string> page_keys = clean::SplitList(completion.text);
  size_t new_keys = 0;
  for (std::string& k : page_keys) {
    if (seen->insert(k).second) {
      keys->push_back(std::move(k));
      ++new_keys;
    }
  }
  // Termination condition: "we keep asking for more names ... until we
  // stop getting new results".
  return new_keys > 0;
}

}  // namespace

Result<std::vector<std::string>> LlmKeyScan(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const ExecutionOptions& options,
    const std::optional<llm::PromptFilter>& filter, KeyScanStats* stats,
    int64_t key_limit) {
  if (stats != nullptr) *stats = KeyScanStats{};
  std::vector<std::string> keys;
  std::unordered_set<std::string> seen;

  // Prefetch never applies to LIMIT-bounded scans: the bound promises
  // that no round trip past the satisfying page is ever issued, and a
  // speculated page would break exactly that.
  const bool prefetch = options.prefetch_pages > 0 && key_limit < 0;
  if (!prefetch) {
    llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                  "key-scan:" + table.entity_type);
    for (int page = 0; page < options.max_scan_pages; ++page) {
      // LIMIT-bounded paging: enough keys are already scanned that the
      // downstream Limit operator is satisfiable — stop buying pages.
      if (key_limit >= 0 &&
          static_cast<int64_t>(keys.size()) >= key_limit) {
        break;
      }
      if (stats != nullptr) ++stats->pages;
      GALOIS_ASSIGN_OR_RETURN(
          llm::Completion completion,
          scheduler.CompleteOne(BuildScanPagePrompt(table, filter, page)));
      if (!ConsumeScanPage(completion, &keys, &seen)) break;
    }
    return keys;
  }

  // Speculative paging: page prompts are independent texts, so page
  // k+1..k+W can be bought while page k's answer is being parsed. Each
  // page goes out as a single-prompt async phase with batching off —
  // that dispatch path is one Complete call per page, billing exactly
  // like the sequential CompleteOne — and handles are joined strictly
  // in page order, so the termination decision (and therefore the key
  // set) is identical to the sequential scan.
  llm::BatchPolicy policy = BatchPolicyFor(options);
  policy.batch = false;
  llm::BatchScheduler scheduler(model, policy,
                                "key-scan:" + table.entity_type);
  const int window = options.prefetch_pages + 1;
  std::vector<llm::PhaseHandle> inflight;  // page order
  int next_page = 0;
  auto issue = [&]() {
    if (next_page >= options.max_scan_pages) return;
    inflight.push_back(scheduler.RunAsync(
        {BuildScanPagePrompt(table, filter, next_page)}));
    ++next_page;
    if (stats != nullptr) {
      ++stats->pages;
      // Every page after the first is bought before the preceding
      // page's answer has been consumed; only page 0 is demand-fetched.
      if (next_page > 1) ++stats->prefetched;
    }
  };
  // Every speculated round trip was started (and bills) whether or not
  // the scan still wants its answer: join the stragglers so their
  // completions settle into any prompt-cache decorator instead of being
  // abandoned mid-flight.
  auto drain = [&](size_t from) {
    if (stats != nullptr) {
      stats->overfetched += static_cast<int>(inflight.size() - from);
    }
    for (size_t i = from; i < inflight.size(); ++i) {
      (void)inflight[i].Join();
    }
    inflight.clear();
  };

  while (static_cast<int>(inflight.size()) < window &&
         next_page < options.max_scan_pages) {
    issue();
  }
  size_t front = 0;
  while (front < inflight.size()) {
    Result<std::vector<llm::Completion>> page = inflight[front].Join();
    ++front;
    if (!page.ok()) {
      drain(front);
      return page.status();
    }
    if (!ConsumeScanPage(page.value()[0], &keys, &seen)) {
      drain(front);
      return keys;
    }
    issue();
  }
  return keys;
}

Result<Value> LlmGetAttribute(llm::LanguageModel* model,
                              const catalog::TableDef& table,
                              const std::string& key,
                              const catalog::ColumnDef& column,
                              const ExecutionOptions& options,
                              CellProvenance* provenance) {
  llm::AttributeGetIntent intent;
  intent.concept_name = table.entity_type;
  intent.key = key;
  intent.attribute = column.name;
  intent.attribute_description = column.description;
  intent.expected_type = column.type;
  llm::Prompt prompt = llm::BuildAttributePrompt(intent);
  GALOIS_ASSIGN_OR_RETURN(llm::Completion completion,
                          model->Complete(prompt));
  if (provenance != nullptr) {
    provenance->table_alias = table.name;
    provenance->key = key;
    provenance->column = column.name;
    provenance->prompt = prompt.text;
    provenance->completion = completion.text;
  }
  Value value;
  if (!options.enable_cleaning) {
    // Ablation: store the raw completion (still mapping "Unknown" to NULL
    // so the relation stays well-formed).
    value = clean::IsUnknown(completion.text)
                ? Value::Null()
                : Value::String(completion.text);
  } else {
    clean::DomainConstraint domain =
        clean::DefaultDomainForColumn(column.name);
    GALOIS_ASSIGN_OR_RETURN(
        value, clean::NormalizeCell(completion.text, column.type,
                                    options.enforce_domains ? &domain
                                                            : nullptr));
  }
  if (provenance != nullptr) provenance->value = value;
  return value;
}

Result<std::vector<Value>> LlmGetAttributeBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const ExecutionOptions& options,
    std::vector<CellProvenance>* provenances) {
  std::vector<llm::Prompt> prompts =
      BuildAttributePrompts(table, keys, column);
  std::vector<std::string> prompt_texts;
  if (provenances != nullptr) {
    prompt_texts.reserve(prompts.size());
    for (const llm::Prompt& p : prompts) prompt_texts.push_back(p.text);
  }
  llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                "attribute:" + column.name);
  GALOIS_ASSIGN_OR_RETURN(std::vector<llm::Completion> completions,
                          scheduler.Run(std::move(prompts)));
  return CleanAttributeCompletions(completions, prompt_texts, table, keys,
                                   column, options, provenances);
}

AttributePhase LlmGetAttributeBatchStart(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const ExecutionOptions& options) {
  std::vector<llm::Prompt> prompts =
      BuildAttributePrompts(table, keys, column);
  AttributePhase phase;
  phase.table_ = &table;
  phase.column_ = &column;
  phase.keys_ = keys;
  if (options.record_provenance) {
    // Only provenance reads the prompt texts; don't duplicate one long
    // string per key on ordinary runs.
    phase.prompt_texts_.reserve(prompts.size());
    for (const llm::Prompt& p : prompts) {
      phase.prompt_texts_.push_back(p.text);
    }
  }
  phase.options_ = options;
  llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                "attribute:" + column.name);
  phase.handle_ = scheduler.RunAsync(std::move(prompts));
  return phase;
}

Result<std::vector<Value>> AttributePhase::Join(
    std::vector<CellProvenance>* provenances) {
  GALOIS_ASSIGN_OR_RETURN(std::vector<llm::Completion> completions,
                          handle_.Join());
  // Prompt texts are only captured when the phase was started with
  // record_provenance on; without them there is nothing to record.
  std::vector<CellProvenance>* prov =
      options_.record_provenance ? provenances : nullptr;
  return CleanAttributeCompletions(completions, prompt_texts_, *table_,
                                   keys_, *column_, options_, prov);
}

Result<std::vector<int>> LlmFilterCheckBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys, const llm::PromptFilter& filter,
    const ExecutionOptions& options) {
  std::vector<llm::Prompt> prompts;
  prompts.reserve(keys.size());
  for (const std::string& key : keys) {
    llm::FilterCheckIntent intent;
    intent.concept_name = table.entity_type;
    intent.key = key;
    intent.filter = filter;
    prompts.push_back(llm::BuildFilterPrompt(intent));
  }
  llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                "filter-check:" + filter.attribute);
  GALOIS_ASSIGN_OR_RETURN(std::vector<llm::Completion> completions,
                          scheduler.Run(std::move(prompts)));
  return ParseVerdicts(completions);
}

Result<std::vector<int>> LlmVerifyCellBatch(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const std::vector<Value>& claimed,
    const ExecutionOptions& options) {
  if (keys.size() != claimed.size()) {
    return Status::InvalidArgument(
        "LlmVerifyCellBatch: keys/claimed size mismatch");
  }
  std::vector<llm::Prompt> prompts =
      BuildVerifyPrompts(table, keys, column, claimed);
  llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                "verify:" + column.name);
  GALOIS_ASSIGN_OR_RETURN(std::vector<llm::Completion> completions,
                          scheduler.Run(std::move(prompts)));
  return ParseVerdicts(completions);
}

VerdictPhase LlmVerifyCellBatchStart(
    llm::LanguageModel* model, const catalog::TableDef& table,
    const std::vector<std::string>& keys,
    const catalog::ColumnDef& column, const std::vector<Value>& claimed,
    const ExecutionOptions& options) {
  VerdictPhase phase;
  if (keys.size() != claimed.size()) {
    phase.error_ = Status::InvalidArgument(
        "LlmVerifyCellBatch: keys/claimed size mismatch");
    return phase;
  }
  llm::BatchScheduler scheduler(model, BatchPolicyFor(options),
                                "verify:" + column.name);
  phase.handle_ =
      scheduler.RunAsync(BuildVerifyPrompts(table, keys, column, claimed));
  return phase;
}

Result<std::vector<int>> VerdictPhase::Join() {
  GALOIS_RETURN_IF_ERROR(error_);
  GALOIS_ASSIGN_OR_RETURN(std::vector<llm::Completion> completions,
                          handle_.Join());
  return ParseVerdicts(completions);
}

Result<int> LlmVerifyCell(llm::LanguageModel* model,
                          const catalog::TableDef& table,
                          const std::string& key,
                          const catalog::ColumnDef& column,
                          const Value& claimed) {
  llm::VerifyIntent intent;
  intent.concept_name = table.entity_type;
  intent.key = key;
  intent.attribute = column.name;
  intent.attribute_description = column.description;
  intent.claimed = claimed;
  llm::Prompt prompt = llm::BuildVerifyPrompt(intent);
  GALOIS_ASSIGN_OR_RETURN(llm::Completion completion,
                          model->Complete(prompt));
  return ParseVerdict(completion.text);
}

Result<int> LlmFilterCheck(llm::LanguageModel* model,
                           const catalog::TableDef& table,
                           const std::string& key,
                           const llm::PromptFilter& filter) {
  llm::FilterCheckIntent intent;
  intent.concept_name = table.entity_type;
  intent.key = key;
  intent.filter = filter;
  llm::Prompt prompt = llm::BuildFilterPrompt(intent);
  GALOIS_ASSIGN_OR_RETURN(llm::Completion completion,
                          model->Complete(prompt));
  return ParseVerdict(completion.text);
}

}  // namespace galois::core
