#ifndef GALOIS_CORE_PHYSICAL_PLAN_H_
#define GALOIS_CORE_PHYSICAL_PLAN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/galois_executor.h"
#include "core/llm_operators.h"
#include "core/materialisation_cache.h"
#include "core/options.h"
#include "core/provenance.h"
#include "engine/relational_stages.h"
#include "llm/language_model.h"
#include "llm/metering.h"
#include "llm/prompt.h"
#include "planner/planner.h"

namespace galois::core {

/// The planner::BindingOptions implied by an ExecutionOptions snapshot —
/// the one translation point between the executor's knobs and the
/// annotation pass, so the two layers cannot drift apart.
planner::BindingOptions BindingOptionsFor(const ExecutionOptions& options);

/// Execution statistics of one physical operator, filled in by
/// PhysicalPlan::Execute and rendered by Render / the shell's `.explain`.
struct OperatorStats {
  /// The operator ran (a phase skipped because an earlier phase failed or
  /// because the whole table came from the materialisation cache stays
  /// false).
  bool executed = false;
  /// The operator's table was served by the materialisation cache: zero
  /// LLM round trips, rows from the cached materialisation.
  bool from_cache = false;
  /// The operator's table was served by a remote shard (cluster
  /// scatter-gather): zero local LLM round trips, rows from the gathered
  /// partial relation. The remote node's spend is aggregated into the
  /// query meter by the coordinator, not attributed to this node.
  bool from_remote = false;
  /// Output rows of the operator; -1 when it never produced any.
  int64_t rows = -1;
  /// LLM round trips this operator issued: scan pages, or batch round
  /// trips (falling back to prompt count under sequential dispatch).
  int64_t round_trips = 0;
  /// Exactly this operator's LLM spend, attributed through a nested
  /// per-operator llm::CostTap. All-zero for relational operators.
  llm::CostMeter cost;
};

/// A node of the physical operator DAG. Labels are display strings
/// ("FilterCheck c.population > 1000000 (one prompt per surviving key)");
/// children are non-owning pointers into the plan's node arena.
struct PhysicalNode {
  std::string label;
  std::vector<PhysicalNode*> children;
  OperatorStats stats;
};

/// The compiled physical form of one annotated logical plan: a DAG whose
/// LLM-backed leaves (key scan, key critic, filter checks, attribute
/// retrieval, cell critic) wrap the prompt-issuing operators in
/// core/llm_operators, and whose relational tail (joins, residual filter,
/// aggregation, fused HAVING+projection, sort, distinct, limit) runs the
/// exact stages in engine/relational_stages that the statement-driven
/// executor runs.
///
/// Compile() lowers a logical plan that has been through
/// planner::BindPhysicalAnnotations — the single source of truth for
/// pushdown, consumed conjuncts, retrieve columns and the LIMIT paging
/// bound. Execute() materialises every base table (concurrently under
/// pipeline_phases, through the materialisation cache when attached),
/// runs the relational tail, and records per-operator statistics on the
/// DAG. Render() pretty-prints the DAG with those statistics.
///
/// One PhysicalPlan executes one query: GaloisExecutor::Run compiles a
/// fresh plan per call, so executor-level thread-safety is preserved
/// (nothing per-query ever lands on the executor).
class PhysicalPlan {
 public:
  /// Lowers `plan` (annotated, see above) against `catalog`. The plan
  /// tree is owned by the returned PhysicalPlan — the compiled spec keeps
  /// borrowing views into its expressions.
  static Result<PhysicalPlan> Compile(planner::PlanNodePtr plan,
                                      const catalog::Catalog* catalog,
                                      const ExecutionOptions& options);

  PhysicalPlan(PhysicalPlan&&) = default;
  PhysicalPlan& operator=(PhysicalPlan&&) = default;

  /// Runs the plan to completion against `model` (the query's CostTap —
  /// every prompt of every operator bills through it) and an optional
  /// materialisation cache. Returns the relation, provenance trace and
  /// cache counters; QueryOutput::cost and ::physical_plan are the
  /// caller's to fill (it owns the tap and the render timing). Call at
  /// most once per compiled plan.
  Result<QueryOutput> Execute(llm::LanguageModel* model,
                              MaterialisationCache* cache);

  /// Lists the plan's LLM base tables as shard specs, in FROM order
  /// (see ShardSpec in galois_executor.h).
  std::vector<ShardSpec> LlmShards() const;

  /// Injects pre-materialised tables (matched by FROM alias) that
  /// Execute uses in place of the engine's own LLM materialisation.
  /// Overlaid tables spend nothing and bypass the materialisation cache.
  /// Call before Execute.
  void SetOverlays(std::vector<TableOverlay> overlays);

  /// Executes exactly one shard: materialises the single LLM table
  /// aliased `request.alias`, restricted to the request's key-range
  /// slice, after validating the compiled group against the request's
  /// spec. See GaloisExecutor::RunShard.
  Result<QueryOutput> ExecuteShard(const ShardRequest& request,
                                   llm::LanguageModel* model,
                                   MaterialisationCache* cache);

  /// Indented tree rendering with per-operator statistics, e.g.
  ///   Limit 5  [rows=5]
  ///     Project [name]  [rows=5]
  ///       Retrieve c.{population} (...)  [rows=5, round trips=1, ...]
  std::string Render() const;

  const PhysicalNode* root() const { return root_; }

 private:
  /// One base relation of the FROM clause with everything its
  /// materialisation needs, compiled straight from the annotated scan
  /// node (no re-derivation).
  struct TableGroup {
    const planner::PlanNode* scan = nullptr;
    const catalog::TableDef* def = nullptr;
    std::string alias;
    bool from_llm = false;
    /// Non-key columns to retrieve, in definition order.
    std::vector<const catalog::ColumnDef*> needed_columns;
    /// Predicates executed through the LLM, in conjunct order.
    std::vector<llm::PromptFilter> llm_filters;
    /// llm_filters[0] merges into the scan prompt (pushdown).
    bool push_first_filter = false;
    /// LIMIT-derived paging bound (-1 unbounded).
    int64_t key_limit = -1;
    /// The structured predicate half of the materialisation-cache key,
    /// compiled (and canonicalised) from the annotated scan filters —
    /// what predicate-subsumption lookups reason over.
    PredicateDescriptor descriptor;
    /// Key-scan paging outcome (pages bought / prefetched /
    /// overfetched), filled by MaterialiseLlm and aggregated into
    /// QueryOutput by MaterialiseAll.
    KeyScanStats scan_stats;
    /// Contiguous key-range slice for shard execution: after the scan,
    /// only scanned keys [n*i/c, n*(i+1)/c) proceed to the per-key
    /// phases. 0/1 = the whole table (the default, and the only value
    /// outside ExecuteShard).
    int64_t slice_index = 0;
    int64_t slice_count = 1;

    // Stats targets; null when the phase does not exist for this group.
    PhysicalNode* scan_node = nullptr;
    PhysicalNode* key_verify_node = nullptr;
    std::vector<PhysicalNode*> check_nodes;  // per non-merged filter
    PhysicalNode* retrieve_node = nullptr;
    PhysicalNode* cell_verify_node = nullptr;
    PhysicalNode* top = nullptr;  // root of this group's subtree
  };

  /// A join step in execution (bottom-up, FROM/JOIN) order.
  struct JoinStep {
    const planner::PlanNode* logical = nullptr;
    PhysicalNode* node = nullptr;
  };

  PhysicalPlan() = default;

  PhysicalNode* NewNode(std::string label);

  /// Splices a residual-filter operator above `group`'s subtree after a
  /// predicate-subsumption cache hit, so Explain shows the in-memory
  /// conjunct re-check (and its row reduction) as a first-class
  /// operator.
  void InsertResidualNode(TableGroup& group,
                          const MaterialisationLookupInfo& info);

  Result<Relation> MaterialiseDb(TableGroup& group);
  Result<Relation> MaterialiseLlm(TableGroup& group,
                                  llm::LanguageModel* model,
                                  ExecutionTrace* trace);
  Result<std::vector<std::vector<Value>>> RetrieveColumnsPipelined(
      const TableGroup& group, llm::LanguageModel* attr_model,
      llm::LanguageModel* verify_model,
      const std::vector<std::string>& surviving, ExecutionTrace* trace);
  Result<std::vector<Relation>> MaterialiseAll(llm::LanguageModel* model,
                                               MaterialisationCache* cache,
                                               QueryOutput* out);

  planner::PlanNodePtr plan_;  // owns every expression the spec borrows
  const catalog::Catalog* catalog_ = nullptr;
  ExecutionOptions options_;

  std::deque<PhysicalNode> nodes_;  // arena; addresses stable
  PhysicalNode* root_ = nullptr;

  std::vector<TableGroup> groups_;  // FROM order
  std::vector<JoinStep> joins_;     // execution order (groups_[i+1] joins)

  /// Pre-materialised tables by alias (SetOverlays); consumed by
  /// MaterialiseAll in place of the matching group's LLM phases.
  std::vector<TableOverlay> overlays_;

  /// Engine-side WHERE residue (null when fully consumed by scan
  /// filters) and its node.
  const sql::Expr* residual_ = nullptr;
  PhysicalNode* filter_node_ = nullptr;

  engine::TailSpec spec_;  // views into plan_'s expressions
  PhysicalNode* aggregate_node_ = nullptr;
  PhysicalNode* having_node_ = nullptr;
  PhysicalNode* project_node_ = nullptr;
  PhysicalNode* sort_node_ = nullptr;
  PhysicalNode* distinct_node_ = nullptr;
  PhysicalNode* limit_node_ = nullptr;
  int64_t limit_value_ = -1;
};

}  // namespace galois::core

#endif  // GALOIS_CORE_PHYSICAL_PLAN_H_
