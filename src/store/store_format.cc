#include "store/store_format.h"

#include <cstring>

namespace galois::store {

namespace {

constexpr char kPromptKeySep = '\x1f';

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialised = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialised;
  return table;
}

/// On-disk Value type tags — stable identifiers, decoupled from the
/// in-memory DataType enum so reordering the latter can never corrupt
/// old journals.
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagDouble = 3,
  kTagString = 4,
  kTagDate = 5,
};

}  // namespace

uint32_t Crc32(const char* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(const char* data, size_t size, size_t* offset, uint32_t* v) {
  if (size < 4 || *offset > size - 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data + *offset);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool GetU64(const char* data, size_t size, size_t* offset, uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!GetU32(data, size, offset, &lo)) return false;
  if (!GetU32(data, size, offset, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetLengthPrefixed(const char* data, size_t size, size_t* offset,
                       std::string* s) {
  uint32_t len = 0;
  if (!GetU32(data, size, offset, &len)) return false;
  if (len > size - *offset) return false;
  s->assign(data + *offset, len);
  *offset += len;
  return true;
}

std::string EncodeFileHeader() {
  std::string out(kFileMagic, sizeof(kFileMagic));
  PutU32(&out, kFormatVersion);
  PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

bool CheckFileHeader(const char* data, size_t size) {
  if (size < kFileHeaderSize) return false;
  if (std::memcmp(data, kFileMagic, sizeof(kFileMagic)) != 0) return false;
  size_t offset = sizeof(kFileMagic);
  uint32_t version = 0;
  uint32_t crc = 0;
  if (!GetU32(data, size, &offset, &version)) return false;
  if (!GetU32(data, size, &offset, &crc)) return false;
  if (version != kFormatVersion) return false;
  return crc == Crc32(data, kFileHeaderSize - 4);
}

std::string EncodeFrame(RecordType type, const std::string& key,
                        const std::string& payload, uint8_t flags) {
  std::string out;
  out.reserve(kFrameHeaderSize + key.size() + payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  out.push_back('\0');  // reserved
  out.push_back('\0');
  PutU32(&out, static_cast<uint32_t>(key.size()));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  uint32_t body_crc = Crc32(key.data(), key.size());
  body_crc = Crc32(payload.data(), payload.size(), body_crc);
  PutU32(&out, body_crc);
  PutU32(&out, Crc32(out.data(), out.size()));  // head CRC over bytes 0..19
  out.append(key);
  out.append(payload);
  return out;
}

FrameResult DecodeFrame(const char* data, size_t size, size_t offset) {
  FrameResult result;
  if (offset == size) {
    result.status = FrameStatus::kEndOfJournal;
    return result;
  }
  if (offset > size || size - offset < kFrameHeaderSize) {
    result.status = FrameStatus::kTornTail;
    return result;
  }
  const char* head = data + offset;
  size_t head_offset = kFrameHeaderSize - 4;
  uint32_t head_crc = 0;
  (void)GetU32(head, kFrameHeaderSize, &head_offset, &head_crc);
  if (head_crc != Crc32(head, kFrameHeaderSize - 4)) {
    result.status = FrameStatus::kTornTail;
    return result;
  }
  size_t cursor = 0;
  uint32_t magic = 0;
  (void)GetU32(head, kFrameHeaderSize, &cursor, &magic);
  if (magic != kFrameMagic) {
    result.status = FrameStatus::kTornTail;
    return result;
  }
  const uint8_t type = static_cast<uint8_t>(head[4]);
  cursor = 8;
  uint32_t key_len = 0;
  uint32_t payload_len = 0;
  uint32_t body_crc = 0;
  (void)GetU32(head, kFrameHeaderSize, &cursor, &key_len);
  (void)GetU32(head, kFrameHeaderSize, &cursor, &payload_len);
  (void)GetU32(head, kFrameHeaderSize, &cursor, &body_crc);
  const size_t body_size =
      static_cast<size_t>(key_len) + static_cast<size_t>(payload_len);
  if (body_size > size - offset - kFrameHeaderSize) {
    // The header is intact but the body never fully landed: a torn
    // trailing write.
    result.status = FrameStatus::kTornTail;
    return result;
  }
  if (type < static_cast<uint8_t>(RecordType::kMaterialisation) ||
      type > static_cast<uint8_t>(RecordType::kClearPrompts)) {
    // Unknown type with a valid header CRC: written by a future version.
    // Its lengths are trustworthy, so skip just this record.
    result.status = FrameStatus::kBadBody;
    result.next_offset = offset + kFrameHeaderSize + body_size;
    return result;
  }
  const char* body = data + offset + kFrameHeaderSize;
  uint32_t actual_crc = Crc32(body, key_len);
  actual_crc = Crc32(body + key_len, payload_len, actual_crc);
  result.next_offset = offset + kFrameHeaderSize + body_size;
  if (actual_crc != body_crc) {
    result.status = FrameStatus::kBadBody;
    return result;
  }
  result.status = FrameStatus::kOk;
  result.type = static_cast<RecordType>(type);
  result.flags = static_cast<uint8_t>(head[5]);
  result.key.assign(body, key_len);
  result.payload.assign(body + key_len, payload_len);
  return result;
}

void EncodeValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return;
    case DataType::kBool:
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(v.bool_value() ? '\1' : '\0');
      return;
    case DataType::kInt64:
      out->push_back(static_cast<char>(kTagInt));
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case DataType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      double d = v.double_value();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      return;
    }
    case DataType::kString:
      out->push_back(static_cast<char>(kTagString));
      PutLengthPrefixed(out, v.string_value());
      return;
    case DataType::kDate:
      out->push_back(static_cast<char>(kTagDate));
      PutU64(out, static_cast<uint64_t>(v.date_packed()));
      return;
  }
}

bool DecodeValue(const char* data, size_t size, size_t* offset, Value* v) {
  if (*offset >= size) return false;
  const uint8_t tag = static_cast<uint8_t>(data[*offset]);
  ++*offset;
  switch (tag) {
    case kTagNull:
      *v = Value::Null();
      return true;
    case kTagBool:
      if (*offset >= size) return false;
      *v = Value::Bool(data[*offset] != '\0');
      ++*offset;
      return true;
    case kTagInt: {
      uint64_t bits = 0;
      if (!GetU64(data, size, offset, &bits)) return false;
      *v = Value::Int(static_cast<int64_t>(bits));
      return true;
    }
    case kTagDouble: {
      uint64_t bits = 0;
      if (!GetU64(data, size, offset, &bits)) return false;
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value::Double(d);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!GetLengthPrefixed(data, size, offset, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    case kTagDate: {
      uint64_t bits = 0;
      if (!GetU64(data, size, offset, &bits)) return false;
      *v = Value::DatePacked(static_cast<int64_t>(bits));
      return true;
    }
    default:
      return false;
  }
}

std::string EncodeMaterialisation(const std::vector<std::string>& columns,
                                  const std::vector<Tuple>& rows) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(columns.size()));
  for (const std::string& name : columns) PutLengthPrefixed(&out, name);
  PutU32(&out, static_cast<uint32_t>(rows.size()));
  for (const Tuple& row : rows) {
    PutU32(&out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) EncodeValue(&out, v);
  }
  return out;
}

namespace {

/// The shared columns+rows body, decoded starting at `*offset`. Both the
/// v1 payload and the descriptor-carrying v2 payload end in exactly this
/// body, so both decoders funnel here.
bool DecodeMaterialisationBody(const char* data, size_t size, size_t* offset,
                               std::vector<std::string>* columns,
                               std::vector<Tuple>* rows) {
  uint32_t num_columns = 0;
  if (!GetU32(data, size, offset, &num_columns)) return false;
  columns->clear();
  columns->reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    if (!GetLengthPrefixed(data, size, offset, &name)) return false;
    columns->push_back(std::move(name));
  }
  uint32_t num_rows = 0;
  if (!GetU32(data, size, offset, &num_rows)) return false;
  rows->clear();
  rows->reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t arity = 0;
    if (!GetU32(data, size, offset, &arity)) return false;
    // A row is the key plus exactly the named columns; anything else is
    // a malformed payload (CRC collisions are possible in the fuzz
    // tests' universe, so the codec revalidates shape).
    if (arity != num_columns + 1) return false;
    Tuple row;
    row.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) {
      Value v;
      if (!DecodeValue(data, size, offset, &v)) return false;
      row.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
  }
  return *offset == size;
}

}  // namespace

bool DecodeMaterialisation(const std::string& payload,
                           std::vector<std::string>* columns,
                           std::vector<Tuple>* rows) {
  size_t offset = 0;
  return DecodeMaterialisationBody(payload.data(), payload.size(), &offset,
                                   columns, rows);
}

std::string EncodeMaterialisationWithDescriptor(
    const std::string& base_key, const std::string& descriptor,
    const std::vector<std::string>& columns, const std::vector<Tuple>& rows) {
  std::string out;
  PutLengthPrefixed(&out, base_key);
  PutLengthPrefixed(&out, descriptor);
  out.append(EncodeMaterialisation(columns, rows));
  return out;
}

bool DecodeMaterialisationWithDescriptor(const std::string& payload,
                                         std::string* base_key,
                                         std::string* descriptor,
                                         std::vector<std::string>* columns,
                                         std::vector<Tuple>* rows) {
  size_t offset = 0;
  if (!GetLengthPrefixed(payload.data(), payload.size(), &offset, base_key)) {
    return false;
  }
  if (!GetLengthPrefixed(payload.data(), payload.size(), &offset,
                         descriptor)) {
    return false;
  }
  return DecodeMaterialisationBody(payload.data(), payload.size(), &offset,
                                   columns, rows);
}

std::string PromptKey(const std::string& model, const std::string& text) {
  std::string key;
  key.reserve(model.size() + 1 + text.size());
  key.append(model);
  key.push_back(kPromptKeySep);
  key.append(text);
  return key;
}

bool SplitPromptKey(const std::string& key, std::string* model,
                    std::string* text) {
  const size_t sep = key.find(kPromptKeySep);
  if (sep == std::string::npos) return false;
  model->assign(key, 0, sep);
  text->assign(key, sep + 1, std::string::npos);
  return true;
}

}  // namespace galois::store
