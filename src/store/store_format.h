#ifndef GALOIS_STORE_STORE_FORMAT_H_
#define GALOIS_STORE_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace galois::store {

/// On-disk journal layout (see docs/ARCHITECTURE.md, "Persistence").
///
///   +--------------------+  file header, 16 bytes
///   | "GALSTOR1" magic   |
///   | u32 version        |
///   | u32 header CRC     |
///   +--------------------+
///   | record frame 0     |  appended atomically (one Append each)
///   | record frame 1     |
///   | ...                |
///   +--------------------+
///
/// Each record frame:
///
///   +-----------------------------+  frame header, 24 bytes
///   | u32 frame magic             |
///   | u8  type   u8 flags  u16 0  |
///   | u32 key length              |
///   | u32 payload length          |
///   | u32 body CRC (key+payload)  |
///   | u32 head CRC (bytes 0..19)  |
///   +-----------------------------+
///   | key bytes                   |
///   | payload bytes               |
///   +-----------------------------+
///
/// Recovery rules (the crash/corruption contract, proven by
/// tests/store_recovery_test.cc):
///  * a frame whose header CRC fails, or whose declared lengths run past
///    EOF, ends the scan — everything from there on is a torn tail and
///    is truncated away;
///  * a frame whose header is intact but whose body CRC fails is
///    *skipped* (its lengths are trustworthy, so the scan continues at
///    the next frame) — corruption degrades that one record to a cache
///    miss, never to wrong bytes;
///  * a record is visible iff its whole frame landed and both CRCs pass.
///
/// All integers are little-endian (asserted at build time on the
/// platforms we target); values are length-prefixed so no byte sequence
/// in a key or payload can imitate a frame boundary.

constexpr char kFileMagic[8] = {'G', 'A', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFrameMagic = 0x474A524Eu;  // "GJRN"
constexpr size_t kFileHeaderSize = 16;
constexpr size_t kFrameHeaderSize = 24;

/// What a record holds. Values are stable on-disk identifiers.
enum class RecordType : uint8_t {
  kMaterialisation = 1,  // key = store key, payload = columns + rows
  kPrompt = 2,           // key = model \x1f prompt text, payload = completion
  kErase = 3,            // key = live-index key; drops one earlier record
  kClearMaterialisations = 4,  // no key; drops all earlier kMaterialisation
  kClearPrompts = 5,           // no key; drops all earlier kPrompt
};

/// Frame flags (header byte 5; covered by the head CRC, so they are as
/// tamper-evident as the type byte). Per-type meaning.
///
/// kMaterialisation: the payload opens with the entry's (base key,
/// predicate descriptor) pair ahead of the v1 columns+rows body, so a
/// warm start can rebuild the structured cache key instead of only the
/// opaque store key. Records without the flag (written before predicate
/// subsumption existed) still replay, but surface with empty base and
/// descriptor — readers decide whether such entries are still usable.
constexpr uint8_t kMaterialisationFlagHasDescriptor = 1;

/// CRC-32 (IEEE 802.3, the polynomial every pager/journal uses), table
/// driven. `seed` chains incremental computation.
uint32_t Crc32(const char* data, size_t size, uint32_t seed = 0);

/// --- primitive little-endian encoders/decoders ------------------------

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutLengthPrefixed(std::string* out, const std::string& s);

/// Each decoder reads at `*offset`, advances it, and returns false when
/// the buffer is too short (never reads past `size`).
bool GetU32(const char* data, size_t size, size_t* offset, uint32_t* v);
bool GetU64(const char* data, size_t size, size_t* offset, uint64_t* v);
bool GetLengthPrefixed(const char* data, size_t size, size_t* offset,
                       std::string* s);

/// --- file + frame framing ---------------------------------------------

/// The 16-byte file header.
std::string EncodeFileHeader();

/// Validates magic/version/CRC of a file header at the start of `data`.
bool CheckFileHeader(const char* data, size_t size);

/// One full record frame (header + key + payload), ready for a single
/// atomic Append. `flags` lands in header byte 5 (see the per-type flag
/// constants above); the head CRC covers it.
std::string EncodeFrame(RecordType type, const std::string& key,
                        const std::string& payload, uint8_t flags = 0);

/// Outcome of parsing the frame at one offset during the recovery scan.
enum class FrameStatus {
  kOk,            // record parsed; key/payload filled
  kEndOfJournal,  // clean EOF exactly at the offset
  kTornTail,      // bad header CRC / truncated frame: stop, truncate here
  kBadBody,       // header fine, body CRC failed: skip this frame
};

struct FrameResult {
  FrameStatus status = FrameStatus::kTornTail;
  RecordType type = RecordType::kMaterialisation;
  uint8_t flags = 0;
  std::string key;
  std::string payload;
  /// Offset of the next frame (valid for kOk and kBadBody).
  size_t next_offset = 0;
};

/// Parses the frame starting at `offset` in `data[0..size)`.
FrameResult DecodeFrame(const char* data, size_t size, size_t offset);

/// --- payload codecs ----------------------------------------------------

/// Value wire format: u8 type tag, then the payload. Doubles travel as
/// their IEEE-754 bits, so a round trip is byte-exact.
void EncodeValue(std::string* out, const Value& v);
bool DecodeValue(const char* data, size_t size, size_t* offset, Value* v);

/// Materialisation payload: the cache entry's non-key column names (def
/// order) and its rows (key first, then those columns).
std::string EncodeMaterialisation(const std::vector<std::string>& columns,
                                  const std::vector<Tuple>& rows);
bool DecodeMaterialisation(const std::string& payload,
                           std::vector<std::string>* columns,
                           std::vector<Tuple>* rows);

/// Descriptor-carrying materialisation payload (frame flag
/// kMaterialisationFlagHasDescriptor): length-prefixed base key and
/// predicate-descriptor bytes, then the exact v1 columns+rows body.
std::string EncodeMaterialisationWithDescriptor(
    const std::string& base_key, const std::string& descriptor,
    const std::vector<std::string>& columns, const std::vector<Tuple>& rows);
bool DecodeMaterialisationWithDescriptor(const std::string& payload,
                                         std::string* base_key,
                                         std::string* descriptor,
                                         std::vector<std::string>* columns,
                                         std::vector<Tuple>* rows);

/// Prompt records: key = model name + '\x1f' + prompt text (the model
/// name may not contain '\x1f'); payload = the completion text, raw.
std::string PromptKey(const std::string& model, const std::string& text);
bool SplitPromptKey(const std::string& key, std::string* model,
                    std::string* text);

}  // namespace galois::store

#endif  // GALOIS_STORE_STORE_FORMAT_H_
