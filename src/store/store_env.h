#ifndef GALOIS_STORE_STORE_ENV_H_
#define GALOIS_STORE_STORE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"

namespace galois::store {

/// An open journal file in append mode. Append/Sync map onto
/// write(2)/fsync(2) in the default environment; fault-injecting test
/// environments may write a *prefix* of an Append and then fail (a torn
/// write — exactly what a process kill mid-write leaves behind), so the
/// store must treat every Append as atomic only after it returned OK.
class AppendFile {
 public:
  virtual ~AppendFile() = default;

  /// Appends `size` bytes. On error, any prefix may have reached the
  /// file (torn write); the caller must assume the tail is garbage.
  virtual Status Append(const char* data, size_t size) = 0;

  /// Durability barrier: everything appended so far survives a crash.
  virtual Status Sync() = 0;
};

/// A read-only view of a whole journal file. The default environment
/// backs it with mmap(2) when possible and falls back to a buffered
/// read into memory; either way the view is immutable and owns its
/// mapping/buffer for its lifetime.
class FileView {
 public:
  virtual ~FileView() = default;
  virtual const char* data() const = 0;
  virtual size_t size() const = 0;
};

/// The store's window onto the world: filesystem, fsync and clock. One
/// indirection so the crash-injection tests can kill writes at any byte
/// boundary, fail syncs, and freeze time — deterministically, without
/// actually killing the test process. Production code uses Default(),
/// a process-wide POSIX environment.
///
/// Implementations must tolerate concurrent calls on *different* files;
/// the store serialises all access to any one file under its own mutex.
class StoreEnv {
 public:
  virtual ~StoreEnv() = default;

  /// Opens (creating if absent) `path` for appending.
  virtual Result<std::unique_ptr<AppendFile>> OpenAppend(
      const std::string& path) = 0;

  /// Maps (or reads) the whole of `path`. `prefer_mmap` false forces the
  /// buffered-read path (the fallback used when mmap is unavailable).
  virtual Result<std::unique_ptr<FileView>> OpenView(
      const std::string& path, bool prefer_mmap) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<int64_t> FileSize(const std::string& path) = 0;

  /// Drops everything past `size` (recovery truncates a torn tail so new
  /// appends land after the last committed record).
  virtual Status Truncate(const std::string& path, int64_t size) = 0;

  /// Atomic replace: rename(2). Used by compaction to swap the rewritten
  /// journal in; a crash before the rename leaves the old journal
  /// untouched.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// mkdir -p one level (the store directory itself).
  virtual Status CreateDir(const std::string& path) = 0;

  /// Durability barrier on the directory entry (after a Rename).
  virtual Status SyncDir(const std::string& path) = 0;

  /// Monotonic-enough clock for record timestamps and vacuum pacing.
  virtual int64_t NowMicros() = 0;

  /// The process-wide POSIX environment.
  static StoreEnv* Default();
};

}  // namespace galois::store

#endif  // GALOIS_STORE_STORE_ENV_H_
