#include "store/result_store.h"

#include <algorithm>
#include <utility>

namespace galois::store {

namespace {

/// Vacuum rewrites down to this fraction of max_bytes, so the journal
/// has append headroom before the next threshold crossing.
constexpr int64_t kVacuumTargetNum = 3;
constexpr int64_t kVacuumTargetDen = 4;

}  // namespace

const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kNone:
      return "none";
    case Durability::kOnClose:
      return "on-close";
    case Durability::kAlways:
      return "always";
  }
  return "unknown";
}

Result<std::unique_ptr<ResultStore>> ResultStore::Open(
    StoreOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("StoreOptions::path is empty");
  }
  if (options.max_bytes < static_cast<int64_t>(kFileHeaderSize)) {
    return Status::InvalidArgument("StoreOptions::max_bytes too small");
  }
  std::unique_ptr<ResultStore> store(new ResultStore());
  store->options_ = std::move(options);
  store->env_ = store->options_.env != nullptr ? store->options_.env
                                               : StoreEnv::Default();
  StoreEnv* env = store->env_;
  const int64_t t0 = env->NowMicros();

  GALOIS_RETURN_IF_ERROR(env->CreateDir(store->options_.path));
  // A temp file is a vacuum that never committed its rename: the old
  // journal is authoritative, the temp is garbage.
  GALOIS_RETURN_IF_ERROR(env->Remove(store->TempPath()));

  const std::string journal = store->JournalPath();
  bool write_header = true;
  if (env->FileExists(journal)) {
    GALOIS_ASSIGN_OR_RETURN(
        std::unique_ptr<FileView> view,
        env->OpenView(journal, store->options_.use_mmap));
    const char* data = view->data();
    const size_t size = view->size();
    if (!CheckFileHeader(data, size)) {
      // The header itself is corrupt or foreign: nothing after it can
      // be trusted. Start the journal over.
      if (size > 0) ++store->stats_.records_dropped;
      GALOIS_RETURN_IF_ERROR(env->Truncate(journal, 0));
    } else {
      write_header = false;
      size_t offset = kFileHeaderSize;
      int64_t truncate_to = -1;
      for (;;) {
        FrameResult frame = DecodeFrame(data, size, offset);
        if (frame.status == FrameStatus::kEndOfJournal) break;
        if (frame.status == FrameStatus::kTornTail) {
          ++store->stats_.records_dropped;
          truncate_to = static_cast<int64_t>(offset);
          break;
        }
        if (frame.status == FrameStatus::kBadBody) {
          // Checksum-failing record: its bytes stay (dead) but it is
          // never indexed, so it can never be served.
          ++store->stats_.records_dropped;
          offset = frame.next_offset;
          continue;
        }
        switch (frame.type) {
          case RecordType::kMaterialisation:
          case RecordType::kPrompt: {
            const std::string index_key = IndexKey(frame.type, frame.key);
            store->RemoveLiveLocked(index_key);
            LiveEntry entry;
            entry.type = frame.type;
            entry.offset = static_cast<int64_t>(offset);
            entry.frame_size =
                static_cast<int64_t>(frame.next_offset - offset);
            entry.last_used = ++store->tick_;
            store->live_bytes_ += entry.frame_size;
            store->live_.emplace(index_key, entry);
            break;
          }
          case RecordType::kErase:
            store->RemoveLiveLocked(
                IndexKey(RecordType::kMaterialisation, frame.key));
            break;
          case RecordType::kClearMaterialisations:
            store->ClearTypeLocked(RecordType::kMaterialisation);
            break;
          case RecordType::kClearPrompts:
            store->ClearTypeLocked(RecordType::kPrompt);
            break;
        }
        offset = frame.next_offset;
      }
      store->file_bytes_ = static_cast<int64_t>(offset);
      if (truncate_to >= 0) {
        // Drop the torn tail so new appends land right after the last
        // committed record.
        GALOIS_RETURN_IF_ERROR(env->Truncate(journal, truncate_to));
        store->file_bytes_ = truncate_to;
      }
    }
  }

  GALOIS_ASSIGN_OR_RETURN(store->writer_, env->OpenAppend(journal));
  if (write_header) {
    const std::string header = EncodeFileHeader();
    GALOIS_RETURN_IF_ERROR(
        store->writer_->Append(header.data(), header.size()));
    if (store->options_.durability == Durability::kAlways) {
      GALOIS_RETURN_IF_ERROR(store->writer_->Sync());
    }
    store->file_bytes_ = static_cast<int64_t>(header.size());
  }

  for (const auto& [key, entry] : store->live_) {
    (void)key;
    if (entry.type == RecordType::kMaterialisation) {
      ++store->stats_.materialisations_recovered;
    } else {
      ++store->stats_.prompts_recovered;
    }
  }
  store->stats_.recovery_micros = env->NowMicros() - t0;
  return store;
}

ResultStore::~ResultStore() {
  {
    std::lock_guard<std::mutex> bg_lock(bg_mu_);
    if (bg_vacuum_.joinable()) bg_vacuum_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_ != nullptr && !dead_ &&
      options_.durability != Durability::kNone) {
    (void)writer_->Sync();
  }
}

void ResultStore::RemoveLiveLocked(const std::string& index_key) {
  auto it = live_.find(index_key);
  if (it == live_.end()) return;
  live_bytes_ -= it->second.frame_size;
  live_.erase(it);
}

void ResultStore::ClearTypeLocked(RecordType type) {
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.type == type) {
      live_bytes_ -= it->second.frame_size;
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ResultStore::AppendLocked(RecordType type, const std::string& key,
                                 const std::string& payload, bool track_live,
                                 uint8_t flags) {
  if (dead_ || writer_ == nullptr) {
    ++stats_.append_errors;
    return Status::IoError("store is read-only after an append failure");
  }
  const std::string frame = EncodeFrame(type, key, payload, flags);
  Status appended = writer_->Append(frame.data(), frame.size());
  if (appended.ok() && options_.durability == Durability::kAlways) {
    appended = writer_->Sync();
  }
  if (!appended.ok()) {
    // Never take a query down for the cache's disk: go read-only and
    // leave the committed prefix for the next open.
    dead_ = true;
    ++stats_.append_errors;
    return appended;
  }
  ++stats_.appends;
  stats_.append_bytes += static_cast<int64_t>(frame.size());
  const int64_t offset = file_bytes_;
  file_bytes_ += static_cast<int64_t>(frame.size());
  if (track_live) {
    const std::string index_key = IndexKey(type, key);
    RemoveLiveLocked(index_key);
    LiveEntry entry;
    entry.type = type;
    entry.offset = offset;
    entry.frame_size = static_cast<int64_t>(frame.size());
    entry.last_used = ++tick_;
    live_bytes_ += entry.frame_size;
    live_.emplace(index_key, entry);
  }
  return Status::OK();
}

Status ResultStore::PutMaterialisation(
    const std::string& store_key, const std::vector<std::string>& columns,
    const std::vector<Tuple>& rows, const std::string& base_key,
    const std::string& descriptor) {
  const bool with_descriptor = !base_key.empty() || !descriptor.empty();
  std::string payload =
      with_descriptor
          ? EncodeMaterialisationWithDescriptor(base_key, descriptor,
                                                columns, rows)
          : EncodeMaterialisation(columns, rows);
  const uint8_t flags =
      with_descriptor ? kMaterialisationFlagHasDescriptor : 0;
  std::unique_lock<std::mutex> lock(mu_);
  Status s = AppendLocked(RecordType::kMaterialisation, store_key, payload,
                          /*track_live=*/true, flags);
  if (s.ok()) MaybeScheduleVacuum(&lock);
  return s;
}

Status ResultStore::PutPrompt(const std::string& model,
                              const std::string& text,
                              const std::string& completion) {
  std::unique_lock<std::mutex> lock(mu_);
  Status s = AppendLocked(RecordType::kPrompt, PromptKey(model, text),
                          completion, /*track_live=*/true);
  if (s.ok()) MaybeScheduleVacuum(&lock);
  return s;
}

Status ResultStore::EraseMaterialisation(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = AppendLocked(RecordType::kErase, fingerprint, "",
                          /*track_live=*/false);
  if (s.ok()) {
    RemoveLiveLocked(IndexKey(RecordType::kMaterialisation, fingerprint));
  }
  return s;
}

Status ResultStore::ClearMaterialisations() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = AppendLocked(RecordType::kClearMaterialisations, "", "",
                          /*track_live=*/false);
  if (s.ok()) ClearTypeLocked(RecordType::kMaterialisation);
  return s;
}

Status ResultStore::ClearPrompts() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = AppendLocked(RecordType::kClearPrompts, "", "",
                          /*track_live=*/false);
  if (s.ok()) ClearTypeLocked(RecordType::kPrompt);
  return s;
}

void ResultStore::TouchMaterialisation(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(IndexKey(RecordType::kMaterialisation, fingerprint));
  if (it != live_.end()) it->second.last_used = ++tick_;
}

void ResultStore::TouchPrompt(const std::string& model,
                              const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it =
      live_.find(IndexKey(RecordType::kPrompt, PromptKey(model, text)));
  if (it != live_.end()) it->second.last_used = ++tick_;
}

template <typename Fn>
void ResultStore::ForEachLive(RecordType type, const Fn& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto view = env_->OpenView(JournalPath(), options_.use_mmap);
  if (!view.ok()) return;
  const char* data = view.value()->data();
  const size_t size = view.value()->size();

  std::vector<const LiveEntry*> order;
  order.reserve(live_.size());
  for (const auto& [key, entry] : live_) {
    (void)key;
    if (entry.type == type) order.push_back(&entry);
  }
  // LRU-first: feeding an LRU-capped cache in this order leaves the
  // most recently used entries resident.
  std::sort(order.begin(), order.end(),
            [](const LiveEntry* a, const LiveEntry* b) {
              return a->last_used < b->last_used;
            });
  for (const LiveEntry* entry : order) {
    // Re-validate the frame from disk; a record that no longer parses
    // degrades to a miss, never to wrong bytes.
    FrameResult frame =
        DecodeFrame(data, size, static_cast<size_t>(entry->offset));
    if (frame.status != FrameStatus::kOk || frame.type != type) continue;
    fn(frame);
  }
}

void ResultStore::ForEachMaterialisation(
    const std::function<void(const std::string&, const std::string&,
                             const std::string&,
                             const std::vector<std::string>&,
                             const std::vector<Tuple>&)>& fn) {
  ForEachLive(RecordType::kMaterialisation, [&fn](const FrameResult& frame) {
    std::vector<std::string> columns;
    std::vector<Tuple> rows;
    std::string base_key;
    std::string descriptor;
    if (frame.flags & kMaterialisationFlagHasDescriptor) {
      if (!DecodeMaterialisationWithDescriptor(frame.payload, &base_key,
                                               &descriptor, &columns,
                                               &rows)) {
        return;
      }
    } else if (!DecodeMaterialisation(frame.payload, &columns, &rows)) {
      return;
    }
    fn(frame.key, base_key, descriptor, columns, rows);
  });
}

void ResultStore::ForEachPrompt(
    const std::function<void(const std::string&, const std::string&,
                             const std::string&)>& fn) {
  ForEachLive(RecordType::kPrompt, [&fn](const FrameResult& frame) {
    std::string model;
    std::string text;
    if (!SplitPromptKey(frame.key, &model, &text)) return;
    fn(model, text, frame.payload);
  });
}

void ResultStore::MaybeScheduleVacuum(std::unique_lock<std::mutex>* lock) {
  if (vacuum_scheduled_ || dead_) return;
  if (file_bytes_ <= options_.max_bytes) return;
  const int64_t target =
      options_.max_bytes * kVacuumTargetNum / kVacuumTargetDen;
  const int64_t dead_bytes =
      file_bytes_ - static_cast<int64_t>(kFileHeaderSize) - live_bytes_;
  // Only vacuum when it can actually shrink the file: dead bytes to
  // drop, or more than one live entry so LRU eviction has a victim.
  if (dead_bytes <= 0 && (live_bytes_ <= target || live_.size() <= 1)) {
    return;
  }
  vacuum_scheduled_ = true;
  if (!options_.background_vacuum) {
    (void)VacuumLocked();
    vacuum_scheduled_ = false;
    return;
  }
  lock->unlock();
  std::lock_guard<std::mutex> bg_lock(bg_mu_);
  if (bg_vacuum_.joinable()) bg_vacuum_.join();
  bg_vacuum_ = std::thread([this] {
    std::lock_guard<std::mutex> vacuum_lock(mu_);
    (void)VacuumLocked();
    vacuum_scheduled_ = false;
  });
}

Status ResultStore::Vacuum() {
  std::lock_guard<std::mutex> lock(mu_);
  return VacuumLocked();
}

Status ResultStore::VacuumLocked() {
  if (dead_) {
    return Status::IoError("store is read-only after an append failure");
  }
  const int64_t t0 = env_->NowMicros();
  GALOIS_ASSIGN_OR_RETURN(std::unique_ptr<FileView> view,
                          env_->OpenView(JournalPath(), options_.use_mmap));
  const char* data = view->data();
  const size_t size = view->size();

  // Survivors: newest-first within the byte budget; everything older is
  // evicted. The newest entry always survives, so the store never
  // vacuums itself empty.
  std::vector<std::pair<std::string, LiveEntry>> entries(live_.begin(),
                                                         live_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second.last_used > b.second.last_used;
            });
  const int64_t target =
      options_.max_bytes * kVacuumTargetNum / kVacuumTargetDen -
      static_cast<int64_t>(kFileHeaderSize);
  int64_t kept_bytes = 0;
  size_t kept = 0;
  for (; kept < entries.size(); ++kept) {
    const int64_t frame_size = entries[kept].second.frame_size;
    if (kept > 0 && kept_bytes + frame_size > target) break;
    kept_bytes += frame_size;
  }
  const int64_t evicted = static_cast<int64_t>(entries.size() - kept);
  entries.resize(kept);
  // Journal order is oldest-first, like an organically grown journal.
  std::reverse(entries.begin(), entries.end());

  std::string compacted = EncodeFileHeader();
  compacted.reserve(static_cast<size_t>(kept_bytes) + kFileHeaderSize);
  for (auto& [key, entry] : entries) {
    (void)key;
    const size_t offset = static_cast<size_t>(entry.offset);
    const size_t frame_size = static_cast<size_t>(entry.frame_size);
    if (offset + frame_size > size) {
      return Status::Internal("vacuum: live entry past journal end");
    }
    const int64_t new_offset = static_cast<int64_t>(compacted.size());
    compacted.append(data + offset, frame_size);
    entry.offset = new_offset;
  }

  // Write the rewrite beside the journal, durably, then swap it in with
  // an atomic rename. A crash anywhere before the rename leaves the old
  // journal authoritative (Open removes the orphan temp).
  GALOIS_RETURN_IF_ERROR(env_->Remove(TempPath()));
  {
    GALOIS_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> tmp,
                            env_->OpenAppend(TempPath()));
    Status written = tmp->Append(compacted.data(), compacted.size());
    if (written.ok() && options_.durability != Durability::kNone) {
      written = tmp->Sync();
    }
    if (!written.ok()) {
      (void)env_->Remove(TempPath());
      return written;
    }
  }
  writer_.reset();
  Status renamed = env_->Rename(TempPath(), JournalPath());
  if (renamed.ok() && options_.durability != Durability::kNone) {
    renamed = env_->SyncDir(options_.path);
  }
  Result<std::unique_ptr<AppendFile>> reopened =
      env_->OpenAppend(JournalPath());
  if (!renamed.ok() || !reopened.ok()) {
    // The journal (old or new) is still intact on disk, but without a
    // writer the store cannot continue: go read-only.
    dead_ = true;
    return !renamed.ok() ? renamed : reopened.status();
  }
  writer_ = std::move(reopened).value();

  live_.clear();
  live_bytes_ = 0;
  for (auto& [key, entry] : entries) {
    live_bytes_ += entry.frame_size;
    live_.emplace(std::move(key), entry);
  }
  file_bytes_ = static_cast<int64_t>(compacted.size());
  ++stats_.vacuums;
  stats_.evictions += evicted;
  stats_.last_vacuum_micros = env_->NowMicros() - t0;
  return Status::OK();
}

Status ResultStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || writer_ == nullptr) {
    return Status::IoError("store is read-only after an append failure");
  }
  return writer_->Sync();
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats out = stats_;
  out.file_bytes = file_bytes_;
  out.live_bytes = live_bytes_;
  for (const auto& [key, entry] : live_) {
    (void)key;
    if (entry.type == RecordType::kMaterialisation) {
      ++out.live_materialisations;
    } else {
      ++out.live_prompts;
    }
  }
  return out;
}

}  // namespace galois::store
