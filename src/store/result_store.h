#ifndef GALOIS_STORE_RESULT_STORE_H_
#define GALOIS_STORE_RESULT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "store/store_env.h"
#include "store/store_format.h"
#include "types/schema.h"

namespace galois::store {

/// When appended records are forced to disk. The store is a *cache* of
/// recomputable results, so the durability/throughput trade is explicit:
/// a crash only ever costs re-buying the un-synced suffix — recovery
/// drops a torn tail cleanly in every mode.
enum class Durability {
  kNone,     // never fsync; the OS flushes when it pleases
  kOnClose,  // fsync at close and after vacuum (the default)
  kAlways,   // fsync after every appended record
};

const char* DurabilityName(Durability d);

struct StoreOptions {
  /// Directory holding the journal (created if missing). Empty disables
  /// the store wherever a StoreOptions is embedded (DatabaseOptions).
  std::string path;

  /// On-disk budget. When the journal file (live + dead bytes) grows
  /// past this, a vacuum compacts it, evicting least-recently-used
  /// entries if the live set alone exceeds the budget.
  int64_t max_bytes = 64 * 1024 * 1024;

  Durability durability = Durability::kOnClose;

  /// Read path: mmap the journal for recovery/warm-start scans; false
  /// forces the buffered-read fallback.
  bool use_mmap = true;

  /// Run threshold-triggered vacuums on a background thread instead of
  /// inline on the appending caller. Explicit Vacuum() calls are always
  /// synchronous.
  bool background_vacuum = true;

  /// Filesystem/fsync/clock hooks; null means StoreEnv::Default(). The
  /// crash-injection tests substitute a fault-scheduled environment.
  StoreEnv* env = nullptr;
};

/// Counters over the store's lifetime; a consistent snapshot under the
/// store mutex.
struct StoreStats {
  // Recovery (Open).
  int64_t materialisations_recovered = 0;
  int64_t prompts_recovered = 0;
  int64_t records_dropped = 0;  // torn tail + checksum-failing records
  int64_t recovery_micros = 0;

  // Journal traffic.
  int64_t appends = 0;
  int64_t append_bytes = 0;
  int64_t append_errors = 0;  // store went read-only (dead) on the first

  // Vacuum.
  int64_t vacuums = 0;
  int64_t evictions = 0;  // live entries dropped by the LRU budget
  int64_t last_vacuum_micros = 0;

  // Current shape.
  int64_t file_bytes = 0;
  int64_t live_bytes = 0;
  int64_t live_materialisations = 0;
  int64_t live_prompts = 0;
};

/// The persistent on-disk result store: a write-ahead journal of
/// materialised tables and prompt completions, keyed by the same
/// fingerprints the in-memory caches use, so a process restart warm-
/// starts both caches instead of re-billing the workload (ROADMAP item
/// 2; the pager/journal design follows oidadb's edbp pager and ctdb's
/// vacuum).
///
/// Life cycle: Open() recovers the journal (CRC-validating every record,
/// truncating the torn tail — see store_format.h for the exact rules),
/// ForEach* feeds the recovered entries to the caches, and the caches'
/// persistence hooks call Put*/Touch* as they fill/serve. Entries are
/// only ever *appended*; dead bytes (replaced or erased records) are
/// reclaimed by Vacuum(), which rewrites live records newest-last into a
/// temp file and atomically renames it in — a crash mid-vacuum leaves
/// the old journal untouched.
///
/// Failure policy: the store must never take a query down. An append
/// error (disk full, fault-injected kill) marks the store dead — every
/// later Put is a silent no-op (counted in stats().append_errors) and
/// the committed prefix of the journal stays valid for the next open.
///
/// Thread-safe: all operations take the store mutex; one store may be
/// shared by every session of a Database (and is, via the cache hooks).
class ResultStore {
 public:
  /// Opens (creating if needed) the journal under `options.path` and
  /// recovers its committed records. kIoError when the directory or
  /// journal cannot be created/read; a *corrupt* journal is not an
  /// error — bad records are dropped, counted, and overwritten.
  static Result<std::unique_ptr<ResultStore>> Open(StoreOptions options);

  /// Syncs per durability mode and joins any background vacuum.
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// --- warm-start reads (recovered, live entries) ---------------------
  /// Invoked in least-recently-used-first order, so feeding an LRU-capped
  /// cache leaves the most recent entries resident. Callbacks run under
  /// the store mutex; they must not call back into the store.
  ///
  /// `base_key`/`descriptor` are the structured cache-key halves of
  /// records written with them (kMaterialisationFlagHasDescriptor); both
  /// arrive empty for records from before predicate subsumption existed.
  void ForEachMaterialisation(
      const std::function<void(const std::string& store_key,
                               const std::string& base_key,
                               const std::string& descriptor,
                               const std::vector<std::string>& columns,
                               const std::vector<Tuple>& rows)>& fn);
  void ForEachPrompt(
      const std::function<void(const std::string& model,
                               const std::string& text,
                               const std::string& completion)>& fn);

  /// --- journal writes -------------------------------------------------
  /// Appends one record; replaces any live entry under the same key.
  /// When `base_key` or `descriptor` is non-empty the record carries the
  /// structured (base key, predicate descriptor) pair alongside the
  /// opaque store key, so the next open can warm-start subsumption-
  /// capable entries; the two-argument form writes a legacy v1 record.
  Status PutMaterialisation(const std::string& store_key,
                            const std::vector<std::string>& columns,
                            const std::vector<Tuple>& rows,
                            const std::string& base_key = std::string(),
                            const std::string& descriptor = std::string());
  Status PutPrompt(const std::string& model, const std::string& text,
                   const std::string& completion);

  /// Tombstones one materialisation (appended, reclaimed by vacuum).
  Status EraseMaterialisation(const std::string& fingerprint);

  /// Appends a clear marker dropping every live entry of the kind — the
  /// persistent mirror of MaterialisationCache::Clear / PromptCache::
  /// Clear, so a cleared cache is not resurrected at the next open.
  Status ClearMaterialisations();
  Status ClearPrompts();

  /// Marks an entry recently used (in-memory only — recency feeds the
  /// vacuum's LRU eviction; it is rebuilt as append order after a
  /// restart, never worth a disk write).
  void TouchMaterialisation(const std::string& fingerprint);
  void TouchPrompt(const std::string& model, const std::string& text);

  /// Compacts the journal now (synchronously): drops dead bytes, evicts
  /// LRU entries beyond max_bytes, atomically swaps the rewrite in.
  Status Vacuum();

  /// Durability barrier (fsync) regardless of mode.
  Status Sync();

  StoreStats stats() const;

  const StoreOptions& options() const { return options_; }

 private:
  struct LiveEntry {
    RecordType type = RecordType::kMaterialisation;
    int64_t offset = 0;      // frame start in the journal file
    int64_t frame_size = 0;  // header + key + payload
    uint64_t last_used = 0;  // recency sequence for LRU eviction
  };

  ResultStore() = default;

  std::string JournalPath() const { return options_.path + "/galois.store"; }
  std::string TempPath() const {
    return options_.path + "/galois.store.tmp";
  }

  /// Index key: one byte of record type + the record key, so a prompt
  /// can never collide with a fingerprint.
  static std::string IndexKey(RecordType type, const std::string& key) {
    std::string out(1, static_cast<char>(type));
    out.append(key);
    return out;
  }

  Status AppendLocked(RecordType type, const std::string& key,
                      const std::string& payload, bool track_live,
                      uint8_t flags = 0);
  void RemoveLiveLocked(const std::string& index_key);
  void ClearTypeLocked(RecordType type);
  Status VacuumLocked();
  void MaybeScheduleVacuum(std::unique_lock<std::mutex>* lock);

  /// Live entries of `type`, LRU-first, decoded from a fresh view.
  template <typename Fn>
  void ForEachLive(RecordType type, const Fn& fn);

  StoreOptions options_;
  StoreEnv* env_ = nullptr;

  mutable std::mutex mu_;
  std::unique_ptr<AppendFile> writer_;          // guarded by mu_
  std::unordered_map<std::string, LiveEntry> live_;  // guarded by mu_
  int64_t file_bytes_ = 0;                      // guarded by mu_
  int64_t live_bytes_ = 0;                      // guarded by mu_
  uint64_t tick_ = 0;                           // guarded by mu_
  bool dead_ = false;                           // guarded by mu_
  bool vacuum_scheduled_ = false;               // guarded by mu_
  StoreStats stats_;                            // guarded by mu_

  std::mutex bg_mu_;
  std::thread bg_vacuum_;  // guarded by bg_mu_
};

}  // namespace galois::store

#endif  // GALOIS_STORE_RESULT_STORE_H_
