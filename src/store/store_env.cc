#include "store/store_env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

namespace galois::store {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " '" + path + "': " + std::strerror(errno));
}

class PosixAppendFile : public AppendFile {
 public:
  PosixAppendFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t size) override {
    while (size > 0) {
      ssize_t n = ::write(fd_, data, size);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      data += n;
      size -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

/// mmap-backed view; unmapped on destruction.
class MmapFileView : public FileView {
 public:
  MmapFileView(const char* data, size_t size) : data_(data), size_(size) {}
  ~MmapFileView() override {
    if (size_ > 0) ::munmap(const_cast<char*>(data_), size_);
  }
  const char* data() const override { return data_; }
  size_t size() const override { return size_; }

 private:
  const char* data_;
  size_t size_;
};

/// Buffered-read fallback: the whole file copied into memory.
class BufferFileView : public FileView {
 public:
  explicit BufferFileView(std::string buffer)
      : buffer_(std::move(buffer)) {}
  const char* data() const override { return buffer_.data(); }
  size_t size() const override { return buffer_.size(); }

 private:
  std::string buffer_;
};

class PosixStoreEnv : public StoreEnv {
 public:
  Result<std::unique_ptr<AppendFile>> OpenAppend(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<AppendFile>(
        std::make_unique<PosixAppendFile>(fd, path));
  }

  Result<std::unique_ptr<FileView>> OpenView(const std::string& path,
                                             bool prefer_mmap) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = Errno("fstat", path);
      ::close(fd);
      return s;
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (prefer_mmap && size > 0) {
      void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped != MAP_FAILED) {
        ::close(fd);
        return std::unique_ptr<FileView>(std::make_unique<MmapFileView>(
            static_cast<const char*>(mapped), size));
      }
      // mmap unavailable (e.g. odd filesystem): fall through to the
      // buffered read below.
    }
    std::string buffer(size, '\0');
    size_t off = 0;
    while (off < size) {
      ssize_t n = ::read(fd, &buffer[off], size - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("read", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;  // file shrank under us; keep what we have
      off += static_cast<size_t>(n);
    }
    buffer.resize(off);
    ::close(fd);
    return std::unique_ptr<FileView>(
        std::make_unique<BufferFileView>(std::move(buffer)));
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<int64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<int64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, int64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink", path);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir", path);
    Status s = Status::OK();
    if (::fsync(fd) != 0) s = Errno("fsync dir", path);
    ::close(fd);
    return s;
  }

  int64_t NowMicros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

StoreEnv* StoreEnv::Default() {
  static PosixStoreEnv* env = new PosixStoreEnv();
  return env;
}

}  // namespace galois::store
