#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace galois::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",    "GROUP",  "BY",     "HAVING",
      "ORDER",  "LIMIT", "AS",       "AND",    "OR",     "NOT",
      "JOIN",   "INNER", "LEFT",     "RIGHT",  "OUTER",  "ON",
      "ASC",    "DESC",  "DISTINCT", "LIKE",   "IN",     "IS",
      "NULL",   "TRUE",  "FALSE",    "BETWEEN", "COUNT", "SUM",
      "AVG",    "MIN",   "MAX",
  };
  return *kKeywords;
}

}  // namespace

bool IsReservedKeyword(const std::string& word) {
  return Keywords().count(word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  auto push = [&](TokenType t, std::string text, size_t pos) {
    tokens.push_back(Token{t, std::move(text), pos});
  };
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                       query[i] == '.' || query[i] == 'e' || query[i] == 'E' ||
                       ((query[i] == '+' || query[i] == '-') && i > start &&
                        (query[i - 1] == 'e' || query[i - 1] == 'E')))) {
        if (query[i] == '.' || query[i] == 'e' || query[i] == 'E') {
          is_double = true;
        }
        ++i;
      }
      push(is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral,
           query.substr(start, i - start), start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        ++i;
      }
      std::string word = query.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        push(TokenType::kKeyword, upper, start);
      } else {
        push(TokenType::kIdentifier, word, start);
      }
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(query[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kStringLiteral, std::move(text), start);
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (query[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        text.push_back(query[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            "unterminated quoted identifier at offset " +
            std::to_string(start));
      }
      push(TokenType::kIdentifier, std::move(text), start);
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, ".", start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, ")", start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, "*", start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, "+", start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, "-", start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, "/", start);
        ++i;
        break;
      case '%':
        push(TokenType::kPercent, "%", start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, ";", start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenType::kNotEq, "!=", start);
          i += 2;
        } else {
          return Status::ParseError("unexpected character '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenType::kLtEq, "<=", start);
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '>') {
          push(TokenType::kNotEq, "<>", start);
          i += 2;
        } else {
          push(TokenType::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          push(TokenType::kGtEq, ">=", start);
          i += 2;
        } else {
          push(TokenType::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
  }
  push(TokenType::kEof, "", n);
  return tokens;
}

}  // namespace galois::sql
