#ifndef GALOIS_SQL_PARSER_H_
#define GALOIS_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace galois::sql {

/// Parses one SELECT statement in the SPJA dialect.
///
/// Supported grammar (case-insensitive keywords):
///   SELECT [DISTINCT] item[, item]*
///   FROM table_ref[, table_ref]* (JOIN table_ref ON expr)*
///   [WHERE expr] [GROUP BY expr[, expr]*] [HAVING expr]
///   [ORDER BY expr [ASC|DESC][, ...]] [LIMIT n] [;]
/// where table_ref := [source '.'] table [[AS] alias] and expressions cover
/// literals, column refs, arithmetic, comparisons, AND/OR/NOT, LIKE,
/// BETWEEN, IN lists, IS [NOT] NULL, and aggregate calls
/// (COUNT/SUM/AVG/MIN/MAX, with DISTINCT and COUNT(*)).
Result<SelectStatement> ParseSelect(const std::string& query);

}  // namespace galois::sql

#endif  // GALOIS_SQL_PARSER_H_
