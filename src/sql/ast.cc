#include "sql/ast.h"

#include <functional>
#include <sstream>

#include "common/strings.h"

namespace galois::sql {

const char* AggregateFunctionName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "?";
}

namespace {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kPlus:
      return "+";
    case BinaryOp::kMinus:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == DataType::kString) {
        return "'" + literal.string_value() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT (" : "-(") +
             children[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpSymbol(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kFunction: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kBetween:
      return "(" + children[0]->ToString() + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString() +
             ")";
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString() +
                        (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      out += "))";
      return out;
    }
    case ExprKind::kIsNull:
      return "(" + children[0]->ToString() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->function_name = function_name;
  out->distinct = distinct;
  out->negated = negated;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args,
                           bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = ToUpper(name);
  e->children = std::move(args);
  e->distinct = distinct;
  return e;
}

std::string SelectStatement::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) os << ", ";
    os << select_list[i].expr->ToString();
    if (!select_list[i].alias.empty()) os << " AS " << select_list[i].alias;
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    if (!from[i].source.empty()) os << from[i].source << ".";
    os << from[i].table;
    if (!from[i].alias.empty()) os << " " << from[i].alias;
  }
  for (const auto& j : joins) {
    os << (j.type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ");
    if (!j.table.source.empty()) os << j.table.source << ".";
    os << j.table.table;
    if (!j.table.alias.empty()) os << " " << j.table.alias;
    if (j.condition) os << " ON " << j.condition->ToString();
  }
  if (where) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having) os << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr->ToString();
      if (order_by[i].descending) os << " DESC";
    }
  }
  if (limit.has_value()) os << " LIMIT " << *limit;
  return os.str();
}

void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const auto& c : e.children) VisitExpr(*c, fn);
}

bool ContainsAggregate(const Expr& e) {
  bool found = false;
  VisitExpr(e, [&](const Expr& node) {
    if (node.kind == ExprKind::kFunction) {
      const std::string& f = node.function_name;
      if (f == "COUNT" || f == "SUM" || f == "AVG" || f == "MIN" ||
          f == "MAX") {
        found = true;
      }
    }
  });
  return found;
}

}  // namespace galois::sql
