#ifndef GALOIS_SQL_TOKEN_H_
#define GALOIS_SQL_TOKEN_H_

#include <string>

namespace galois::sql {

/// Lexical token categories of the SQL dialect.
enum class TokenType {
  kEof,
  kIdentifier,    // foo, "quoted id"
  kKeyword,       // SELECT, FROM, ... (normalised upper-case in `text`)
  kIntLiteral,    // 42
  kDoubleLiteral, // 4.2, 1e9
  kStringLiteral, // 'text'
  // punctuation / operators
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNotEq,     // != or <>
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kSemicolon,
};

/// One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // raw (keywords upper-cased, string literals unquoted)
  size_t position = 0;  // byte offset into the query

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace galois::sql

#endif  // GALOIS_SQL_TOKEN_H_
