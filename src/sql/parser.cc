#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "sql/lexer.h"

namespace galois::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    GALOIS_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelectBody());
    // optional trailing semicolon
    if (Current().type == TokenType::kSemicolon) Advance();
    if (Current().type != TokenType::kEof) {
      return Unexpected("end of query");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Current().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Unexpected("keyword " + kw);
    return Status::OK();
  }

  bool Accept(TokenType t) {
    if (Current().type == t) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenType t, const std::string& what) {
    if (!Accept(t)) return Unexpected(what);
    return Status::OK();
  }

  Status Unexpected(const std::string& expected) const {
    return Status::ParseError("expected " + expected + " but found '" +
                              (Current().type == TokenType::kEof
                                   ? "<eof>"
                                   : Current().text) +
                              "' at offset " +
                              std::to_string(Current().position));
  }

  Result<SelectStatement> ParseSelectBody() {
    SelectStatement stmt;
    GALOIS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    stmt.distinct = AcceptKeyword("DISTINCT");
    // select list
    while (true) {
      SelectItem item;
      GALOIS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Current().type != TokenType::kIdentifier) {
          return Unexpected("alias identifier after AS");
        }
        item.alias = Current().text;
        Advance();
      } else if (Current().type == TokenType::kIdentifier) {
        item.alias = Current().text;
        Advance();
      }
      stmt.select_list.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }
    GALOIS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    // from list
    while (true) {
      GALOIS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt.from.push_back(std::move(ref));
      if (!Accept(TokenType::kComma)) break;
    }
    // explicit joins
    while (true) {
      JoinType jt = JoinType::kInner;
      if (AcceptKeyword("JOIN")) {
        jt = JoinType::kInner;
      } else if (Current().IsKeyword("INNER") &&
                 Peek().IsKeyword("JOIN")) {
        Advance();
        Advance();
      } else if (Current().IsKeyword("LEFT")) {
        Advance();
        AcceptKeyword("OUTER");
        GALOIS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kLeft;
      } else {
        break;
      }
      JoinClause clause;
      clause.type = jt;
      GALOIS_ASSIGN_OR_RETURN(clause.table, ParseTableRef());
      GALOIS_RETURN_IF_ERROR(ExpectKeyword("ON"));
      GALOIS_ASSIGN_OR_RETURN(clause.condition, ParseExpr());
      stmt.joins.push_back(std::move(clause));
    }
    if (AcceptKeyword("WHERE")) {
      GALOIS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      GALOIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        GALOIS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      GALOIS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      GALOIS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        GALOIS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Current().type != TokenType::kIntLiteral) {
        return Unexpected("integer after LIMIT");
      }
      stmt.limit = std::strtoll(Current().text.c_str(), nullptr, 10);
      Advance();
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Current().type != TokenType::kIdentifier) {
      return Unexpected("table name");
    }
    std::string first = Current().text;
    Advance();
    if (Accept(TokenType::kDot)) {
      if (Current().type != TokenType::kIdentifier) {
        return Unexpected("table name after source qualifier");
      }
      ref.source = ToUpper(first);
      ref.table = Current().text;
      Advance();
    } else {
      ref.table = first;
    }
    if (AcceptKeyword("AS")) {
      if (Current().type != TokenType::kIdentifier) {
        return Unexpected("alias after AS");
      }
      ref.alias = Current().text;
      Advance();
    } else if (Current().type == TokenType::kIdentifier) {
      ref.alias = Current().text;
      Advance();
    }
    return ref;
  }

  // Expression grammar, lowest precedence first.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    GALOIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    GALOIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    GALOIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (Current().IsKeyword("IS")) {
      Advance();
      bool negated = AcceptKeyword("NOT");
      GALOIS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] BETWEEN / IN / LIKE
    bool negated = false;
    if (Current().IsKeyword("NOT") &&
        (Peek().IsKeyword("BETWEEN") || Peek().IsKeyword("IN") ||
         Peek().IsKeyword("LIKE"))) {
      negated = true;
      Advance();
    }
    if (AcceptKeyword("BETWEEN")) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      GALOIS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      GALOIS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      ExprPtr out(std::move(e));
      if (negated) out = Expr::MakeUnary(UnaryOp::kNot, std::move(out));
      return out;
    }
    if (AcceptKeyword("IN")) {
      GALOIS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      while (true) {
        GALOIS_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->children.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
      GALOIS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::move(e));
    }
    if (AcceptKeyword("LIKE")) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr out =
          Expr::MakeBinary(BinaryOp::kLike, std::move(lhs), std::move(rhs));
      if (negated) out = Expr::MakeUnary(UnaryOp::kNot, std::move(out));
      return out;
    }
    BinaryOp op;
    switch (Current().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNotEq:
        op = BinaryOp::kNotEq;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLtEq:
        op = BinaryOp::kLtEq;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGtEq:
        op = BinaryOp::kGtEq;
        break;
      default:
        return lhs;
    }
    Advance();
    GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    GALOIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Current().type == TokenType::kPlus) {
        op = BinaryOp::kPlus;
      } else if (Current().type == TokenType::kMinus) {
        op = BinaryOp::kMinus;
      } else {
        break;
      }
      Advance();
      GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    GALOIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Current().type == TokenType::kStar) {
        op = BinaryOp::kMul;
      } else if (Current().type == TokenType::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Current().type == TokenType::kPercent) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      GALOIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenType::kMinus)) {
      GALOIS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    if (Accept(TokenType::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  bool IsAggregateKeyword(const Token& t) const {
    return t.type == TokenType::kKeyword &&
           (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
            t.text == "MIN" || t.text == "MAX");
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Current();
    switch (tok.type) {
      case TokenType::kIntLiteral: {
        int64_t v = std::strtoll(tok.text.c_str(), nullptr, 10);
        Advance();
        return Expr::MakeLiteral(Value::Int(v));
      }
      case TokenType::kDoubleLiteral: {
        double v = std::strtod(tok.text.c_str(), nullptr);
        Advance();
        return Expr::MakeLiteral(Value::Double(v));
      }
      case TokenType::kStringLiteral: {
        std::string s = tok.text;
        Advance();
        return Expr::MakeLiteral(Value::String(std::move(s)));
      }
      case TokenType::kStar:
        Advance();
        return Expr::MakeStar();
      case TokenType::kLParen: {
        Advance();
        GALOIS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        GALOIS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword: {
        if (tok.text == "NULL") {
          Advance();
          return Expr::MakeLiteral(Value::Null());
        }
        if (tok.text == "TRUE") {
          Advance();
          return Expr::MakeLiteral(Value::Bool(true));
        }
        if (tok.text == "FALSE") {
          Advance();
          return Expr::MakeLiteral(Value::Bool(false));
        }
        if (IsAggregateKeyword(tok)) {
          std::string name = tok.text;
          Advance();
          GALOIS_RETURN_IF_ERROR(
              Expect(TokenType::kLParen, "'(' after " + name));
          bool distinct = AcceptKeyword("DISTINCT");
          std::vector<ExprPtr> args;
          if (Current().type == TokenType::kStar) {
            Advance();
            args.push_back(Expr::MakeStar());
          } else {
            GALOIS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          }
          GALOIS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return Expr::MakeFunction(name, std::move(args), distinct);
        }
        return Unexpected("expression");
      }
      case TokenType::kIdentifier: {
        std::string first = tok.text;
        Advance();
        if (Current().type == TokenType::kDot) {
          Advance();
          if (Current().type == TokenType::kStar) {
            // alias.* — treated as star scoped to the alias.
            Advance();
            auto e = Expr::MakeStar();
            e->table = first;
            return e;
          }
          if (Current().type != TokenType::kIdentifier) {
            return Unexpected("column name after '.'");
          }
          std::string col = Current().text;
          Advance();
          return Expr::MakeColumnRef(first, std::move(col));
        }
        // plain function call on identifier? none in the dialect; treat as
        // unqualified column ref.
        return Expr::MakeColumnRef("", std::move(first));
      }
      default:
        return Unexpected("expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& query) {
  GALOIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace galois::sql
