#ifndef GALOIS_SQL_AST_H_
#define GALOIS_SQL_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace galois::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,      // 42, 'text', TRUE, NULL
  kColumnRef,    // name  |  alias.name
  kStar,         // * (only valid inside COUNT(*) or SELECT *)
  kUnary,        // NOT e, -e
  kBinary,       // e op e
  kFunction,     // AVG(e), COUNT(DISTINCT e), ...
  kBetween,      // e BETWEEN lo AND hi
  kInList,       // e IN (v1, v2, ...)
  kIsNull,       // e IS [NOT] NULL
};

enum class BinaryOp {
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAnd, kOr,
  kPlus, kMinus, kMul, kDiv, kMod,
  kLike,
};

enum class UnaryOp { kNot, kNegate };

/// Names of the aggregate functions (subset used by SPJA queries).
enum class AggregateFunction { kCount, kSum, kAvg, kMin, kMax };

/// Renders "AVG" etc.
const char* AggregateFunctionName(AggregateFunction f);

/// A SQL expression tree node. A single struct (rather than a class
/// hierarchy) keeps the parser and binder compact; `kind` selects which
/// fields are meaningful.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;  // alias qualifier; empty when unqualified
  std::string column;

  // kUnary / kBinary / kFunction / kBetween / kInList / kIsNull
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  std::string function_name;          // normalised upper-case
  bool distinct = false;              // COUNT(DISTINCT x)
  bool negated = false;               // IS NOT NULL, NOT IN
  std::vector<ExprPtr> children;      // operands / args / IN-list items

  /// SQL-ish rendering for diagnostics and prompt generation.
  std::string ToString() const;

  /// Deep copy.
  ExprPtr Clone() const;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumnRef(std::string table, std::string column);
  static ExprPtr MakeStar();
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args,
                              bool distinct);
};

/// One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when none
};

/// A base table reference: [source.]table [AS] alias. The optional source
/// prefix selects the storage engine, e.g. `LLM.country c` / `DB.Employees e`
/// in the paper's hybrid query; empty means the catalog default.
struct TableRef {
  std::string source;  // "LLM", "DB" or ""
  std::string table;
  std::string alias;   // defaults to table name when empty

  std::string EffectiveAlias() const { return alias.empty() ? table : alias; }
};

enum class JoinType { kInner, kLeft };

/// An explicit JOIN clause (`JOIN t ON cond`).
struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr condition;
};

/// ORDER BY item.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement (the SPJA dialect: select-project-join with
/// aggregates, GROUP BY / HAVING / ORDER BY / LIMIT / DISTINCT).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;       // comma-separated relations
  std::vector<JoinClause> joins;    // explicit JOINs chained after from[0]
  ExprPtr where;                    // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // may be null
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// Round-trippable-ish SQL rendering for diagnostics.
  std::string ToString() const;
};

/// Walks an expression tree pre-order, invoking `fn` on every node.
void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn);

/// True if the expression contains an aggregate function call.
bool ContainsAggregate(const Expr& e);

}  // namespace galois::sql

#endif  // GALOIS_SQL_AST_H_
