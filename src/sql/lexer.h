#ifndef GALOIS_SQL_LEXER_H_
#define GALOIS_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace galois::sql {

/// Tokenises `query` into a vector ending with a kEof token.
///
/// Keywords are recognised case-insensitively and normalised to upper case;
/// identifiers keep their original spelling. String literals use single
/// quotes with '' as the escape; quoted identifiers use double quotes.
Result<std::vector<Token>> Tokenize(const std::string& query);

/// True if `word` (upper-case) is a reserved keyword of the dialect.
bool IsReservedKeyword(const std::string& word);

}  // namespace galois::sql

#endif  // GALOIS_SQL_LEXER_H_
