#ifndef GALOIS_QA_QA_BASELINE_H_
#define GALOIS_QA_QA_BASELINE_H_

#include <string>

#include "common/result.h"
#include "knowledge/workload.h"
#include "llm/language_model.h"
#include "types/relation.h"

namespace galois::qa {

/// Outcome of one QA-baseline run: the raw text the model produced and the
/// relation recovered by the post-processing step.
struct QaResult {
  std::string raw_answer;
  Relation relation;
};

/// Runs the paper's T_M baseline: asks the query's NL paraphrase as a
/// single question and post-processes the textual answer into a relation
/// with the ground-truth schema.
Result<QaResult> RunNlQuestion(llm::LanguageModel* model,
                               const knowledge::QuerySpec& query,
                               const Schema& expected_schema);

/// Runs the T^C_M baseline: same question with the engineered
/// chain-of-thought prompt (fixed worked example + "think step by step").
Result<QaResult> RunChainOfThought(llm::LanguageModel* model,
                                   const knowledge::QuerySpec& query,
                                   const Schema& expected_schema);

}  // namespace galois::qa

#endif  // GALOIS_QA_QA_BASELINE_H_
