#ifndef GALOIS_QA_TEXT_RECORDS_H_
#define GALOIS_QA_TEXT_RECORDS_H_

#include <string>

#include "common/result.h"
#include "types/relation.h"

namespace galois::qa {

/// Removes a chain-of-thought preamble, keeping the text after the final
/// "Final answer:" marker (or the whole text when absent).
std::string StripChainOfThought(const std::string& answer);

/// Converts a free-text QA answer into a relation with `expected_schema`.
///
/// This mechanises the paper's manual post-processing (Section 5,
/// Evaluation: "we split comma-separated values, remove repeated values
/// and punctuation, and map the resulting tuples to the ground truth
/// records"):
///   * lines become candidate records; leading bullets are stripped;
///   * "a: b: c" separates fields; a single-column schema also splits
///     comma lists into individual records;
///   * each field is normalised through the cleaning layer to the expected
///     column type; rows whose every field is NULL are dropped;
///   * exact duplicate records are removed.
Result<Relation> TextToRelation(const std::string& answer,
                                const Schema& expected_schema);

}  // namespace galois::qa

#endif  // GALOIS_QA_TEXT_RECORDS_H_
