#include "qa/text_records.h"

#include "clean/normalize.h"
#include "common/strings.h"

namespace galois::qa {

std::string StripChainOfThought(const std::string& answer) {
  const std::string marker = "Final answer:";
  size_t pos = answer.rfind(marker);
  if (pos == std::string::npos) return answer;
  return Trim(answer.substr(pos + marker.size()));
}

Result<Relation> TextToRelation(const std::string& answer,
                                const Schema& expected_schema) {
  Relation out(expected_schema);
  std::string body = StripChainOfThought(answer);
  if (clean::IsUnknown(body)) return out;

  const size_t arity = expected_schema.size();
  std::vector<std::vector<std::string>> records;
  for (std::string& line :
       Split(body, '\n', /*trim=*/true, /*skip_empty=*/true)) {
    std::string s = line;
    if (StartsWith(s, "- ") || StartsWith(s, "* ")) s = s.substr(2);
    if (clean::IsUnknown(s)) continue;
    if (arity == 1) {
      // Single column: comma lists are multiple records.
      for (std::string& piece :
           Split(s, ',', /*trim=*/true, /*skip_empty=*/true)) {
        records.push_back({piece});
      }
      continue;
    }
    // Multi column: "a: b: c" fields.
    std::vector<std::string> fields =
        Split(s, ':', /*trim=*/true, /*skip_empty=*/false);
    if (fields.size() > arity) {
      // Merge overflow into the last field (values may contain ':').
      std::vector<std::string> merged(fields.begin(),
                                      fields.begin() + arity - 1);
      std::string tail = fields[arity - 1];
      for (size_t i = arity; i < fields.size(); ++i) {
        tail += ":" + fields[i];
      }
      merged.push_back(tail);
      fields = std::move(merged);
    }
    while (fields.size() < arity) fields.emplace_back("");
    records.push_back(std::move(fields));
  }

  for (const auto& rec : records) {
    Tuple row;
    row.reserve(arity);
    bool any_value = false;
    for (size_t c = 0; c < arity; ++c) {
      clean::DomainConstraint domain = clean::DefaultDomainForColumn(
          expected_schema.column(c).name);
      GALOIS_ASSIGN_OR_RETURN(
          Value v, clean::NormalizeCell(rec[c],
                                        expected_schema.column(c).type,
                                        &domain));
      if (!v.is_null()) any_value = true;
      row.push_back(std::move(v));
    }
    if (any_value) out.AddRowUnchecked(std::move(row));
  }
  out.DedupRows();
  return out;
}

}  // namespace galois::qa
