#include "qa/qa_baseline.h"

#include "llm/prompt_templates.h"
#include "qa/text_records.h"

namespace galois::qa {

namespace {

Result<QaResult> Run(llm::LanguageModel* model,
                     const knowledge::QuerySpec& query,
                     const Schema& expected_schema,
                     bool chain_of_thought) {
  llm::FreeformIntent intent;
  intent.question = query.question;
  intent.sql = query.sql;
  intent.chain_of_thought = chain_of_thought;
  llm::Prompt prompt = llm::BuildFreeformPrompt(intent);
  GALOIS_ASSIGN_OR_RETURN(llm::Completion completion,
                          model->Complete(prompt));
  QaResult result;
  result.raw_answer = completion.text;
  GALOIS_ASSIGN_OR_RETURN(
      result.relation, TextToRelation(completion.text, expected_schema));
  return result;
}

}  // namespace

Result<QaResult> RunNlQuestion(llm::LanguageModel* model,
                               const knowledge::QuerySpec& query,
                               const Schema& expected_schema) {
  return Run(model, query, expected_schema, /*chain_of_thought=*/false);
}

Result<QaResult> RunChainOfThought(llm::LanguageModel* model,
                                   const knowledge::QuerySpec& query,
                                   const Schema& expected_schema) {
  return Run(model, query, expected_schema, /*chain_of_thought=*/true);
}

}  // namespace galois::qa
