#include "catalog/catalog.h"

#include "common/strings.h"

namespace galois::catalog {

const char* SourceKindName(SourceKind k) {
  switch (k) {
    case SourceKind::kDb:
      return "DB";
    case SourceKind::kLlm:
      return "LLM";
  }
  return "?";
}

Result<size_t> TableDef::KeyIndex() const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, key_column)) return i;
  }
  return Status::NotFound("key column '" + key_column +
                          "' not found in table '" + name + "'");
}

Result<const ColumnDef*> TableDef::FindColumn(
    const std::string& col_name) const {
  for (const ColumnDef& c : columns) {
    if (EqualsIgnoreCase(c.name, col_name)) return &c;
  }
  return Status::NotFound("column '" + col_name + "' not found in table '" +
                          name + "'");
}

Schema TableDef::ToSchema(const std::string& alias) const {
  Schema schema;
  const std::string& qualifier = alias.empty() ? name : alias;
  for (const ColumnDef& c : columns) {
    schema.AddColumn(Column(c.name, c.type, qualifier));
  }
  return schema;
}

Status Catalog::AddTable(TableDef def) {
  std::string key = ToLower(def.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + def.name +
                                 "' already registered");
  }
  if (!def.key_column.empty()) {
    GALOIS_RETURN_IF_ERROR(def.KeyIndex().status());
  }
  tables_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, def] : tables_) names.push_back(def.name);
  return names;
}

Status Catalog::AddInstance(const std::string& table_name,
                            Relation relation) {
  std::string key = ToLower(table_name);
  if (tables_.count(key) == 0) {
    return Status::NotFound("cannot add instance for unknown table '" +
                            table_name + "'");
  }
  instances_[key] = std::move(relation);
  return Status::OK();
}

Result<const Relation*> Catalog::GetInstance(
    const std::string& table_name) const {
  auto it = instances_.find(ToLower(table_name));
  if (it == instances_.end()) {
    return Status::NotFound("no instance registered for table '" +
                            table_name + "'");
  }
  return &it->second;
}

}  // namespace galois::catalog
