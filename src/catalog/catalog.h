#ifndef GALOIS_CATALOG_CATALOG_H_
#define GALOIS_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/relation.h"

namespace galois::catalog {

/// Which storage engine serves a table. The paper's hybrid queries mix
/// `LLM.` tables (materialised by prompting the language model) with `DB.`
/// tables (ordinary relations).
enum class SourceKind { kDb, kLlm };

const char* SourceKindName(SourceKind k);

/// Column metadata. `description` is a short natural-language gloss used by
/// the prompt generator when the raw label would be cryptic (Section 6,
/// "how to generate [prompts] automatically given only the attribute
/// labels").
struct ColumnDef {
  std::string name;
  DataType type = DataType::kString;
  bool is_key = false;
  std::string description;

  ColumnDef() = default;
  ColumnDef(std::string n, DataType t, bool key = false,
            std::string desc = "")
      : name(std::move(n)), type(t), is_key(key),
        description(std::move(desc)) {}
};

/// Table metadata. Per the paper's assumption (Section 3, "Tuples and
/// Keys") every relation has a single-attribute key, named by
/// `key_column`; `entity_type` is the natural-language type of the keyed
/// entity ("country", "city", "airport"), used to phrase prompts.
struct TableDef {
  std::string name;
  SourceKind default_source = SourceKind::kLlm;
  std::vector<ColumnDef> columns;
  std::string key_column;
  std::string entity_type;

  /// Optimiser statistic: expected number of entities behind the table
  /// (0 = unknown). Drives the auto pushdown policy.
  size_t expected_rows = 0;

  /// Index of `key_column` in `columns` (or error).
  Result<size_t> KeyIndex() const;

  /// Column lookup by (case-insensitive) name.
  Result<const ColumnDef*> FindColumn(const std::string& name) const;

  /// Materialises the schema, qualifying columns with `alias` (or the table
  /// name when alias is empty).
  Schema ToSchema(const std::string& alias = "") const;
};

/// In-memory catalog: table definitions plus the ground-truth DB instances
/// (the Spider-like relations used both by the ground-truth executor and by
/// hybrid `DB.` scans).
class Catalog {
 public:
  Status AddTable(TableDef def);
  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Registers/fetches the relational instance backing `table_name`.
  Status AddInstance(const std::string& table_name, Relation relation);
  Result<const Relation*> GetInstance(const std::string& table_name) const;

 private:
  // Keyed by lower-cased table name.
  std::map<std::string, TableDef> tables_;
  std::map<std::string, Relation> instances_;
};

}  // namespace galois::catalog

#endif  // GALOIS_CATALOG_CATALOG_H_
