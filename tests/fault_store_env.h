// Fault-scheduled StoreEnv for the crash/corruption tests: kills writes
// after a byte budget (leaving the torn prefix a real process kill would
// leave), fails fsyncs and renames on demand, and counts everything.
// Deterministic — no signals, no subprocesses, no actual crashes — so a
// failure in store_recovery_test.cc replays exactly.
//
// Header-only test support; production code must never include this.

#ifndef GALOIS_TESTS_FAULT_STORE_ENV_H_
#define GALOIS_TESTS_FAULT_STORE_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "store/store_env.h"

namespace galois::store::testing {

class FaultStoreEnv : public StoreEnv {
 public:
  explicit FaultStoreEnv(StoreEnv* inner = StoreEnv::Default())
      : inner_(inner) {}

  /// After `budget` more appended bytes, every Append fails — the failing
  /// call writes exactly the remaining budget first (the torn prefix of a
  /// mid-write kill). Negative disables (the default).
  void SetWriteBudget(int64_t budget) {
    std::lock_guard<std::mutex> lock(mu_);
    write_budget_ = budget;
  }
  void ClearWriteBudget() { SetWriteBudget(-1); }

  void FailSyncs(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_syncs_ = fail;
  }
  void FailRenames(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_renames_ = fail;
  }

  int64_t bytes_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_appended_;
  }
  int64_t syncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_;
  }

  Result<std::unique_ptr<AppendFile>> OpenAppend(
      const std::string& path) override {
    auto inner = inner_->OpenAppend(path);
    if (!inner.ok()) return inner.status();
    return {std::make_unique<FaultAppendFile>(this,
                                              std::move(inner).value())};
  }
  Result<std::unique_ptr<FileView>> OpenView(const std::string& path,
                                             bool prefer_mmap) override {
    return inner_->OpenView(path, prefer_mmap);
  }
  bool FileExists(const std::string& path) override {
    return inner_->FileExists(path);
  }
  Result<int64_t> FileSize(const std::string& path) override {
    return inner_->FileSize(path);
  }
  Status Truncate(const std::string& path, int64_t size) override {
    return inner_->Truncate(path, size);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fail_renames_) return Status::IoError("injected rename failure");
    }
    return inner_->Rename(from, to);
  }
  Status Remove(const std::string& path) override {
    return inner_->Remove(path);
  }
  Status CreateDir(const std::string& path) override {
    return inner_->CreateDir(path);
  }
  Status SyncDir(const std::string& path) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (fail_syncs_) return Status::IoError("injected dir-sync failure");
    }
    return inner_->SyncDir(path);
  }
  int64_t NowMicros() override { return inner_->NowMicros(); }

 private:
  class FaultAppendFile : public AppendFile {
   public:
    FaultAppendFile(FaultStoreEnv* env, std::unique_ptr<AppendFile> inner)
        : env_(env), inner_(std::move(inner)) {}

    Status Append(const char* data, size_t size) override {
      size_t allowed = size;
      bool killed = false;
      {
        std::lock_guard<std::mutex> lock(env_->mu_);
        if (env_->write_budget_ >= 0) {
          if (static_cast<int64_t>(size) > env_->write_budget_) {
            allowed = static_cast<size_t>(env_->write_budget_);
            killed = true;
          }
          env_->write_budget_ -= static_cast<int64_t>(allowed);
        }
        env_->bytes_appended_ += static_cast<int64_t>(allowed);
      }
      if (allowed > 0) {
        Status s = inner_->Append(data, allowed);
        if (!s.ok()) return s;
      }
      if (killed) return Status::IoError("injected write kill (torn)");
      return Status::OK();
    }

    Status Sync() override {
      {
        std::lock_guard<std::mutex> lock(env_->mu_);
        if (env_->fail_syncs_) {
          return Status::IoError("injected sync failure");
        }
        ++env_->syncs_;
      }
      return inner_->Sync();
    }

   private:
    FaultStoreEnv* env_;
    std::unique_ptr<AppendFile> inner_;
  };

  StoreEnv* inner_;
  mutable std::mutex mu_;
  int64_t write_budget_ = -1;  // guarded by mu_; <0 = unlimited
  bool fail_syncs_ = false;    // guarded by mu_
  bool fail_renames_ = false;  // guarded by mu_
  int64_t bytes_appended_ = 0;  // guarded by mu_
  int64_t syncs_ = 0;           // guarded by mu_
};

}  // namespace galois::store::testing

#endif  // GALOIS_TESTS_FAULT_STORE_ENV_H_
