// Unit tests for the classic physical operators: filter, joins,
// aggregation, sort, limit, distinct.

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "sql/parser.h"

namespace galois::engine {
namespace {

sql::ExprPtr ParsePredicate(const std::string& pred) {
  auto stmt = sql::ParseSelect("SELECT x FROM t WHERE " + pred);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return std::move(stmt.value().where);
}

Relation Cities() {
  Relation r(Schema({Column("name", DataType::kString, "ci"),
                     Column("country", DataType::kString, "ci"),
                     Column("pop", DataType::kInt64, "ci")}));
  r.AddRowUnchecked({Value::String("Rome"), Value::String("Italy"),
                     Value::Int(2800000)});
  r.AddRowUnchecked({Value::String("Milan"), Value::String("Italy"),
                     Value::Int(1350000)});
  r.AddRowUnchecked({Value::String("Paris"), Value::String("France"),
                     Value::Int(2100000)});
  r.AddRowUnchecked({Value::String("Lyon"), Value::String("France"),
                     Value::Int(510000)});
  r.AddRowUnchecked({Value::String("Atlantis"), Value::Null(),
                     Value::Int(0)});
  return r;
}

Relation Countries() {
  Relation r(Schema({Column("name", DataType::kString, "co"),
                     Column("continent", DataType::kString, "co")}));
  r.AddRowUnchecked({Value::String("Italy"), Value::String("Europe")});
  r.AddRowUnchecked({Value::String("France"), Value::String("Europe")});
  r.AddRowUnchecked({Value::String("Japan"), Value::String("Asia")});
  return r;
}

TEST(OperatorsTest, FilterKeepsMatching) {
  auto pred = ParsePredicate("pop > 1000000");
  auto out = Filter(Cities(), *pred);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->NumRows(), 3u);
}

TEST(OperatorsTest, FilterNullPredicateDropsRow) {
  auto pred = ParsePredicate("country = 'Italy'");
  auto out = Filter(Cities(), *pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);  // Atlantis' NULL country drops out
}

TEST(OperatorsTest, CrossJoinCardinality) {
  auto out = CrossJoin(Cities(), Countries());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 15u);
  EXPECT_EQ(out->NumColumns(), 5u);
}

TEST(OperatorsTest, HashJoinMatchesEquiPairs) {
  auto out = HashJoin(Cities(), Countries(), /*left_col=*/1,
                      /*right_col=*/0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 4u);  // Atlantis NULL key never matches
  // Every output row satisfies the join condition.
  for (const Tuple& row : out->rows()) {
    EXPECT_EQ(row[1].string_value(), row[3].string_value());
  }
}

TEST(OperatorsTest, HashJoinColumnOutOfRange) {
  EXPECT_FALSE(HashJoin(Cities(), Countries(), 9, 0).ok());
  EXPECT_FALSE(HashJoin(Cities(), Countries(), 0, 9).ok());
}

TEST(OperatorsTest, NestedLoopJoinEqualsHashJoinOnEquiJoin) {
  auto pred = ParsePredicate("ci.country = co.name");
  auto nl = NestedLoopJoin(Cities(), Countries(), *pred);
  auto hash = HashJoin(Cities(), Countries(), 1, 0);
  ASSERT_TRUE(nl.ok());
  ASSERT_TRUE(hash.ok());
  EXPECT_TRUE(nl->SameContents(*hash));
}

TEST(OperatorsTest, NestedLoopJoinThetaPredicate) {
  auto pred = ParsePredicate("ci.pop > 2000000 AND co.continent = 'Europe'");
  auto out = NestedLoopJoin(Cities(), Countries(), *pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 4u);  // {Rome, Paris} x {Italy, France}
}

TEST(OperatorsTest, LeftOuterJoinPadsUnmatched) {
  auto pred = ParsePredicate("ci.country = co.name");
  auto out = LeftOuterJoin(Cities(), Countries(), *pred);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 5u);  // 4 matches + Atlantis padded
  bool found_padded = false;
  for (const Tuple& row : out->rows()) {
    if (row[0].string_value() == "Atlantis") {
      EXPECT_TRUE(row[3].is_null());
      EXPECT_TRUE(row[4].is_null());
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(OperatorsTest, ProjectComputesExpressions) {
  auto stmt = sql::ParseSelect("SELECT pop / 1000 FROM t");
  ASSERT_TRUE(stmt.ok());
  std::vector<const sql::Expr*> exprs{stmt.value().select_list[0].expr.get()};
  auto out = Project(Cities(), exprs, {"popK"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).name, "popK");
  EXPECT_DOUBLE_EQ(out->At(0, 0).double_value(), 2800.0);
}

TEST(OperatorsTest, ProjectArityMismatch) {
  auto stmt = sql::ParseSelect("SELECT pop FROM t");
  std::vector<const sql::Expr*> exprs{stmt.value().select_list[0].expr.get()};
  EXPECT_FALSE(Project(Cities(), exprs, {"a", "b"}).ok());
}

TEST(OperatorsTest, SortAscendingAndDescending) {
  sql::OrderItem item;
  auto stmt = sql::ParseSelect("SELECT x FROM t ORDER BY pop DESC");
  ASSERT_TRUE(stmt.ok());
  auto out = Sort(Cities(), stmt.value().order_by);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 0).string_value(), "Rome");
  EXPECT_EQ(out->At(4, 0).string_value(), "Atlantis");
}

TEST(OperatorsTest, SortStability) {
  auto stmt = sql::ParseSelect("SELECT x FROM t ORDER BY country");
  auto out = Sort(Cities(), stmt.value().order_by);
  ASSERT_TRUE(out.ok());
  // NULL country first, then France rows in input order, then Italy.
  EXPECT_EQ(out->At(0, 0).string_value(), "Atlantis");
  EXPECT_EQ(out->At(1, 0).string_value(), "Paris");
  EXPECT_EQ(out->At(2, 0).string_value(), "Lyon");
}

TEST(OperatorsTest, LimitTruncates) {
  Relation out = Limit(Cities(), 2);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(Limit(Cities(), 100).NumRows(), 5u);
  EXPECT_EQ(Limit(Cities(), 0).NumRows(), 0u);
}

TEST(OperatorsTest, DistinctRemovesDuplicates) {
  Relation r(Schema({Column("x", DataType::kInt64)}));
  for (int v : {1, 2, 1, 3, 2, 1}) r.AddRowUnchecked({Value::Int(v)});
  EXPECT_EQ(Distinct(r).NumRows(), 3u);
}

// --- aggregation ---------------------------------------------------------

struct AggCase {
  std::string agg_sql;    // e.g. "SUM(pop)"
  double expected;        // expected scalar over Cities()
};

class ScalarAggregateTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(ScalarAggregateTest, ComputesExpected) {
  const AggCase& c = GetParam();
  auto stmt = sql::ParseSelect("SELECT " + c.agg_sql + " FROM t");
  ASSERT_TRUE(stmt.ok());
  std::vector<AggregateSpec> specs{{stmt.value().select_list[0].expr.get()}};
  auto out = HashAggregate(Cities(), {}, specs);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(out->At(0, 0).AsDouble().value(), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, ScalarAggregateTest,
    ::testing::Values(AggCase{"COUNT(*)", 5.0},
                      AggCase{"COUNT(pop)", 5.0},
                      AggCase{"COUNT(country)", 4.0},  // NULL not counted
                      AggCase{"SUM(pop)", 6760000.0},
                      AggCase{"AVG(pop)", 1352000.0},
                      AggCase{"MIN(pop)", 0.0},
                      AggCase{"MAX(pop)", 2800000.0},
                      AggCase{"COUNT(DISTINCT country)", 2.0}));

TEST(AggregateTest, GroupByCountry) {
  auto stmt = sql::ParseSelect(
      "SELECT country, COUNT(*), AVG(pop) FROM t GROUP BY country");
  ASSERT_TRUE(stmt.ok());
  std::vector<const sql::Expr*> groups{stmt.value().group_by[0].get()};
  std::vector<AggregateSpec> specs{
      {stmt.value().select_list[1].expr.get()},
      {stmt.value().select_list[2].expr.get()}};
  auto out = HashAggregate(Cities(), groups, specs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 3u);  // Italy, France, NULL
  for (const Tuple& row : out->rows()) {
    if (row[0].is_null()) {
      EXPECT_EQ(row[1].int_value(), 1);  // Atlantis group
    } else {
      EXPECT_EQ(row[1].int_value(), 2);
    }
  }
}

TEST(AggregateTest, EmptyInputScalarSemantics) {
  Relation empty(Cities().schema());
  auto stmt =
      sql::ParseSelect("SELECT COUNT(*), SUM(pop), MIN(pop) FROM t");
  ASSERT_TRUE(stmt.ok());
  std::vector<AggregateSpec> specs{
      {stmt.value().select_list[0].expr.get()},
      {stmt.value().select_list[1].expr.get()},
      {stmt.value().select_list[2].expr.get()}};
  auto out = HashAggregate(empty, {}, specs);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 0).int_value(), 0);  // COUNT = 0
  EXPECT_TRUE(out->At(0, 1).is_null());     // SUM = NULL
  EXPECT_TRUE(out->At(0, 2).is_null());     // MIN = NULL
}

TEST(AggregateTest, EmptyInputWithGroupByYieldsNoRows) {
  Relation empty(Cities().schema());
  auto stmt =
      sql::ParseSelect("SELECT country, COUNT(*) FROM t GROUP BY country");
  std::vector<const sql::Expr*> groups{stmt.value().group_by[0].get()};
  std::vector<AggregateSpec> specs{
      {stmt.value().select_list[1].expr.get()}};
  auto out = HashAggregate(empty, groups, specs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 0u);
}

TEST(AggregateTest, SumOverStringsIsTypeError) {
  auto stmt = sql::ParseSelect("SELECT SUM(name) FROM t");
  std::vector<AggregateSpec> specs{
      {stmt.value().select_list[0].expr.get()}};
  auto out = HashAggregate(Cities(), {}, specs);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace galois::engine
