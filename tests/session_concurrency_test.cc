// Concurrent-session equivalence: N sessions × M async queries against
// ONE galois::Database must produce byte-identical relations and
// identical per-query cost meters vs. running the same queries
// sequentially — the acceptance contract of the Database/Session façade
// (per-query CostTap attribution instead of the old racy
// snapshot-and-diff of the shared model meter). Runs under the TSan CI
// job: 16 queries in flight hammer the phase pool, the batch scheduler
// and the shared model stack from many threads.
//
// Also covers the façade's control surface: the options snapshot rule
// (set_options never leaks into a dispatched query), per-query deadline
// and cancellation, and the shared materialisation cache serving many
// sessions.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/database.h"
#include "knowledge/workload.h"
#include "llm/simulated_llm.h"

namespace galois {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

/// The per-session query mix: distinct shapes (selection, join inputs,
/// full scans) so the fan-out exercises every phase kind.
const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "SELECT name, capital FROM country WHERE continent = 'Europe'",
      "SELECT name, population FROM city WHERE country = 'Italy'",
      "SELECT name, speakers FROM language",
      "SELECT name, foundedYear FROM airline",
  };
  return queries;
}

/// Stressful-but-deterministic dispatch: batched, chunked, overlapped
/// round trips and pipelined phases.
core::ExecutionOptions StressOptions() {
  core::ExecutionOptions options;
  options.batch_prompts = true;
  options.max_batch_size = 4;
  options.parallel_batches = 2;
  options.pipeline_phases = true;
  options.verify_cells = true;
  return options;
}

std::unique_ptr<Database> OpenStressDb(bool with_table_cache) {
  DatabaseOptions options;
  options.workload = &W();
  options.execution = StressOptions();
  options.enable_materialisation_cache = with_table_cache;
  auto db = Database::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

void ExpectSameMeter(const llm::CostMeter& a, const llm::CostMeter& b,
                     const std::string& label) {
  EXPECT_EQ(a.num_prompts, b.num_prompts) << label;
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens) << label;
  EXPECT_EQ(a.completion_tokens, b.completion_tokens) << label;
  EXPECT_EQ(a.num_batches, b.num_batches) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  // Latency is a sum of doubles accumulated in round-trip completion
  // order; concurrent chunks may reassociate it.
  EXPECT_NEAR(a.simulated_latency_ms, b.simulated_latency_ms,
              1e-6 * (1.0 + a.simulated_latency_ms))
      << label;
  ASSERT_EQ(a.by_model.size(), b.by_model.size()) << label;
  for (const auto& [name, usage] : a.by_model) {
    auto it = b.by_model.find(name);
    ASSERT_NE(it, b.by_model.end()) << label << " backend " << name;
    EXPECT_EQ(usage.num_prompts, it->second.num_prompts) << label;
    EXPECT_EQ(usage.prompt_tokens, it->second.prompt_tokens) << label;
    EXPECT_EQ(usage.num_batches, it->second.num_batches) << label;
  }
}

TEST(SessionConcurrencyTest, NSessionsTimesMQueriesMatchSequential) {
  constexpr int kSessions = 4;  // x4 queries = 16 concurrent, > phase pool
  std::unique_ptr<Database> db = OpenStressDb(/*with_table_cache=*/false);

  // Sequential reference: one session, one query at a time.
  std::vector<QueryResult> reference;
  {
    Session session = db->CreateSession();
    for (const std::string& sql : Queries()) {
      auto result = session.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status();
      reference.push_back(std::move(result).value());
    }
  }

  // Concurrent run: every session dispatches the whole mix at once. The
  // stack-wide meter delta across the block must equal the sum of the
  // per-query meters — nothing double-counted, nothing lost.
  llm::CostMeter before = db->model()->cost();
  std::vector<Session> sessions;
  std::vector<AsyncQuery> in_flight;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(db->CreateSession());
    for (const std::string& sql : Queries()) {
      in_flight.push_back(sessions.back().QueryAsync(sql));
    }
  }
  llm::CostMeter summed;
  for (size_t i = 0; i < in_flight.size(); ++i) {
    const std::string& sql = Queries()[i % Queries().size()];
    auto result = in_flight[i].Join();
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status();
    const QueryResult& expected = reference[i % Queries().size()];
    EXPECT_TRUE(result->relation.SameContents(expected.relation)) << sql;
    ExpectSameMeter(result->cost, expected.cost,
                    "query " + std::to_string(i) + " (" + sql + ")");
    summed += result->cost;
  }
  llm::CostMeter stack_delta = db->model()->cost() - before;
  EXPECT_EQ(stack_delta.num_prompts, summed.num_prompts);
  EXPECT_EQ(stack_delta.prompt_tokens, summed.prompt_tokens);
  EXPECT_EQ(stack_delta.num_batches, summed.num_batches);
}

TEST(SessionConcurrencyTest, SharedMaterialisationCacheAcrossSessions) {
  std::unique_ptr<Database> db = OpenStressDb(/*with_table_cache=*/true);
  const std::string sql = Queries()[0];

  // Cold fill by one session.
  auto cold = db->CreateSession().Query(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->table_cache_hits, 0);
  EXPECT_GT(cold->cost.num_prompts, 0);

  // Every later session — all concurrent — is served from the shared
  // cache: identical relation, zero LLM round trips, hit attributed to
  // the query that enjoyed it.
  std::vector<Session> sessions;
  std::vector<AsyncQuery> in_flight;
  for (int s = 0; s < 6; ++s) {
    sessions.push_back(db->CreateSession());
    in_flight.push_back(sessions.back().QueryAsync(sql));
  }
  for (AsyncQuery& pending : in_flight) {
    auto warm = pending.Join();
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_TRUE(warm->relation.SameContents(cold->relation));
    EXPECT_EQ(warm->table_cache_lookups, 1);
    EXPECT_EQ(warm->table_cache_hits, 1);
    EXPECT_EQ(warm->cost.num_prompts, 0);
  }
}

TEST(SessionOptionsTest, SnapshotTakenAtQueryEntry) {
  std::unique_ptr<Database> db = OpenStressDb(/*with_table_cache=*/false);
  const std::string sql = Queries()[0];

  core::ExecutionOptions original = StressOptions();
  original.verify_cells = false;  // the dispatched query's contract
  Session reference_session = db->CreateSession(original);
  auto expected = reference_session.Query(sql);
  ASSERT_TRUE(expected.ok());

  Session session = db->CreateSession(original);
  AsyncQuery pending = session.QueryAsync(sql);
  // Mutating the session after dispatch must not leak into the query in
  // flight: the snapshot was taken synchronously inside QueryAsync.
  core::ExecutionOptions mutated = StressOptions();
  mutated.verify_cells = true;  // extra critic prompts, nothing else
  session.set_options(mutated);
  auto result = pending.Join();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->relation.SameContents(expected->relation));
  ExpectSameMeter(result->cost, expected->cost, "snapshotted query");

  // The mutation does govern the *next* query.
  EXPECT_TRUE(session.options().verify_cells);
  auto next = session.Query(sql);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next->cost.num_prompts, expected->cost.num_prompts);
}

TEST(SessionControlTest, PreCancelledTokenFailsFast) {
  std::unique_ptr<Database> db = OpenStressDb(/*with_table_cache=*/false);
  CancelToken control = std::make_shared<CancelState>();
  control->RequestCancel();
  auto result = db->CreateSession().Query(Queries()[0], control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  AsyncQuery pending =
      db->CreateSession().QueryAsync(Queries()[0], control);
  auto async_result = pending.Join();
  ASSERT_FALSE(async_result.ok());
  EXPECT_EQ(async_result.status().code(), StatusCode::kCancelled);
}

TEST(SessionControlTest, DeadlineExpiresSlowQuery) {
  // An external backend with 20 ms of real latency per round trip: the
  // scheduler's pre-round-trip check trips the 5 ms deadline after the
  // first scan page.
  llm::SimulatedLlm slow(&W().kb(), llm::ModelProfile::ChatGpt(),
                         &W().catalog(), 7);
  slow.set_wall_latency_ms(20.0);
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec spec;
  spec.name = "slow";
  spec.external = &slow;
  options.backends.push_back(std::move(spec));
  options.execution.query_deadline_ms = 5;
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status();

  auto result = (*db)->CreateSession().Query(
      "SELECT name, capital, population FROM country");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

TEST(SessionControlTest, DeadlineNeverMutatesCallerToken) {
  // A deadline is armed on a private token chained onto the caller's,
  // so a caller token shared across queries is never poisoned by one
  // query's (expired) deadline.
  llm::SimulatedLlm slow(&W().kb(), llm::ModelProfile::ChatGpt(),
                         &W().catalog(), 7);
  slow.set_wall_latency_ms(20.0);
  DatabaseOptions slow_options;
  slow_options.workload = &W();
  BackendSpec spec;
  spec.name = "slow";
  spec.external = &slow;
  slow_options.backends.push_back(std::move(spec));
  slow_options.execution.query_deadline_ms = 5;
  auto slow_db = Database::Open(std::move(slow_options));
  ASSERT_TRUE(slow_db.ok()) << slow_db.status();

  CancelToken shared = std::make_shared<CancelState>();
  auto expired = (*slow_db)->CreateSession().Query(
      "SELECT name, capital FROM country", shared);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // The same caller token on a deadline-free session still works.
  std::unique_ptr<Database> fast =
      OpenStressDb(/*with_table_cache=*/false);
  auto ok = fast->CreateSession().Query(Queries()[0], shared);
  EXPECT_TRUE(ok.ok()) << ok.status();

  // And the caller can still cancel through it.
  shared->RequestCancel();
  auto cancelled = fast->CreateSession().Query(Queries()[0], shared);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

TEST(SessionControlTest, CancelMidFlightStopsNewRoundTrips) {
  llm::SimulatedLlm slow(&W().kb(), llm::ModelProfile::ChatGpt(),
                         &W().catalog(), 7);
  slow.set_wall_latency_ms(10.0);
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec spec;
  spec.name = "slow";
  spec.external = &slow;
  options.backends.push_back(std::move(spec));
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status();

  Session session = (*db)->CreateSession();
  AsyncQuery pending = session.QueryAsync(
      "SELECT name, capital, population, continent FROM country");
  pending.Cancel();
  auto result = pending.Join();
  // Either the cancel landed before the query finished (the overwhelming
  // case at ~10 ms per page) or the query won the race; both are valid
  // outcomes of cooperative cancellation — what is not allowed is any
  // other error.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status();
  }
}

TEST(DatabaseOpenTest, RejectsMisconfiguredBackends) {
  {
    DatabaseOptions options;
    options.workload = &W();
    BackendSpec spec;  // no source at all
    spec.name = "x";
    options.backends.push_back(std::move(spec));
    EXPECT_FALSE(Database::Open(std::move(options)).ok());
  }
  {
    DatabaseOptions options;
    options.workload = &W();
    BackendSpec a;
    a.name = "dup";
    a.simulated = llm::ModelProfile::Flan();
    BackendSpec b;
    b.name = "dup";
    b.simulated = llm::ModelProfile::ChatGpt();
    options.backends.push_back(std::move(a));
    options.backends.push_back(std::move(b));
    EXPECT_FALSE(Database::Open(std::move(options)).ok());
  }
  {
    DatabaseOptions options;
    options.workload = &W();
    options.execution.phase_models["critic"] = "nonexistent";
    EXPECT_FALSE(Database::Open(std::move(options)).ok());
  }
}

TEST(DatabaseOpenTest, RejectsAmbiguousCacheConfig) {
  // Borrow AND own at once is ambiguous; the old behaviour of silently
  // preferring the borrowed pointer hid misconfigurations.
  core::MaterialisationCache shared;
  DatabaseOptions options;
  options.workload = &W();
  options.materialisation_cache = &shared;
  options.enable_materialisation_cache = true;
  auto db = Database::Open(std::move(options));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseOpenTest, BorrowedCacheOutlivesDatabase) {
  // The borrowed-cache contract: the cache outlives every Database using
  // it, and entries filled through one Database serve the next.
  core::MaterialisationCache shared;
  const std::string sql = Queries()[0];
  {
    DatabaseOptions options;
    options.workload = &W();
    options.materialisation_cache = &shared;
    auto db = Database::Open(std::move(options));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto cold = (*db)->CreateSession().Query(sql);
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_GT(cold->cost.num_prompts, 0);
  }  // first Database gone; the cache (and its entries) live on
  EXPECT_GT(shared.size(), 0u);

  DatabaseOptions options;
  options.workload = &W();
  options.materialisation_cache = &shared;
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto warm = (*db)->CreateSession().Query(sql);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->table_cache_hits, 1);
  EXPECT_EQ(warm->cost.num_prompts, 0);
}

TEST(DatabaseOpenTest, StoreSinkDetachesFromBorrowedCacheOnClose) {
  // A store-backed Database attaches its persistence sink to the
  // borrowed cache for its lifetime only. After the Database closes,
  // mutating the cache must neither crash (dangling sink) nor reach the
  // journal — observable because a post-close Clear() does NOT clear the
  // store, so the next open still recovers everything.
  core::MaterialisationCache shared;
  const std::string dir = ::testing::TempDir() + "galois_borrow_store";
  std::remove((dir + "/galois.store").c_str());
  std::remove((dir + "/galois.store.tmp").c_str());
  const std::string sql = Queries()[0];

  {
    llm::SimulatedLlm transport(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
    DatabaseOptions options;
    options.workload = &W();
    options.materialisation_cache = &shared;
    options.store.path = dir;
    options.store.background_vacuum = false;
    BackendSpec spec;
    spec.name = "sim";
    spec.external = &transport;
    options.backends.push_back(std::move(spec));
    auto db = Database::Open(std::move(options));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->CreateSession().Query(sql).ok());
    EXPECT_GT((*db)->store()->stats().live_materialisations, 0);
  }  // Database closed: sink detached, store closed

  // With the sink gone this touches only memory, not the journal.
  shared.Clear();
  EXPECT_EQ(shared.size(), 0u);

  // A second store-backed Database re-borrows the same cache: the
  // journal (uncleared!) warm-starts it, and the query costs nothing.
  llm::SimulatedLlm transport(&W().kb(), llm::ModelProfile::ChatGpt(),
                              &W().catalog(), 7);
  DatabaseOptions options;
  options.workload = &W();
  options.materialisation_cache = &shared;
  options.store.path = dir;
  options.store.background_vacuum = false;
  BackendSpec spec;
  spec.name = "sim";
  spec.external = &transport;
  options.backends.push_back(std::move(spec));
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT((*db)->store()->stats().materialisations_recovered, 0)
      << "post-close Clear() reached the journal: sink not detached";
  auto warm = (*db)->CreateSession().Query(sql);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->cost.num_prompts, 0);
  EXPECT_EQ(warm->table_cache_store_hits, 1);
  EXPECT_EQ(transport.cost().num_prompts, 0);
}

TEST(DatabaseOpenTest, RoutedCascadeAttributesPerBackend) {
  DatabaseOptions options;
  options.workload = &W();
  BackendSpec cheap;
  cheap.name = "flan";
  cheap.simulated = llm::ModelProfile::Flan();
  BackendSpec strong;
  strong.name = "chatgpt";
  strong.simulated = llm::ModelProfile::ChatGpt();
  options.backends.push_back(std::move(cheap));
  options.backends.push_back(std::move(strong));
  options.default_backend = "flan";
  options.execution.batch_prompts = true;
  options.execution.verify_cells = true;
  options.execution.phase_models["critic"] = "chatgpt";
  auto db = Database::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status();

  auto result = (*db)->CreateSession().Query(
      "SELECT name, capital FROM country WHERE continent = 'Oceania'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->cost.by_model.size(), 2u);
  const llm::ModelUsage& cheap_usage =
      result->cost.by_model.at(llm::ModelProfile::Flan().name);
  const llm::ModelUsage& strong_usage =
      result->cost.by_model.at(llm::ModelProfile::ChatGpt().name);
  EXPECT_GT(strong_usage.num_prompts, 0);
  EXPECT_GT(cheap_usage.num_prompts, strong_usage.num_prompts);
  EXPECT_EQ(cheap_usage.num_prompts + strong_usage.num_prompts,
            result->cost.num_prompts);
}

}  // namespace
}  // namespace galois
