// Pipelined-vs-sequential equivalence: ExecutionOptions::pipeline_phases
// overlaps independent tables and column phases but must return the same
// relations, the same CostMeter and the same provenance trace (ordering
// included — per table in FROM order, per column in def order) as the
// PR 2 sequential-phase ladder. Runs under the TSan CI job: the suite
// doubles as a race hammer for the phase pool, the async operators and
// the concurrent table tasks.

#include <gtest/gtest.h>

#include "core/galois_executor.h"
#include "core/materialisation_cache.h"
#include "knowledge/workload.h"
#include "llm/prompt_cache.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

ExecutionOptions PipelineOptions(bool pipelined) {
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.max_batch_size = 4;
  opts.parallel_batches = 4;
  opts.verify_cells = true;
  opts.record_provenance = true;
  opts.pipeline_phases = pipelined;
  return opts;
}

/// Runs `sql` sequentially and pipelined on fresh same-seed models and
/// checks relations, accounting and trace for equality.
void ExpectEquivalent(const std::string& sql) {
  llm::SimulatedLlm seq_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                              &W().catalog(), 7);
  GaloisExecutor sequential(&seq_model, &W().catalog(),
                            PipelineOptions(false));
  auto rm_seq = sequential.RunSql(sql);
  ASSERT_TRUE(rm_seq.ok()) << sql << ": " << rm_seq.status().ToString();

  llm::SimulatedLlm pipe_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                               &W().catalog(), 7);
  GaloisExecutor pipelined(&pipe_model, &W().catalog(),
                           PipelineOptions(true));
  auto rm_pipe = pipelined.RunSql(sql);
  ASSERT_TRUE(rm_pipe.ok()) << sql << ": " << rm_pipe.status().ToString();

  EXPECT_TRUE(rm_seq->relation.SameContents(rm_pipe->relation)) << sql;

  // Identical accounting: pipelining moves wall-clock time only. The
  // latency meter is a sum of per-round-trip doubles accumulated in
  // completion order, so it is compared with a tolerance for FP
  // reassociation; every count is exact.
  const llm::CostMeter& seq = rm_seq->cost;
  const llm::CostMeter& pipe = rm_pipe->cost;
  EXPECT_EQ(seq.num_prompts, pipe.num_prompts) << sql;
  EXPECT_EQ(seq.num_batches, pipe.num_batches) << sql;
  EXPECT_EQ(seq.cache_hits, pipe.cache_hits) << sql;
  EXPECT_EQ(seq.prompt_tokens, pipe.prompt_tokens) << sql;
  EXPECT_EQ(seq.completion_tokens, pipe.completion_tokens) << sql;
  EXPECT_NEAR(seq.simulated_latency_ms, pipe.simulated_latency_ms,
              1e-6 * (1.0 + seq.simulated_latency_ms))
      << sql;

  // Identical provenance, ordering included.
  const ExecutionTrace& ts = rm_seq->trace;
  const ExecutionTrace& tp = rm_pipe->trace;
  ASSERT_EQ(ts.scans.size(), tp.scans.size()) << sql;
  for (size_t i = 0; i < ts.scans.size(); ++i) {
    EXPECT_EQ(ts.scans[i].table_alias, tp.scans[i].table_alias) << sql;
    EXPECT_EQ(ts.scans[i].pages, tp.scans[i].pages) << sql;
    EXPECT_EQ(ts.scans[i].keys, tp.scans[i].keys) << sql;
    EXPECT_EQ(ts.scans[i].filtered, tp.scans[i].filtered) << sql;
  }
  ASSERT_EQ(ts.cells.size(), tp.cells.size()) << sql;
  for (size_t i = 0; i < ts.cells.size(); ++i) {
    EXPECT_EQ(ts.cells[i].table_alias, tp.cells[i].table_alias) << sql;
    EXPECT_EQ(ts.cells[i].key, tp.cells[i].key) << sql;
    EXPECT_EQ(ts.cells[i].column, tp.cells[i].column) << sql;
    EXPECT_EQ(ts.cells[i].prompt, tp.cells[i].prompt) << sql;
    EXPECT_EQ(ts.cells[i].completion, tp.cells[i].completion) << sql;
    EXPECT_EQ(ts.cells[i].value.ToString(), tp.cells[i].value.ToString())
        << sql;
    EXPECT_EQ(ts.cells[i].verified, tp.cells[i].verified) << sql;
    EXPECT_EQ(ts.cells[i].rejected, tp.cells[i].rejected) << sql;
  }
}

TEST(PipelineEquivalenceTest, MultiColumnSelection) {
  ExpectEquivalent(
      "SELECT name, capital, population, continent FROM country "
      "WHERE continent = 'Europe'");
}

TEST(PipelineEquivalenceTest, TwoTableJoinMultiColumn) {
  ExpectEquivalent(
      "SELECT ci.name, ci.population, ci.mayor, co.capital, co.population "
      "FROM city ci, country co WHERE ci.country = co.name");
}

TEST(PipelineEquivalenceTest, JoinAggregateWithLlmFilter) {
  ExpectEquivalent(
      "SELECT co.continent, COUNT(*) FROM city ci, country co "
      "WHERE ci.country = co.name AND co.population > 10000000 "
      "GROUP BY co.continent");
}

TEST(PipelineEquivalenceTest, HybridLlmDbJoin) {
  ExpectEquivalent(
      "SELECT co.name, co.gdp, e.salary FROM LLM.country co, "
      "DB.Employees e WHERE e.countryCode = co.code");
}

TEST(PipelineEquivalenceTest, WholeWorkloadJoinsStayEquivalent) {
  // Every multi-table workload query, pipelined vs sequential — the
  // broad net that catches ordering assumptions the targeted cases miss.
  int checked = 0;
  for (const knowledge::QuerySpec& q : W().queries()) {
    if (q.query_class != knowledge::QueryClass::kJoin &&
        q.query_class != knowledge::QueryClass::kJoinAggregate) {
      continue;
    }
    ExpectEquivalent(q.sql);
    if (++checked == 8) break;  // bounded for TSan runtime
  }
  EXPECT_GE(checked, 4);
}

TEST(PipelineEquivalenceTest, PipelinedPromptCacheStaysWarm) {
  // The pipelined path through a shared PromptCache: concurrent phases
  // fill it cold and serve every fan-out prompt warm (exercised under
  // TSan to hammer cross-phase cache access).
  llm::SimulatedLlm inner(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  llm::PromptCache cache(&inner);
  ExecutionOptions opts = PipelineOptions(true);
  opts.record_provenance = false;
  GaloisExecutor galois(&cache, &W().catalog(), opts);
  const char* sql =
      "SELECT ci.name, ci.population, co.capital, co.continent "
      "FROM city ci, country co WHERE ci.country = co.name";
  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  EXPECT_GT(warm->cost.cache_hits, 0);
}

TEST(PipelineEquivalenceTest, PipelinedMaterialisationCacheWarmRerun) {
  // Acceptance shape: a warm MaterialisationCache rerun of the same
  // multi-table query performs zero LLM round trips.
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts = PipelineOptions(true);
  opts.record_provenance = false;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  MaterialisationCache table_cache;
  galois.set_materialisation_cache(&table_cache);
  const char* sql =
      "SELECT ci.name, ci.population, co.capital FROM city ci, country co "
      "WHERE ci.country = co.name";
  auto cold = galois.RunSql(sql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->table_cache_hits, 0);
  // The join itself may be empty under the noisy profile (surface-form
  // join failures are the paper's point); what matters here is that the
  // cold run paid prompts and the warm run pays none.
  EXPECT_GT(cold->cost.num_prompts, 0);

  auto warm = galois.RunSql(sql);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(cold->relation.SameContents(warm->relation));
  EXPECT_EQ(warm->table_cache_lookups, 2);
  EXPECT_EQ(warm->table_cache_hits, 2);
  EXPECT_EQ(warm->cost.num_prompts, 0);
  EXPECT_EQ(warm->cost.num_batches, 0);
}

}  // namespace
}  // namespace galois::core
