// Unit tests for the SQL lexer.

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace galois::sql {
namespace {

std::vector<Token> Lex(const std::string& q) {
  auto r = Tokenize(q);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value_or({});
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsNormalisedUpperCase) {
  auto tokens = Lex("select From WHERE");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  auto tokens = Lex("cityMayor birth_date c2");
  EXPECT_EQ(tokens[0].text, "cityMayor");
  EXPECT_EQ(tokens[1].text, "birth_date");
  EXPECT_EQ(tokens[2].text, "c2");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
  }
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto tokens = Lex("42 4.5 1e9 2.5e-3 .5");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[4].type, TokenType::kDoubleLiteral);
}

TEST(LexerTest, StringLiteralWithEscape) {
  auto tokens = Lex("'O''Hare'");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "O'Hare");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'open").ok());
  EXPECT_FALSE(Tokenize("\"open").ok());
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = Lex("\"select\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= != <> < <= > >= + - * / % ( ) , . ;");
  std::vector<TokenType> expected{
      TokenType::kEq,     TokenType::kNotEq, TokenType::kNotEq,
      TokenType::kLt,     TokenType::kLtEq,  TokenType::kGt,
      TokenType::kGtEq,   TokenType::kPlus,  TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash, TokenType::kPercent,
      TokenType::kLParen, TokenType::kRParen, TokenType::kComma,
      TokenType::kDot,    TokenType::kSemicolon, TokenType::kEof};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("SELECT -- this is a comment\n name");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].text, "name");
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("SELECT name");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, InvalidCharacterIsError) {
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("SELECT !").ok());
}

TEST(LexerTest, AggregateKeywords) {
  auto tokens = Lex("count SUM avg MIN max");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword) << i;
  }
  EXPECT_EQ(tokens[0].text, "COUNT");
  EXPECT_EQ(tokens[4].text, "MAX");
}

TEST(LexerTest, ReservedKeywordSet) {
  EXPECT_TRUE(IsReservedKeyword("SELECT"));
  EXPECT_TRUE(IsReservedKeyword("BETWEEN"));
  EXPECT_FALSE(IsReservedKeyword("select"));  // exact upper-case match
  EXPECT_FALSE(IsReservedKeyword("country"));
}

}  // namespace
}  // namespace galois::sql
