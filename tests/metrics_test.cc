// Tests for the evaluation metrics: cardinality ratio, lenient cell
// matching, greedy tuple mapping.

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace galois::eval {
namespace {

TEST(CardinalityTest, PerfectMatchIsOne) {
  EXPECT_DOUBLE_EQ(CardinalityRatio(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(CardinalityDiffPercent(10, 10), 0.0);
}

TEST(CardinalityTest, PaperWorkedExample) {
  // "Consider expected Relation R_D with size (3,2) ... Galois produced
  // R_M = (1,2). In this case, f = |2*3| / (3+1) = 6/4 = 1.5."
  EXPECT_DOUBLE_EQ(CardinalityRatio(3, 1), 1.5);
  EXPECT_DOUBLE_EQ(CardinalityDiffPercent(3, 1), -50.0);
}

TEST(CardinalityTest, OverGenerationIsPositive) {
  EXPECT_GT(CardinalityDiffPercent(10, 12), 0.0);
  EXPECT_LT(CardinalityDiffPercent(10, 8), 0.0);
}

TEST(CardinalityTest, Bounds) {
  EXPECT_DOUBLE_EQ(CardinalityRatio(10, 0), 2.0);   // nothing returned
  EXPECT_DOUBLE_EQ(CardinalityRatio(0, 10), 0.0);   // all spurious
  EXPECT_DOUBLE_EQ(CardinalityRatio(0, 0), 1.0);    // both empty: perfect
}

TEST(CellMatchesTest, NumericTolerance) {
  // < 5% relative error passes.
  EXPECT_TRUE(CellMatches(Value::Int(100), Value::Int(104)));
  EXPECT_FALSE(CellMatches(Value::Int(100), Value::Int(106)));
  EXPECT_TRUE(CellMatches(Value::Double(2.0), Value::Double(2.05)));
  EXPECT_FALSE(CellMatches(Value::Double(2.0), Value::Double(2.2)));
  // Cross-type numeric comparison.
  EXPECT_TRUE(CellMatches(Value::Int(1000), Value::Double(1000.0)));
}

TEST(CellMatchesTest, ZeroTruthRequiresNearZero) {
  EXPECT_TRUE(CellMatches(Value::Int(0), Value::Int(0)));
  EXPECT_FALSE(CellMatches(Value::Int(0), Value::Int(1)));
}

TEST(CellMatchesTest, NullNeverMatches) {
  EXPECT_FALSE(CellMatches(Value::Null(), Value::Null()));
  EXPECT_FALSE(CellMatches(Value::Int(1), Value::Null()));
  EXPECT_FALSE(CellMatches(Value::Null(), Value::Int(1)));
}

TEST(CellMatchesTest, DatesExact) {
  EXPECT_TRUE(
      CellMatches(Value::Date(1962, 8, 4), Value::Date(1962, 8, 4)));
  EXPECT_FALSE(
      CellMatches(Value::Date(1962, 8, 4), Value::Date(1962, 8, 5)));
}

TEST(LenientStringMatchTest, CaseAndWhitespace) {
  EXPECT_TRUE(LenientStringMatch("Rome", "rome"));
  EXPECT_TRUE(LenientStringMatch("Rome", "  Rome  "));
  EXPECT_FALSE(LenientStringMatch("Rome", "Milan"));
}

TEST(LenientStringMatchTest, DisambiguatingSuffix) {
  // The paper's manual mapping would pair these.
  EXPECT_TRUE(LenientStringMatch("Rome", "Rome, Italy"));
  EXPECT_TRUE(LenientStringMatch("Rome, Italy", "Rome"));
  EXPECT_FALSE(LenientStringMatch("Rome", "Milan, Italy"));
}

TEST(LenientStringMatchTest, LeadingArticle) {
  EXPECT_TRUE(LenientStringMatch("Rome Arena", "The Rome Arena"));
}

TEST(LenientStringMatchTest, LanguageSuffix) {
  EXPECT_TRUE(LenientStringMatch("Italian", "Italian language"));
}

TEST(LenientStringMatchTest, AbbreviatedGivenName) {
  EXPECT_TRUE(LenientStringMatch("James Smith", "J. Smith"));
  EXPECT_TRUE(LenientStringMatch("J. Smith", "James Smith"));
  EXPECT_FALSE(LenientStringMatch("James Smith", "K. Smith"));
  EXPECT_FALSE(LenientStringMatch("James Smith", "J. Jones"));
}

TEST(LenientStringMatchTest, CodesDoNotMatchNames) {
  // The manual mapping cannot pair "ITA" with "Italy" — this is exactly
  // the join-failure mechanism.
  EXPECT_FALSE(LenientStringMatch("Italy", "ITA"));
  EXPECT_FALSE(LenientStringMatch("Italy", "IT"));
}

Relation TwoColRelation(
    std::vector<std::pair<std::string, int64_t>> rows) {
  Relation r(Schema({Column("name", DataType::kString),
                     Column("pop", DataType::kInt64)}));
  for (auto& [name, pop] : rows) {
    r.AddRowUnchecked({Value::String(name), Value::Int(pop)});
  }
  return r;
}

TEST(MatchCellsTest, IdenticalRelationsFullScore) {
  Relation truth = TwoColRelation({{"Rome", 100}, {"Paris", 200}});
  CellMatchResult r = MatchCells(truth, truth);
  EXPECT_EQ(r.matched_cells, 4u);
  EXPECT_EQ(r.total_cells, 4u);
  EXPECT_DOUBLE_EQ(r.Percent(), 100.0);
}

TEST(MatchCellsTest, RowOrderIrrelevant) {
  Relation truth = TwoColRelation({{"Rome", 100}, {"Paris", 200}});
  Relation pred = TwoColRelation({{"Paris", 200}, {"Rome", 100}});
  EXPECT_DOUBLE_EQ(MatchCells(truth, pred).Percent(), 100.0);
}

TEST(MatchCellsTest, MissingRowsLoseCells) {
  Relation truth =
      TwoColRelation({{"Rome", 100}, {"Paris", 200}, {"Berlin", 300}});
  Relation pred = TwoColRelation({{"Rome", 100}});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 2u);
  EXPECT_EQ(r.total_cells, 6u);
}

TEST(MatchCellsTest, PartialRowsCountPartially) {
  Relation truth = TwoColRelation({{"Rome", 100}});
  Relation pred = TwoColRelation({{"Rome", 999}});  // name right, pop wrong
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 1u);
  EXPECT_EQ(r.total_cells, 2u);
}

TEST(MatchCellsTest, ExtraPredictedRowsDoNotHelp) {
  Relation truth = TwoColRelation({{"Rome", 100}});
  Relation pred = TwoColRelation(
      {{"Rome", 100}, {"Fake", 1}, {"Faker", 2}});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 2u);
  EXPECT_EQ(r.total_cells, 2u);
}

TEST(MatchCellsTest, PredictedRowUsedAtMostOnce) {
  Relation truth = TwoColRelation({{"Rome", 100}, {"Rome", 100}});
  Relation pred = TwoColRelation({{"Rome", 100}});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 2u);  // one row matched, not both
}

TEST(MatchCellsTest, EmptyTruthIsPerfect) {
  Relation truth = TwoColRelation({});
  Relation pred = TwoColRelation({{"Rome", 100}});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.total_cells, 0u);
  EXPECT_DOUBLE_EQ(r.Percent(), 100.0);
}

TEST(MatchCellsTest, EmptyPredictionScoresZero) {
  Relation truth = TwoColRelation({{"Rome", 100}});
  Relation pred = TwoColRelation({});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 0u);
  EXPECT_DOUBLE_EQ(r.Percent(), 0.0);
}

TEST(MatchCellsTest, NarrowerPredictionComparesPrefix) {
  Relation truth = TwoColRelation({{"Rome", 100}});
  Relation pred(Schema({Column("name", DataType::kString)}));
  pred.AddRowUnchecked({Value::String("Rome")});
  CellMatchResult r = MatchCells(truth, pred);
  EXPECT_EQ(r.matched_cells, 1u);
  EXPECT_EQ(r.total_cells, 2u);
}

}  // namespace
}  // namespace galois::eval
