// Tests for the Section 6 extensions: critic verification, provenance
// recording, and the auto pushdown policy.

#include <gtest/gtest.h>

#include "core/galois_executor.h"
#include "core/llm_operators.h"
#include "engine/executor.h"
#include "eval/metrics.h"
#include "knowledge/workload.h"
#include "llm/prompt_templates.h"
#include "llm/simulated_llm.h"

namespace galois::core {
namespace {

const knowledge::SpiderLikeWorkload& W() {
  static const auto* w = []() {
    auto r = knowledge::SpiderLikeWorkload::Create();
    EXPECT_TRUE(r.ok());
    return new knowledge::SpiderLikeWorkload(std::move(r).value());
  }();
  return *w;
}

const catalog::TableDef& CountryDef() {
  return *W().catalog().GetTable("country").value();
}

// --- verification ---------------------------------------------------------

TEST(VerifyPromptTest, TemplateText) {
  llm::VerifyIntent intent;
  intent.concept_name = "city";
  intent.key = "Rome";
  intent.attribute = "population";
  intent.claimed = Value::Int(2800000);
  llm::Prompt p = llm::BuildVerifyPrompt(intent);
  EXPECT_NE(p.text.find("Is it true that the population of the city Rome "
                        "is 2800000? Answer Yes or No."),
            std::string::npos);
}

TEST(VerifyCellTest, ConfirmsTrueClaimRejectsFalseClaim) {
  llm::ModelProfile sharp = llm::ModelProfile::ChatGpt();
  sharp.coverage_floor = 1.0;
  sharp.coverage_gain = 0.0;
  sharp.verifier_accuracy = 1.0;
  llm::SimulatedLlm model(&W().kb(), sharp, nullptr, 7);
  const catalog::ColumnDef* capital =
      CountryDef().FindColumn("capital").value();
  EXPECT_EQ(LlmVerifyCell(&model, CountryDef(), "France", *capital,
                          Value::String("Paris"))
                .value(),
            1);
  EXPECT_EQ(LlmVerifyCell(&model, CountryDef(), "France", *capital,
                          Value::String("Berlin"))
                .value(),
            0);
}

TEST(VerifyCellTest, NumericToleranceAppliesToClaims) {
  llm::ModelProfile sharp = llm::ModelProfile::ChatGpt();
  sharp.coverage_floor = 1.0;
  sharp.coverage_gain = 0.0;
  sharp.verifier_accuracy = 1.0;
  llm::SimulatedLlm model(&W().kb(), sharp, nullptr, 7);
  Value truth =
      W().kb().GetAttribute("country", "Italy", "population").value();
  const catalog::ColumnDef* pop =
      CountryDef().FindColumn("population").value();
  // Within 5%: confirmed. Off by 50%: rejected.
  Value close = Value::Int(
      static_cast<int64_t>(truth.int_value() * 1.02));
  Value far = Value::Int(
      static_cast<int64_t>(truth.int_value() * 1.5));
  EXPECT_EQ(
      LlmVerifyCell(&model, CountryDef(), "Italy", *pop, close).value(),
      1);
  EXPECT_EQ(
      LlmVerifyCell(&model, CountryDef(), "Italy", *pop, far).value(), 0);
}

TEST(VerifyCellTest, UnknownEntityAbstains) {
  llm::ModelProfile humble = llm::ModelProfile::ChatGpt();
  humble.coverage_floor = 0.0;
  humble.coverage_gain = 0.0;
  llm::SimulatedLlm model(&W().kb(), humble, nullptr, 7);
  const catalog::ColumnDef* capital =
      CountryDef().FindColumn("capital").value();
  EXPECT_EQ(LlmVerifyCell(&model, CountryDef(), "France", *capital,
                          Value::String("Paris"))
                .value(),
            -1);
}

TEST(VerifyCellTest, ImprovesContentAccuracy) {
  // Verification is the Section 6 claim: a critic pass filters
  // hallucinated cells, trading prompts for accuracy. Compare cell match
  // with and without it on a projection-heavy query.
  const char* sql =
      "SELECT name, capital, population FROM country "
      "WHERE continent = 'Europe'";
  auto rd = engine::ExecuteSql(sql, W().catalog());
  ASSERT_TRUE(rd.ok());

  llm::SimulatedLlm plain_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
  GaloisExecutor plain(&plain_model, &W().catalog());
  auto out_plain = plain.RunSql(sql);
  ASSERT_TRUE(out_plain.ok());
  const Relation* rm_plain = &out_plain->relation;

  llm::SimulatedLlm verified_model(&W().kb(),
                                   llm::ModelProfile::ChatGpt(),
                                   &W().catalog(), 7);
  ExecutionOptions opts;
  opts.verify_cells = true;
  GaloisExecutor verified(&verified_model, &W().catalog(), opts);
  auto out_verified = verified.RunSql(sql);
  ASSERT_TRUE(out_verified.ok());
  const Relation* rm_verified = &out_verified->relation;

  // Wrong cells become NULL, so wrong-cell count must not increase; and
  // verification costs extra prompts.
  size_t wrong_plain = 0, wrong_verified = 0;
  auto count_wrong = [&rd](const Relation& rm) {
    size_t wrong = 0;
    // Compare against ground truth row-by-key.
    for (const Tuple& row : rm.rows()) {
      for (const Tuple& truth_row : rd->rows()) {
        if (truth_row[0] == row[0]) {
          for (size_t c = 1; c < row.size(); ++c) {
            if (!row[c].is_null() &&
                !eval::CellMatches(truth_row[c], row[c])) {
              ++wrong;
            }
          }
        }
      }
    }
    return wrong;
  };
  wrong_plain = count_wrong(*rm_plain);
  wrong_verified = count_wrong(*rm_verified);
  EXPECT_LE(wrong_verified, wrong_plain);
  EXPECT_GT(out_verified->cost.num_prompts, out_plain->cost.num_prompts);
}

// --- provenance -----------------------------------------------------------

TEST(ProvenanceTest, DisabledByDefault) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  GaloisExecutor galois(&model, &W().catalog());
  auto out = galois.RunSql("SELECT name, capital FROM country");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->trace.cells.empty());
  EXPECT_TRUE(out->trace.scans.empty());
}

TEST(ProvenanceTest, RecordsScanAndCells) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts;
  opts.record_provenance = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto rm = galois.RunSql(
      "SELECT name, capital FROM country WHERE continent = 'Europe'");
  ASSERT_TRUE(rm.ok());
  const ExecutionTrace& trace = rm->trace;
  ASSERT_EQ(trace.scans.size(), 1u);
  EXPECT_GT(trace.scans[0].pages, 0);
  EXPECT_GT(trace.scans[0].keys, 0u);
  EXPECT_GT(trace.scans[0].filtered, 0u);
  // One cell record per (row, retrieved attribute).
  EXPECT_EQ(trace.cells.size(), rm->relation.NumRows());  // only 'capital'
  for (const CellProvenance& cell : trace.cells) {
    EXPECT_EQ(cell.column, "capital");
    EXPECT_NE(cell.prompt.find("What is the capital"), std::string::npos);
    EXPECT_FALSE(cell.completion.empty());
  }
}

TEST(ProvenanceTest, TraceClearedBetweenQueries) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts;
  opts.record_provenance = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto first_out = galois.RunSql("SELECT name, capital FROM country");
  ASSERT_TRUE(first_out.ok());
  size_t first = first_out->trace.cells.size();
  auto second_out = galois.RunSql("SELECT name FROM language");
  ASSERT_TRUE(second_out.ok());
  EXPECT_LT(second_out->trace.cells.size(), first);
}

TEST(ProvenanceTest, VerifiedAndRejectedFlagsRecorded) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts;
  opts.record_provenance = true;
  opts.verify_cells = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto out = galois.RunSql("SELECT name, population FROM country");
  ASSERT_TRUE(out.ok());
  const ExecutionTrace& trace = out->trace;
  size_t verified = 0;
  for (const CellProvenance& c : trace.cells) {
    if (c.verified) ++verified;
    if (c.rejected) {
      EXPECT_TRUE(c.value.is_null());
    }
  }
  EXPECT_GT(verified, 0u);
  // With a noisy profile, some population cells get rejected.
  EXPECT_GT(trace.NumRejectedCells(), 0u);
}

TEST(ProvenanceTest, ToStringRendersReport) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts;
  opts.record_provenance = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto out = galois.RunSql("SELECT name, capital FROM country "
                           "WHERE continent = 'Oceania'");
  ASSERT_TRUE(out.ok());
  std::string report = out->trace.ToString(5);
  EXPECT_NE(report.find("scan country"), std::string::npos);
  EXPECT_NE(report.find("capital"), std::string::npos);
}

// --- pushdown policy -------------------------------------------------------

TEST(PushdownPolicyTest, NamesAndEffectivePolicy) {
  EXPECT_STREQ(PushdownPolicyName(PushdownPolicy::kNever), "never");
  EXPECT_STREQ(PushdownPolicyName(PushdownPolicy::kAlways), "always");
  EXPECT_STREQ(PushdownPolicyName(PushdownPolicy::kAuto), "auto");
  ExecutionOptions opts;
  EXPECT_EQ(opts.EffectivePushdown(), PushdownPolicy::kNever);
  opts.pushdown_policy = PushdownPolicy::kAlways;
  EXPECT_EQ(opts.EffectivePushdown(), PushdownPolicy::kAlways);
  opts.pushdown_policy = PushdownPolicy::kAuto;
  EXPECT_EQ(opts.EffectivePushdown(), PushdownPolicy::kAuto);
}

TEST(PushdownPolicyTest, AutoPushesLargeScansOnly) {
  // city has ~108 expected rows (>= 60 threshold) -> pushed; country has
  // 48 -> not pushed. Compare prompt counts against the never/always
  // policies to see which branch auto took.
  auto run = [](const char* sql, PushdownPolicy policy) {
    llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                            &W().catalog(), 7);
    ExecutionOptions opts;
    opts.pushdown_policy = policy;
    GaloisExecutor galois(&model, &W().catalog(), opts);
    auto out = galois.RunSql(sql);
    EXPECT_TRUE(out.ok());
    return out.ok() ? out->cost.num_prompts : 0;
  };
  const char* city_sql =
      "SELECT name FROM city WHERE population > 5000000";
  EXPECT_EQ(run(city_sql, PushdownPolicy::kAuto),
            run(city_sql, PushdownPolicy::kAlways));
  EXPECT_LT(run(city_sql, PushdownPolicy::kAuto),
            run(city_sql, PushdownPolicy::kNever));

  const char* country_sql =
      "SELECT name FROM country WHERE continent = 'Europe'";
  EXPECT_EQ(run(country_sql, PushdownPolicy::kAuto),
            run(country_sql, PushdownPolicy::kNever));
}

TEST(PushdownPolicyTest, OptionsToStringMentionsEverything) {
  ExecutionOptions opts;
  opts.pushdown_policy = PushdownPolicy::kAuto;
  opts.verify_cells = true;
  opts.record_provenance = true;
  std::string s = opts.ToString();
  EXPECT_NE(s.find("pushdown=auto"), std::string::npos);
  EXPECT_NE(s.find("verify=on"), std::string::npos);
  EXPECT_NE(s.find("provenance=on"), std::string::npos);
}

// --- prompt batching --------------------------------------------------------

TEST(BatchingTest, SameAnswersFewerSimulatedSeconds) {
  const char* sql =
      "SELECT name, capital FROM country WHERE continent = 'Europe'";
  llm::SimulatedLlm seq_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                              &W().catalog(), 7);
  GaloisExecutor sequential(&seq_model, &W().catalog());
  auto rm_seq = sequential.RunSql(sql);
  ASSERT_TRUE(rm_seq.ok());

  llm::SimulatedLlm batch_model(&W().kb(), llm::ModelProfile::ChatGpt(),
                                &W().catalog(), 7);
  ExecutionOptions opts;
  opts.batch_prompts = true;
  GaloisExecutor batched(&batch_model, &W().catalog(), opts);
  auto rm_batch = batched.RunSql(sql);
  ASSERT_TRUE(rm_batch.ok());

  // Identical relation, same prompt count, strictly lower latency, and
  // batch round trips recorded.
  EXPECT_TRUE(rm_seq->relation.SameContents(rm_batch->relation));
  EXPECT_EQ(rm_seq->cost.num_prompts, rm_batch->cost.num_prompts);
  EXPECT_LT(rm_batch->cost.simulated_latency_ms,
            rm_seq->cost.simulated_latency_ms / 2);
  EXPECT_GT(rm_batch->cost.num_batches, 0);
  EXPECT_EQ(rm_seq->cost.num_batches, 0);
}

TEST(BatchingTest, DefaultBatchLoopsOverComplete) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  llm::AttributeGetIntent intent;
  intent.concept_name = "country";
  intent.attribute = "capital";
  std::vector<llm::Prompt> prompts;
  for (const char* key : {"Italy", "France", "Spain"}) {
    intent.key = key;
    prompts.push_back(llm::BuildAttributePrompt(intent));
  }
  auto batch = model.CompleteBatch(prompts);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 3u);
  // Answers equal the one-by-one completions.
  llm::SimulatedLlm fresh(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(batch.value()[i].text,
              fresh.Complete(prompts[i]).value().text);
  }
}

TEST(BatchingTest, EmptyBatchIsNoop) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  auto batch = model.CompleteBatch({});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch.value().empty());
  EXPECT_EQ(model.cost().num_batches, 0);
}

TEST(BatchingTest, ProvenanceStillRecordedColumnWise) {
  llm::SimulatedLlm model(&W().kb(), llm::ModelProfile::ChatGpt(),
                          &W().catalog(), 7);
  ExecutionOptions opts;
  opts.batch_prompts = true;
  opts.record_provenance = true;
  GaloisExecutor galois(&model, &W().catalog(), opts);
  auto rm = galois.RunSql(
      "SELECT name, capital FROM country WHERE continent = 'Oceania'");
  ASSERT_TRUE(rm.ok());
  EXPECT_EQ(rm->trace.cells.size(), rm->relation.NumRows());
}

TEST(PushdownPolicyTest, WorkloadTablesCarryExpectedRows) {
  EXPECT_EQ(W().catalog().GetTable("country").value()->expected_rows,
            48u);
  EXPECT_GT(W().catalog().GetTable("city").value()->expected_rows, 60u);
}

}  // namespace
}  // namespace galois::core
