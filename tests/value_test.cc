// Unit tests for types/value: construction, comparison, SQL semantics,
// rendering, hashing.

#include <gtest/gtest.h>

#include "types/value.h"

namespace galois {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(Value::Null(), Value());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-5).int_value(), -5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_EQ(Value::Date(1962, 8, 4).date_packed(), 19620804);
}

TEST(ValueTest, DatePackingRoundTrip) {
  int64_t packed = PackDate(2024, 3, 25);
  int y, m, d;
  UnpackDate(packed, &y, &m, &d);
  EXPECT_EQ(y, 2024);
  EXPECT_EQ(m, 3);
  EXPECT_EQ(d, 25);
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble().value(), 1.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, SqlEqualsNullSemantics) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Int(1)));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::Int(1)));
}

TEST(ValueTest, StructuralEqualityNullEqualsNull) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(4.1).Compare(Value::Int(4)), 0);
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
}

TEST(ValueTest, TotalOrderAcrossTypeGroups) {
  // NULL < bool < numeric < date < string.
  Value null = Value::Null();
  Value b = Value::Bool(true);
  Value n = Value::Int(999999);
  Value d = Value::Date(1900, 1, 1);
  Value s = Value::String("a");
  EXPECT_LT(null.Compare(b), 0);
  EXPECT_LT(b.Compare(n), 0);
  EXPECT_LT(n.Compare(d), 0);
  EXPECT_LT(d.Compare(s), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
}

TEST(ValueTest, DateOrdering) {
  EXPECT_LT(Value::Date(1990, 5, 1).Compare(Value::Date(1990, 5, 2)), 0);
  EXPECT_LT(Value::Date(1989, 12, 31).Compare(Value::Date(1990, 1, 1)), 0);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Int(1234).ToString(), "1234");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Date(1962, 8, 4).ToString(), "1962-08-04");
  EXPECT_EQ(Value::String("Rome").ToString(), "Rome");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

struct CompareCase {
  Value lhs;
  Value rhs;
  int expected_sign;
};

class ValueCompareTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ValueCompareTest, CompareMatchesExpectation) {
  const CompareCase& c = GetParam();
  int got = c.lhs.Compare(c.rhs);
  int sign = got < 0 ? -1 : (got > 0 ? 1 : 0);
  EXPECT_EQ(sign, c.expected_sign);
  // Antisymmetry.
  int rev = c.rhs.Compare(c.lhs);
  int rev_sign = rev < 0 ? -1 : (rev > 0 ? 1 : 0);
  EXPECT_EQ(rev_sign, -c.expected_sign);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value::Int(1), Value::Int(2), -1},
        CompareCase{Value::Int(2), Value::Int(2), 0},
        CompareCase{Value::Double(1.5), Value::Int(1), 1},
        CompareCase{Value::String("a"), Value::String("b"), -1},
        CompareCase{Value::Bool(false), Value::Bool(true), -1},
        CompareCase{Value::Date(2000, 1, 1), Value::Date(1999, 12, 31), 1},
        CompareCase{Value::Null(), Value::Int(0), -1},
        CompareCase{Value::Int(0), Value::String(""), -1}));

}  // namespace
}  // namespace galois
